#![forbid(unsafe_code)]
//! Operation metrics for every evaluation layer.
//!
//! The paper's experimental section (Figure 7) argues in terms of *work
//! done* — index fetches, second-level queries executed, list entries
//! produced — not just wall-clock time. This crate gives every layer a
//! named counter in one registry so that direct vs. schema-driven
//! comparisons (and perf-regression tests) can pin exact, deterministic,
//! hardware-independent operation counts.
//!
//! Design:
//!
//! * **Thread-local registry.** Counters live in a per-thread
//!   [`MetricsRegistry`] (plain `Cell<u64>` bumps, no atomics), so the
//!   hot paths pay an indexed add and parallel test threads never bleed
//!   counts into each other — which is what keeps exact-count regression
//!   tests deterministic under `cargo test`.
//! * **Snapshot / diff / reset.** Instrumented code only ever *adds*.
//!   Consumers take a [`MetricsSnapshot`] before a region, another after,
//!   and [`MetricsSnapshot::diff`] the two; nothing needs to be zeroed to
//!   measure, so nested measurements compose.
//! * **Renderable.** Snapshots print as a human table
//!   ([`MetricsSnapshot::render_table`]), JSON
//!   ([`MetricsSnapshot::to_json`]), and TSV
//!   ([`MetricsSnapshot::to_tsv_row`]) for machine consumption by the
//!   bench harness.
//!
//! The counter set is the closed enum [`Metric`]: adding a counter is a
//! one-line enum addition, and the registry is a fixed array — no
//! hashing, no allocation, no locks on the hot path.

use std::cell::{Cell, RefCell};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// The layer a [`Metric`] belongs to (used to group rendered tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layer {
    /// Page cache over the storage backend.
    Pager,
    /// Store-level commit/recovery events.
    Store,
    /// B+-tree structure operations.
    Btree,
    /// Label / secondary index lookups and decoding.
    Index,
    /// The Section 6.4 list algebra (direct evaluation).
    List,
    /// The Section 7 best-k list algebra (schema evaluation).
    Topk,
    /// Physical-plan compilation and the keyed plan cache.
    Plan,
    /// Block-compressed posting frames (decode/skip traffic).
    Postings,
    /// Whole-evaluator events.
    Eval,
}

impl Layer {
    pub fn name(self) -> &'static str {
        match self {
            Layer::Pager => "pager",
            Layer::Store => "store",
            Layer::Btree => "btree",
            Layer::Index => "index",
            Layer::List => "list",
            Layer::Topk => "topk",
            Layer::Plan => "plan",
            Layer::Postings => "postings",
            Layer::Eval => "eval",
        }
    }
}

macro_rules! metrics {
    ($($variant:ident => ($layer:ident, $name:literal, $doc:literal)),+ $(,)?) => {
        /// Every counter the system records, one variant per named counter.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[repr(usize)]
        pub enum Metric {
            $(#[doc = $doc] $variant),+
        }

        impl Metric {
            /// All counters, in rendering order.
            pub const ALL: &'static [Metric] = &[$(Metric::$variant),+];

            /// The machine-readable counter name (`layer.counter`).
            pub fn name(self) -> &'static str {
                match self {
                    $(Metric::$variant => $name),+
                }
            }

            /// The layer this counter instruments.
            pub fn layer(self) -> Layer {
                match self {
                    $(Metric::$variant => Layer::$layer),+
                }
            }
        }
    };
}

metrics! {
    // -- pager ------------------------------------------------------------
    PagerPageReads => (Pager, "pager.page_reads", "Pages requested from the pager (cache hits included)."),
    PagerCacheMisses => (Pager, "pager.cache_misses", "Page requests that had to hit the backend."),
    PagerPageWrites => (Pager, "pager.page_writes", "Pages written through the pager (dirtied in cache)."),
    PagerPageAllocs => (Pager, "pager.page_allocs", "Fresh pages allocated."),
    PagerBackendWrites => (Pager, "pager.backend_writes", "Dirty pages pushed to the backend by flushes."),
    PagerFlushes => (Pager, "pager.flushes", "Write-back flushes (commit points)."),
    PagerEvictions => (Pager, "pager.evictions", "Clean pages evicted by the clock sweep."),
    PagerChecksumFailures => (Pager, "pager.checksum_failures", "Backend page reads whose trailer checksum failed to validate."),
    // -- store (commit/recovery) ------------------------------------------
    StoreCommits => (Store, "store.commits", "Successful dual-slot commits."),
    StoreRecoveryRollbacks => (Store, "store.recovery_rollbacks", "Opens that fell back to the previous commit's header slot."),
    StoreDocInserts => (Store, "store.doc_inserts", "Documents inserted into a mutable database file (one commit each)."),
    StoreDocDeletes => (Store, "store.doc_deletes", "Documents tombstoned in a mutable database file (one commit each)."),
    // -- b+-tree ----------------------------------------------------------
    BtreeGets => (Btree, "btree.gets", "Point lookups."),
    BtreeInserts => (Btree, "btree.inserts", "Key insertions (including overwrites)."),
    BtreeDeletes => (Btree, "btree.deletes", "Key deletions."),
    BtreeNodeReads => (Btree, "btree.node_reads", "Tree nodes deserialized from pages."),
    BtreeNodeSplits => (Btree, "btree.node_splits", "Node splits (leaf and internal)."),
    BtreeScanSteps => (Btree, "btree.scan_steps", "Entries stepped over by range/prefix cursors."),
    // -- label / secondary index ------------------------------------------
    IndexLabelFetches => (Index, "index.label_fetches", "Posting-list lookups in the label index."),
    IndexPostingsFetched => (Index, "index.postings_fetched", "Postings returned by those lookups."),
    IndexSecondaryFetches => (Index, "index.secondary_fetches", "Instance-list lookups in the secondary index."),
    IndexSecondaryRows => (Index, "index.secondary_rows", "Instance postings returned by those lookups."),
    IndexBytesDecoded => (Index, "index.bytes_decoded", "Bytes run through the posting codecs (decode side)."),
    // -- list algebra (Section 6.4) ---------------------------------------
    ListFetchOps => (List, "list.fetch_ops", "fetch: posting-list materializations."),
    ListShiftOps => (List, "list.shift_ops", "shift: cost-translation passes."),
    ListMergeOps => (List, "list.merge_ops", "merge: cost-channel merges."),
    ListJoinOps => (List, "list.join_ops", "join: structural joins."),
    ListOuterjoinOps => (List, "list.outerjoin_ops", "outerjoin: optional-child joins."),
    ListIntersectOps => (List, "list.intersect_ops", "intersect: and-combinations."),
    ListUnionOps => (List, "list.union_ops", "union: or-combinations."),
    ListSortOps => (List, "list.sort_ops", "sort: best-n selections."),
    ListEntriesProduced => (List, "list.entries_produced", "Entries in the output lists of all list ops."),
    // -- best-k list algebra (Section 7) ----------------------------------
    TopkOps => (Topk, "topk.ops", "Best-k list operations (fetch/shift/merge/join/…)."),
    TopkEntriesProduced => (Topk, "topk.entries_produced", "Entries in the output k-lists of all best-k ops."),
    // -- physical plans ---------------------------------------------------
    PlanCompile => (Plan, "plan.compile", "Physical-plan compilations from expanded queries."),
    PlanCacheHits => (Plan, "plan.cache_hits", "Plan-cache lookups answered without compiling."),
    PlanCacheMisses => (Plan, "plan.cache_misses", "Plan-cache lookups that had to compile."),
    PlanCseReuses => (Plan, "plan.cse_reuses", "Subplans shared by common-subexpression elimination during compiles."),
    PlanCacheInvalidations => (Plan, "plan.cache_invalidations", "Cached plans evicted because a mutation touched one of their fetch labels."),
    // -- block-compressed postings ----------------------------------------
    PostingsBlocksDecoded => (Postings, "postings.blocks_decoded", "Compressed posting blocks decoded by query operators."),
    PostingsBlocksSkipped => (Postings, "postings.blocks_skipped", "Compressed posting blocks skipped via skip headers without decoding."),
    PostingsBytes => (Postings, "postings.bytes", "Compressed frame bytes decoded by query operators."),
    // -- evaluators -------------------------------------------------------
    EvalDirectRuns => (Eval, "eval.direct_runs", "Direct (algorithm `primary`) evaluations."),
    EvalDirectFetches => (Eval, "eval.direct_fetches", "Index fetches issued by the direct evaluator."),
    EvalSchemaRuns => (Eval, "eval.schema_runs", "Schema-driven best-n evaluations."),
    EvalSchemaRounds => (Eval, "eval.schema_rounds", "k-escalation rounds across schema evaluations."),
    EvalSecondLevelQueries => (Eval, "eval.second_level_queries", "Second-level queries executed (Section 7.4)."),
    EvalSecondaryRows => (Eval, "eval.secondary_rows", "Instance postings scanned by second-level queries."),
    // -- retrieval-quality harness ----------------------------------------
    EvalHarnessRuns => (Eval, "eval.harness_runs", "Quality-harness invocations (`approxql eval` runs, scoring or gen-truth)."),
    EvalHarnessQueries => (Eval, "eval.harness_queries", "Individual (query, evaluator) executions performed by the quality harness."),
    EvalHarnessTruthHits => (Eval, "eval.harness_truth_hits", "Retrieved results that matched ground truth across harness runs."),
    EvalTruthRows => (Eval, "eval.truth_rows", "Ground-truth rows emitted by gen-truth (reference result-list entries)."),
}

const METRIC_COUNT: usize = Metric::ALL.len();

macro_rules! timer_metrics {
    ($($variant:ident => ($name:literal, $doc:literal)),+ $(,)?) => {
        /// Every timed operation (histogram-style timers).
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        #[repr(usize)]
        pub enum TimerMetric {
            $(#[doc = $doc] $variant),+
        }

        impl TimerMetric {
            pub const ALL: &'static [TimerMetric] = &[$(TimerMetric::$variant),+];

            pub fn name(self) -> &'static str {
                match self {
                    $(TimerMetric::$variant => $name),+
                }
            }
        }
    };
}

timer_metrics! {
    EvalDirect => ("eval.direct", "One direct evaluation, end to end."),
    EvalSchema => ("eval.schema", "One schema-driven evaluation, end to end."),
    SecondLevel => ("eval.second_level", "One second-level query batch."),
    StoreCommit => ("storage.commit", "One store commit (flush + header write)."),
    IndexBuild => ("index.build", "One label-index build."),
}

const TIMER_COUNT: usize = TimerMetric::ALL.len();

/// Histogram bucket upper bounds in nanoseconds (the last bucket is
/// unbounded): 1µs, 10µs, 100µs, 1ms, 10ms, 100ms, 1s.
pub const TIMER_BUCKET_BOUNDS_NS: [u64; 7] = [
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
];

/// Number of histogram buckets per timer.
pub const TIMER_BUCKETS: usize = TIMER_BUCKET_BOUNDS_NS.len() + 1;

/// Accumulated state of one timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TimerSnapshot {
    /// Completed timings.
    pub count: u64,
    /// Sum of all durations, nanoseconds.
    pub total_ns: u64,
    /// Longest single duration seen, nanoseconds. In a
    /// [`MetricsSnapshot::diff`] this is the *end* snapshot's max (maxima
    /// cannot be subtracted).
    pub max_ns: u64,
    /// Log-scale duration histogram (bounds in
    /// [`TIMER_BUCKET_BOUNDS_NS`]).
    pub buckets: [u64; TIMER_BUCKETS],
}

impl TimerSnapshot {
    /// Mean duration in nanoseconds (0 when nothing was recorded).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }

    fn record(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns += ns;
        self.max_ns = self.max_ns.max(ns);
        let bucket = TIMER_BUCKET_BOUNDS_NS
            .iter()
            .position(|&bound| ns < bound)
            .unwrap_or(TIMER_BUCKETS - 1);
        self.buckets[bucket] += 1;
    }
}

/// The per-thread counter/timer registry. Instrumented code records via
/// [`Metric::incr`] / [`Metric::add`] / [`time`]; consumers read it
/// through [`snapshot`] / [`reset`].
pub struct MetricsRegistry {
    counters: [Cell<u64>; METRIC_COUNT],
    timers: RefCell<[TimerSnapshot; TIMER_COUNT]>,
}

thread_local! {
    static REGISTRY: MetricsRegistry = MetricsRegistry {
        counters: [const { Cell::new(0) }; METRIC_COUNT],
        timers: RefCell::new([TimerSnapshot::default(); TIMER_COUNT]),
    };
}

impl MetricsRegistry {
    /// Runs `f` with this thread's registry.
    pub fn with<R>(f: impl FnOnce(&MetricsRegistry) -> R) -> R {
        REGISTRY.with(f)
    }

    /// Adds `n` to a counter.
    pub fn add(&self, metric: Metric, n: u64) {
        let cell = &self.counters[metric as usize];
        cell.set(cell.get().wrapping_add(n));
    }

    /// Records one completed timing.
    pub fn record_timing(&self, metric: TimerMetric, elapsed: Duration) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.timers.borrow_mut()[metric as usize].record(ns);
    }

    /// Copies the current state out.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: std::array::from_fn(|i| self.counters[i].get()),
            timers: *self.timers.borrow(),
        }
    }

    /// Zeroes every counter and timer on this thread.
    pub fn reset(&self) {
        for cell in &self.counters {
            cell.set(0);
        }
        *self.timers.borrow_mut() = [TimerSnapshot::default(); TIMER_COUNT];
    }

    /// Adds every counter and timer of `delta` into this registry — the
    /// merge half of the executor's capture/retract/absorb protocol: a
    /// worker thread captures the work a job did as a snapshot diff,
    /// [`MetricsRegistry::retract`]s it from its own registry, and the
    /// thread that joins on the job absorbs it here. Timer maxima are
    /// merged by `max`.
    pub fn absorb(&self, delta: &MetricsSnapshot) {
        for (i, cell) in self.counters.iter().enumerate() {
            cell.set(cell.get().wrapping_add(delta.counters[i]));
        }
        let mut timers = self.timers.borrow_mut();
        for (i, t) in timers.iter_mut().enumerate() {
            let d = delta.timers[i];
            t.count += d.count;
            t.total_ns += d.total_ns;
            t.max_ns = t.max_ns.max(d.max_ns);
            for (b, db) in t.buckets.iter_mut().zip(d.buckets.iter()) {
                *b += db;
            }
        }
    }

    /// Subtracts `delta` from this registry (saturating) — used by the
    /// executor to move a job's recorded work off the worker thread so the
    /// joining thread can decide whether to absorb or discard it. Timer
    /// maxima cannot be retracted and are left in place.
    pub fn retract(&self, delta: &MetricsSnapshot) {
        for (i, cell) in self.counters.iter().enumerate() {
            cell.set(cell.get().saturating_sub(delta.counters[i]));
        }
        let mut timers = self.timers.borrow_mut();
        for (i, t) in timers.iter_mut().enumerate() {
            let d = delta.timers[i];
            t.count = t.count.saturating_sub(d.count);
            t.total_ns = t.total_ns.saturating_sub(d.total_ns);
            for (b, db) in t.buckets.iter_mut().zip(d.buckets.iter()) {
                *b = b.saturating_sub(*db);
            }
        }
    }
}

impl Metric {
    /// Adds 1 to this counter on the current thread.
    #[inline]
    pub fn incr(self) {
        self.add(1);
    }

    /// Adds `n` to this counter on the current thread.
    #[inline]
    pub fn add(self, n: u64) {
        MetricsRegistry::with(|r| r.add(self, n));
    }
}

/// Snapshot of the current thread's registry.
pub fn snapshot() -> MetricsSnapshot {
    MetricsRegistry::with(MetricsRegistry::snapshot)
}

/// Zeroes the current thread's registry.
pub fn reset() {
    MetricsRegistry::with(MetricsRegistry::reset);
}

/// Adds `delta` into the current thread's registry (merge-on-join).
pub fn absorb(delta: &MetricsSnapshot) {
    MetricsRegistry::with(|r| r.absorb(delta));
}

/// Subtracts `delta` from the current thread's registry.
pub fn retract(delta: &MetricsSnapshot) {
    MetricsRegistry::with(|r| r.retract(delta));
}

/// Starts a timer; the elapsed time is recorded when the guard drops.
#[must_use = "the timer records on drop; binding it to _ stops it immediately"]
pub fn time(metric: TimerMetric) -> OpTimer {
    OpTimer {
        metric,
        start: Instant::now(),
    }
}

/// Guard returned by [`time`]; records its lifetime's duration on drop.
pub struct OpTimer {
    metric: TimerMetric,
    start: Instant,
}

impl Drop for OpTimer {
    fn drop(&mut self) {
        let elapsed = self.start.elapsed();
        MetricsRegistry::with(|r| r.record_timing(self.metric, elapsed));
    }
}

/// An immutable copy of the registry at one point in time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricsSnapshot {
    counters: [u64; METRIC_COUNT],
    timers: [TimerSnapshot; TIMER_COUNT],
}

impl Default for MetricsSnapshot {
    /// The all-zero snapshot.
    fn default() -> MetricsSnapshot {
        MetricsSnapshot {
            counters: [0; METRIC_COUNT],
            timers: [TimerSnapshot::default(); TIMER_COUNT],
        }
    }
}

impl MetricsSnapshot {
    /// The value of one counter.
    pub fn get(&self, metric: Metric) -> u64 {
        self.counters[metric as usize]
    }

    /// The state of one timer.
    pub fn timer(&self, metric: TimerMetric) -> TimerSnapshot {
        self.timers[metric as usize]
    }

    /// All counters with their values, in rendering order.
    pub fn counters(&self) -> impl Iterator<Item = (Metric, u64)> + '_ {
        Metric::ALL.iter().map(|&m| (m, self.get(m)))
    }

    /// The work done since `earlier`: counter-wise (and timer-count-wise)
    /// saturating subtraction. Timer `max_ns` keeps this snapshot's value.
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: std::array::from_fn(|i| self.counters[i].saturating_sub(earlier.counters[i])),
            timers: std::array::from_fn(|i| {
                let (a, b) = (self.timers[i], earlier.timers[i]);
                TimerSnapshot {
                    count: a.count.saturating_sub(b.count),
                    total_ns: a.total_ns.saturating_sub(b.total_ns),
                    max_ns: a.max_ns,
                    buckets: std::array::from_fn(|j| a.buckets[j].saturating_sub(b.buckets[j])),
                }
            }),
        }
    }

    /// True when no counter and no timer recorded anything.
    pub fn is_zero(&self) -> bool {
        self.counters.iter().all(|&c| c == 0) && self.timers.iter().all(|t| t.count == 0)
    }

    /// True when every counter is ≥ its value in `earlier` (registries
    /// only ever add, so later snapshots of the same thread dominate
    /// earlier ones).
    pub fn dominates(&self, earlier: &MetricsSnapshot) -> bool {
        self.counters
            .iter()
            .zip(earlier.counters.iter())
            .all(|(a, b)| a >= b)
            && self
                .timers
                .iter()
                .zip(earlier.timers.iter())
                .all(|(a, b)| a.count >= b.count)
    }

    /// Human-readable table, grouped by layer; zero counters are omitted.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let width = Metric::ALL
            .iter()
            .map(|m| m.name().len())
            .max()
            .unwrap_or(0);
        let mut last_layer: Option<Layer> = None;
        let mut any = false;
        for (metric, value) in self.counters() {
            if value == 0 {
                continue;
            }
            any = true;
            if last_layer != Some(metric.layer()) {
                if last_layer.is_some() {
                    out.push('\n');
                }
                let _ = writeln!(out, "[{}]", metric.layer().name());
                last_layer = Some(metric.layer());
            }
            let _ = writeln!(out, "  {:<width$}  {value:>12}", metric.name());
        }
        let timed: Vec<_> = TimerMetric::ALL
            .iter()
            .map(|&t| (t, self.timer(t)))
            .filter(|(_, s)| s.count > 0)
            .collect();
        if !timed.is_empty() {
            if any {
                out.push('\n');
            }
            any = true;
            out.push_str("[timers]\n");
            for (t, s) in timed {
                let _ = writeln!(
                    out,
                    "  {:<width$}  count={} mean={} max={} total={}",
                    t.name(),
                    s.count,
                    fmt_ns(s.mean_ns()),
                    fmt_ns(s.max_ns),
                    fmt_ns(s.total_ns),
                );
            }
        }
        if !any {
            out.push_str("(no operations recorded)\n");
        }
        out
    }

    /// Machine-readable JSON (full counter and timer set, zeros included).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        for (i, (metric, value)) in self.counters().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", metric.name(), value);
        }
        out.push_str("},\"timers\":{");
        for (i, &t) in TimerMetric::ALL.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let s = self.timer(t);
            let _ = write!(
                out,
                "\"{}\":{{\"count\":{},\"total_ns\":{},\"max_ns\":{},\"buckets\":[",
                t.name(),
                s.count,
                s.total_ns,
                s.max_ns
            );
            for (j, b) in s.buckets.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{b}");
            }
            out.push_str("]}");
        }
        out.push_str("}}");
        out
    }

    /// Tab-separated counter names, matching [`MetricsSnapshot::to_tsv_row`].
    pub fn tsv_header() -> String {
        Metric::ALL
            .iter()
            .map(|m| m.name())
            .collect::<Vec<_>>()
            .join("\t")
    }

    /// Tab-separated counter values (full set, zeros included).
    pub fn to_tsv_row(&self) -> String {
        self.counters
            .iter()
            .map(|c| c.to_string())
            .collect::<Vec<_>>()
            .join("\t")
    }
}

fn fmt_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", ns as f64 / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests in this module run on distinct threads (or sequentially on
    /// one), so baseline-diffing keeps them independent either way.
    fn baseline() -> MetricsSnapshot {
        snapshot()
    }

    #[test]
    fn counters_accumulate_and_diff() {
        let before = baseline();
        Metric::PagerPageReads.incr();
        Metric::PagerPageReads.add(4);
        Metric::ListJoinOps.incr();
        let d = snapshot().diff(&before);
        assert_eq!(d.get(Metric::PagerPageReads), 5);
        assert_eq!(d.get(Metric::ListJoinOps), 1);
        assert_eq!(d.get(Metric::BtreeGets), 0);
    }

    #[test]
    fn diff_of_equal_snapshots_is_zero() {
        Metric::EvalDirectRuns.incr();
        let a = snapshot();
        let b = snapshot();
        assert!(b.diff(&a).is_zero());
        assert_eq!(a.diff(&a), MetricsSnapshot::default());
    }

    #[test]
    fn later_snapshots_dominate_earlier_ones() {
        let a = baseline();
        Metric::IndexLabelFetches.add(3);
        let b = snapshot();
        Metric::TopkOps.incr();
        let c = snapshot();
        assert!(b.dominates(&a));
        assert!(c.dominates(&b));
        assert!(c.dominates(&a));
        assert!(!a.dominates(&c));
    }

    #[test]
    fn timers_record_counts_and_buckets() {
        let before = baseline();
        {
            let _t = time(TimerMetric::EvalDirect);
            std::thread::sleep(Duration::from_micros(50));
        }
        {
            let _t = time(TimerMetric::EvalDirect);
        }
        let d = snapshot().diff(&before);
        let t = d.timer(TimerMetric::EvalDirect);
        assert_eq!(t.count, 2);
        assert!(t.total_ns >= 50_000, "total {}", t.total_ns);
        assert!(t.max_ns >= 50_000);
        assert!(t.mean_ns() >= 25_000);
        assert_eq!(t.buckets.iter().sum::<u64>(), 2);
    }

    #[test]
    fn reset_zeroes_everything() {
        Metric::BtreeNodeSplits.add(7);
        {
            let _t = time(TimerMetric::StoreCommit);
        }
        reset();
        assert!(snapshot().is_zero());
    }

    #[test]
    fn renderings_cover_nonzero_counters() {
        let before = baseline();
        Metric::ListMergeOps.add(2);
        Metric::EvalSchemaRounds.add(9);
        let d = snapshot().diff(&before);
        let table = d.render_table();
        assert!(table.contains("list.merge_ops"), "table:\n{table}");
        assert!(table.contains("eval.schema_rounds"));
        assert!(table.contains("[list]"));
        assert!(!table.contains("pager.page_reads"), "zeros must be omitted");
        let json = d.to_json();
        assert!(json.contains("\"list.merge_ops\":2"));
        assert!(json.contains("\"pager.page_reads\":0"), "json keeps zeros");
        let header = MetricsSnapshot::tsv_header();
        let row = d.to_tsv_row();
        assert_eq!(
            header.split('\t').count(),
            row.split('\t').count(),
            "header/row column mismatch"
        );
    }

    #[test]
    fn retract_then_absorb_round_trips() {
        let before = baseline();
        Metric::ListJoinOps.add(3);
        Metric::EvalDirectFetches.add(5);
        {
            let _t = time(TimerMetric::EvalDirect);
        }
        let delta = snapshot().diff(&before);
        retract(&delta);
        let after_retract = snapshot().diff(&before);
        assert_eq!(after_retract.get(Metric::ListJoinOps), 0);
        assert_eq!(after_retract.get(Metric::EvalDirectFetches), 0);
        assert_eq!(after_retract.timer(TimerMetric::EvalDirect).count, 0);
        absorb(&delta);
        let after_absorb = snapshot().diff(&before);
        assert_eq!(after_absorb.get(Metric::ListJoinOps), 3);
        assert_eq!(after_absorb.get(Metric::EvalDirectFetches), 5);
        assert_eq!(after_absorb.timer(TimerMetric::EvalDirect).count, 1);
    }

    #[test]
    fn absorb_merges_cross_thread_deltas() {
        let before = baseline();
        let deltas: Vec<MetricsSnapshot> = (0..4u64)
            .map(|i| {
                std::thread::spawn(move || {
                    let b = snapshot();
                    Metric::TopkOps.add(i + 1);
                    let d = snapshot().diff(&b);
                    retract(&d);
                    assert!(snapshot().diff(&b).is_zero(), "retract must zero worker");
                    d
                })
                .join()
                .unwrap()
            })
            .collect();
        for d in &deltas {
            absorb(d);
        }
        assert_eq!(snapshot().diff(&before).get(Metric::TopkOps), 1 + 2 + 3 + 4);
    }

    #[test]
    fn counter_names_are_unique_and_layered() {
        let mut names: Vec<_> = Metric::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Metric::ALL.len(), "duplicate counter names");
        for m in Metric::ALL {
            assert!(
                m.name().starts_with(m.layer().name()),
                "{} should be prefixed by its layer {}",
                m.name(),
                m.layer().name()
            );
        }
    }
}
