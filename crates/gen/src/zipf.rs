//! A seeded Zipfian sampler over a finite vocabulary.

use rand::Rng;

/// Samples ranks `0..n` with probability proportional to `1 / (rank+1)^s`
/// (the paper: "The words follow a Zipfian frequency distribution").
///
/// Implemented as an explicit CDF with binary search — O(n) memory,
/// O(log n) per sample, exact.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler over `n` ranks with exponent `s`.
    ///
    /// # Panics
    /// Panics if `n == 0` or `s` is negative/not finite.
    pub fn new(n: usize, s: f64) -> Zipf {
        assert!(n > 0, "Zipf needs a non-empty vocabulary");
        assert!(
            s.is_finite() && s >= 0.0,
            "Zipf exponent must be finite and >= 0"
        );
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// `false` (the constructor rejects empty vocabularies).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Draws one rank in `0..len()`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 10);
        }
    }

    #[test]
    fn rank_zero_dominates() {
        let z = Zipf::new(1000, 1.0);
        let mut rng = StdRng::seed_from_u64(42);
        let mut counts = vec![0usize; 1000];
        let draws = 100_000;
        for _ in 0..draws {
            counts[z.sample(&mut rng)] += 1;
        }
        // P(rank 0) = 1/H_1000 ≈ 0.133; allow generous slack.
        assert!(counts[0] > draws / 10, "rank 0 drawn {} times", counts[0]);
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[10]);
        // Zipf law shape: count(0)/count(9) ≈ 10 for s = 1.
        let ratio = counts[0] as f64 / counts[9].max(1) as f64;
        assert!((5.0..20.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn exponent_zero_is_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn single_rank_always_zero() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(3);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    fn deterministic_under_seed() {
        let z = Zipf::new(100, 1.0);
        let a: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = StdRng::seed_from_u64(5);
            (0..50).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic]
    fn empty_vocabulary_panics() {
        let _ = Zipf::new(0, 1.0);
    }
}
