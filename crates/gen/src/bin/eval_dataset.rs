#![forbid(unsafe_code)]
//! `eval_dataset` — emits retrieval-quality dataset skeletons.
//!
//! Instantiates the paper's Section 8.1 query patterns against a corpus
//! with the seeded [`QueryGenerator`] and writes an `approxql eval`
//! dataset (schema v1) whose queries carry their generated per-query
//! cost tables inline. The emitted dataset has no ground truth yet; run
//! `approxql eval <db> <dataset> --gen-truth` to fill it from the
//! reference evaluator. The committed `datasets/figure7_ren*.json`
//! files were produced by this tool.
//!
//! ```text
//! eval_dataset <corpus.xml>... --name NAME [--pattern 1|2|3] [--queries N]
//!              [--renamings N] [--seed S] [--k K|unlimited]
//!              [--evaluator direct|schema|both] [--out FILE]
//! ```

use approxql_cost::{write_cost_file, CostModel};
use approxql_eval::dataset::{Dataset, DatasetQuery, EvaluatorSel, KSpec, Settings};
use approxql_gen::{QueryGenConfig, QueryGenerator, PATTERN_1, PATTERN_2, PATTERN_3};
use approxql_index::LabelIndex;
use approxql_tree::DataTreeBuilder;
use std::process::ExitCode;

const USAGE: &str = "\
usage: eval_dataset <corpus.xml>... --name NAME [--pattern 1|2|3]
       [--queries N] [--renamings N] [--seed S] [--k K|unlimited]
       [--evaluator direct|schema|both] [--out FILE]";

struct Args {
    corpus: Vec<String>,
    name: String,
    pattern: &'static str,
    queries: usize,
    renamings: usize,
    seed: u64,
    k: KSpec,
    evaluator: EvaluatorSel,
    out: Option<String>,
}

fn parse_args(raw: &[String]) -> Result<Args, String> {
    let mut args = Args {
        corpus: Vec::new(),
        name: String::new(),
        pattern: PATTERN_1,
        queries: 5,
        renamings: 0,
        seed: 2287,
        k: KSpec::At(10),
        evaluator: EvaluatorSel::Both,
        out: None,
    };
    let mut it = raw.iter();
    while let Some(a) = it.next() {
        let mut value = |flag: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("option {flag} needs a value"))
        };
        match a.as_str() {
            "--name" => args.name = value(a)?,
            "--pattern" => {
                args.pattern = match value(a)?.as_str() {
                    "1" => PATTERN_1,
                    "2" => PATTERN_2,
                    "3" => PATTERN_3,
                    other => return Err(format!("unknown pattern `{other}` (use 1, 2, or 3)")),
                }
            }
            "--queries" => {
                args.queries = value(a)?
                    .parse()
                    .map_err(|_| "invalid --queries".to_owned())?
            }
            "--renamings" => {
                args.renamings = value(a)?
                    .parse()
                    .map_err(|_| "invalid --renamings".to_owned())?
            }
            "--seed" => args.seed = value(a)?.parse().map_err(|_| "invalid --seed".to_owned())?,
            "--k" => {
                let v = value(a)?;
                args.k = if v == "unlimited" {
                    KSpec::Unlimited
                } else {
                    KSpec::At(
                        v.parse()
                            .ok()
                            .filter(|&n: &usize| n > 0)
                            .ok_or("--k needs a positive integer or `unlimited`")?,
                    )
                };
            }
            "--evaluator" => {
                args.evaluator = match value(a)?.as_str() {
                    "direct" => EvaluatorSel::Direct,
                    "schema" => EvaluatorSel::Schema,
                    "both" => EvaluatorSel::Both,
                    other => return Err(format!("unknown evaluator `{other}`")),
                }
            }
            "--out" => args.out = Some(value(a)?),
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            _ => args.corpus.push(a.clone()),
        }
    }
    if args.corpus.is_empty() {
        return Err("need at least one corpus XML file".to_owned());
    }
    if args.name.is_empty() {
        return Err("--name is required".to_owned());
    }
    if args.queries == 0 {
        return Err("--queries must be at least 1".to_owned());
    }
    Ok(args)
}

fn emit(args: &Args) -> Result<String, String> {
    let mut builder = DataTreeBuilder::new();
    for path in &args.corpus {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
        let doc = approxql_xml::parse_document(&text).map_err(|e| format!("{path}: {e}"))?;
        builder.add_document(&doc);
    }
    let tree = builder.build(&CostModel::new());
    let index = LabelIndex::build(&tree);
    let cfg = QueryGenConfig {
        renamings_per_label: args.renamings,
        seed: args.seed,
        ..QueryGenConfig::default()
    };
    let mut generator = QueryGenerator::new(&tree, &index, cfg);
    let queries = generator
        .generate_batch(args.pattern, args.queries)
        .into_iter()
        .enumerate()
        .map(|(i, gq)| DatasetQuery {
            id: format!("q{:02}", i + 1),
            query: gq.query,
            overrides: Settings {
                costs: Some(write_cost_file(&gq.costs)),
                ..Settings::default()
            },
            expected: None,
        })
        .collect();
    let ds = Dataset {
        name: args.name.clone(),
        defaults: Settings {
            k: Some(args.k),
            evaluator: Some(args.evaluator),
            ..Settings::default()
        },
        queries,
    };
    Ok(ds.to_json())
}

fn main() -> ExitCode {
    let raw: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&raw) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match emit(&args) {
        Ok(json) => match &args.out {
            // lint:allow(fs-outside-pager) writes a dataset file, not store state
            Some(path) => match std::fs::write(path, &json) {
                Ok(()) => ExitCode::SUCCESS,
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    ExitCode::FAILURE
                }
            },
            None => {
                print!("{json}");
                ExitCode::SUCCESS
            }
        },
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
