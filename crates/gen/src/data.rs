//! Synthetic XML collections (the Aboulnaga/Naughton/Zhang stand-in).

use crate::zipf::Zipf;
use approxql_cost::CostModel;
use approxql_tree::{DataTree, DataTreeBuilder};
use approxql_xml::Element;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of a synthetic collection. The defaults are 1/100 of the
/// paper's test series ("1,000,000 elements, 100,000 terms, and 10,000,000
/// term occurrences … 100 different element names"); scale with
/// [`DataGenConfig::paper_scale`].
#[derive(Debug, Clone)]
pub struct DataGenConfig {
    /// Target number of elements (struct nodes).
    pub element_count: usize,
    /// Size of the element-name pool (paper: 100).
    pub element_names: usize,
    /// Term vocabulary size (paper: 100,000).
    pub vocabulary: usize,
    /// Target total word occurrences (paper: 10,000,000).
    pub word_occurrences: usize,
    /// Zipf exponent of the term distribution.
    pub zipf_exponent: f64,
    /// Maximum element nesting depth below the virtual root.
    pub max_depth: usize,
    /// Branching factor of the name forest: element name `i` may contain
    /// the names `b*i+1 ..= b*i+b` (each name thus has essentially one
    /// parent context — the regularity that keeps a DataGuide small,
    /// which real data-centric documents exhibit and the paper's schema
    /// approach exploits).
    pub dtd_branching: usize,
    /// Probability that a name may additionally nest *itself* (creating
    /// repeated labels along a path — the paper's recursivity `l`).
    pub recursion_prob: f64,
    /// Child elements instantiated per element.
    pub fanout: std::ops::RangeInclusive<usize>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DataGenConfig {
    fn default() -> Self {
        DataGenConfig {
            element_count: 10_000,
            element_names: 100,
            vocabulary: 1_000,
            word_occurrences: 100_000,
            zipf_exponent: 1.0,
            max_depth: 8,
            dtd_branching: 3,
            recursion_prob: 0.1,
            fanout: 1..=5,
            seed: 20020324, // EDBT 2002
        }
    }
}

impl DataGenConfig {
    /// The paper's full test-series scale: 1M elements, 100 names, 100k
    /// terms, 10M word occurrences.
    pub fn paper_scale() -> DataGenConfig {
        DataGenConfig {
            element_count: 1_000_000,
            element_names: 100,
            vocabulary: 100_000,
            word_occurrences: 10_000_000,
            ..DataGenConfig::default()
        }
    }

    /// Scales element count and word occurrences by `1/div` (name pool and
    /// vocabulary stay as in the paper so selectivities keep their shape).
    pub fn paper_scale_divided(div: usize) -> DataGenConfig {
        let full = DataGenConfig::paper_scale();
        DataGenConfig {
            element_count: full.element_count / div,
            word_occurrences: full.word_occurrences / div,
            ..full
        }
    }
}

/// Where generated nodes go: a data-tree builder or an XML element tree.
trait Sink {
    fn begin(&mut self, name: &str);
    fn end(&mut self);
    fn word(&mut self, w: &str);
}

impl Sink for DataTreeBuilder {
    fn begin(&mut self, name: &str) {
        self.begin_struct(name);
    }
    fn end(&mut self) {
        DataTreeBuilder::end(self);
    }
    fn word(&mut self, w: &str) {
        self.add_word(w);
    }
}

/// Builds `approxql_xml` elements (for examples and XML export).
struct ElementSink {
    stack: Vec<Element>,
    done: Vec<Element>,
}

impl Sink for ElementSink {
    fn begin(&mut self, name: &str) {
        self.stack.push(Element::new(name));
    }
    fn end(&mut self) {
        // The generator emits strictly balanced begin/end pairs; an
        // unmatched end would only mean a generator bug, so drop it.
        let Some(el) = self.stack.pop() else { return };
        match self.stack.last_mut() {
            Some(parent) => parent.children.push(approxql_xml::XmlNode::Element(el)),
            None => self.done.push(el),
        }
    }
    fn word(&mut self, w: &str) {
        // Words only occur inside an open element (same invariant).
        let Some(el) = self.stack.last_mut() else {
            return;
        };
        if let Some(approxql_xml::XmlNode::Text(t)) = el.children.last_mut() {
            t.push(' ');
            t.push_str(w);
        } else {
            el.children.push(approxql_xml::XmlNode::Text(w.to_owned()));
        }
    }
}

/// The seeded synthetic-collection generator.
pub struct DataGenerator {
    cfg: DataGenConfig,
    /// `dtd[name] = allowed child names` (indices into the name pool).
    dtd: Vec<Vec<usize>>,
    zipf: Zipf,
}

impl DataGenerator {
    /// Creates a generator (derives the random DTD from the seed).
    pub fn new(cfg: DataGenConfig) -> DataGenerator {
        assert!(cfg.element_names > 0, "need at least one element name");
        assert!(cfg.vocabulary > 0, "need a non-empty vocabulary");
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5f5f);
        let names = cfg.element_names;
        let b = cfg.dtd_branching.max(1);
        let dtd = (0..names)
            .map(|i| {
                let mut children: Vec<usize> =
                    (b * i + 1..=b * i + b).filter(|&c| c < names).collect();
                if rng.gen_bool(cfg.recursion_prob) {
                    children.push(i); // recursive element (e.g. part/part)
                }
                children
            })
            .collect();
        let zipf = Zipf::new(cfg.vocabulary, cfg.zipf_exponent);
        DataGenerator { cfg, dtd, zipf }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DataGenConfig {
        &self.cfg
    }

    fn name(&self, i: usize) -> String {
        format!("name{i:03}")
    }

    fn term(&self, i: usize) -> String {
        format!("term{i}")
    }

    /// Words attached to each element: total occurrences spread uniformly
    /// over the elements (paper scale: 10 words per element).
    fn words_per_element(&self) -> usize {
        self.cfg.word_occurrences / self.cfg.element_count.max(1)
    }

    fn emit_element<S: Sink>(
        &self,
        rng: &mut StdRng,
        sink: &mut S,
        name_idx: usize,
        depth: usize,
        budget: &mut usize,
    ) {
        sink.begin(&self.name(name_idx));
        for _ in 0..self.words_per_element() {
            sink.word(&self.term(self.zipf.sample(rng)));
        }
        let children = &self.dtd[name_idx];
        if depth < self.cfg.max_depth && !children.is_empty() {
            let fanout = rng.gen_range(self.cfg.fanout.clone());
            for _ in 0..fanout {
                if *budget == 0 {
                    break;
                }
                let child = children[rng.gen_range(0..children.len())];
                *budget -= 1;
                self.emit_element(rng, sink, child, depth + 1, budget);
            }
        }
        sink.end();
    }

    fn generate_into<S: Sink>(&self, sink: &mut S) {
        let mut rng = StdRng::seed_from_u64(self.cfg.seed);
        let mut budget = self.cfg.element_count;
        while budget > 0 {
            // Every document is rooted at the name forest's root.
            let root = 0;
            budget -= 1;
            self.emit_element(&mut rng, sink, root, 1, &mut budget);
        }
    }

    /// Generates the collection directly as an encoded [`DataTree`]
    /// (the fast path used by the benchmarks).
    pub fn generate_tree(&self, costs: &CostModel) -> DataTree {
        let mut builder = DataTreeBuilder::new();
        self.generate_into(&mut builder);
        builder.build(costs)
    }

    /// Generates the collection as XML element trees (one per document).
    pub fn generate_documents(&self) -> Vec<Element> {
        let mut sink = ElementSink {
            stack: Vec::new(),
            done: Vec::new(),
        };
        self.generate_into(&mut sink);
        sink.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cfg() -> DataGenConfig {
        DataGenConfig {
            element_count: 500,
            element_names: 20,
            vocabulary: 50,
            word_occurrences: 2_000,
            ..DataGenConfig::default()
        }
    }

    #[test]
    fn element_count_hits_target() {
        let g = DataGenerator::new(small_cfg());
        let tree = g.generate_tree(&CostModel::new());
        let stats = tree.stats();
        assert_eq!(stats.element_count, 500);
        // 4 words per element.
        assert_eq!(stats.word_count, 500 * 4);
    }

    #[test]
    fn deterministic_under_seed() {
        let a = DataGenerator::new(small_cfg()).generate_tree(&CostModel::new());
        let b = DataGenerator::new(small_cfg()).generate_tree(&CostModel::new());
        assert_eq!(a.len(), b.len());
        for n in a.nodes() {
            assert_eq!(a.label(n), b.label(n));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = DataGenerator::new(small_cfg()).generate_tree(&CostModel::new());
        let mut cfg = small_cfg();
        cfg.seed += 1;
        let b = DataGenerator::new(cfg).generate_tree(&CostModel::new());
        let differs = a.len() != b.len() || a.nodes().any(|n| a.label(n) != b.label(n));
        assert!(differs);
    }

    #[test]
    fn depth_is_bounded() {
        let mut cfg = small_cfg();
        cfg.max_depth = 4;
        let tree = DataGenerator::new(cfg).generate_tree(&CostModel::new());
        // +1 for the word level below the deepest element.
        assert!(tree.stats().max_depth <= 5);
    }

    #[test]
    fn name_pool_is_respected() {
        let g = DataGenerator::new(small_cfg());
        let tree = g.generate_tree(&CostModel::new());
        for n in tree.nodes().skip(1) {
            let l = tree.label(n);
            assert!(
                l.starts_with("name") || l.starts_with("term"),
                "unexpected label {l}"
            );
        }
    }

    #[test]
    fn documents_match_tree_statistics() {
        let g = DataGenerator::new(small_cfg());
        let docs = g.generate_documents();
        let elements: usize = docs.iter().map(Element::element_count).sum();
        assert_eq!(elements, 500);
        // Loading the documents yields the same tree shape as direct
        // generation.
        let tree = g.generate_tree(&CostModel::new());
        let mut b = DataTreeBuilder::new();
        for d in &docs {
            b.add_document(&approxql_xml::Document { root: d.clone() });
        }
        let tree2 = b.build(&CostModel::new());
        assert_eq!(tree.len(), tree2.len());
    }

    #[test]
    fn schema_is_compact_relative_to_data() {
        let g = DataGenerator::new(small_cfg());
        let tree = g.generate_tree(&CostModel::new());
        let schema = approxql_schema::Schema::build(&tree, &CostModel::new());
        assert!(
            schema.tree().len() * 2 < tree.len(),
            "schema {} vs data {}",
            schema.tree().len(),
            tree.len()
        );
    }

    #[test]
    fn paper_scale_config_matches_section_8() {
        let cfg = DataGenConfig::paper_scale();
        assert_eq!(cfg.element_count, 1_000_000);
        assert_eq!(cfg.element_names, 100);
        assert_eq!(cfg.vocabulary, 100_000);
        assert_eq!(cfg.word_occurrences, 10_000_000);
        let tenth = DataGenConfig::paper_scale_divided(10);
        assert_eq!(tenth.element_count, 100_000);
        assert_eq!(tenth.vocabulary, 100_000);
    }
}
