#![forbid(unsafe_code)]
//! Synthetic data and query generation (Section 8.1 of the paper).
//!
//! The paper evaluates on collections produced by the XML data generator
//! of Aboulnaga, Naughton, and Zhang (WebDB'01) and on approXQL queries
//! produced by a pattern-driven query generator. Neither tool is publicly
//! available, so this crate reimplements the functionality the experiments
//! depend on:
//!
//! * [`DataGenerator`] — synthetic collections controlled by the same
//!   knobs the paper varies: the number of elements, the element-name pool
//!   size, the term vocabulary, the total number of word occurrences, and
//!   a Zipfian term-frequency distribution. A random recursive "DTD"
//!   (each element name gets a fixed small set of allowed child names)
//!   gives the data the regularity that makes a DataGuide-style schema
//!   much smaller than the data — the property the schema-driven
//!   evaluation exploits.
//! * [`QueryGenerator`] — fills the paper's query patterns (`name` /
//!   `term` templates connected by `and`, `or`, and containment) with
//!   labels drawn from the database indexes, and emits the per-query cost
//!   tables (insert/delete costs and 0/5/10 renamings per label, rename
//!   targets drawn from the indexes).
//!
//! Determinism: both generators are seeded ([`rand::rngs::StdRng`]), so
//! every experiment is reproducible from its configuration.

mod data;
mod query;
mod zipf;

pub use data::{DataGenConfig, DataGenerator};
pub use query::{GeneratedQuery, QueryGenConfig, QueryGenerator, PATTERN_1, PATTERN_2, PATTERN_3};
pub use zipf::Zipf;
