//! The approXQL query generator (Section 8.1).
//!
//! "The generator expects a query pattern that determines the structure of
//! the query. A query pattern consists of templates and operators. The
//! query generator produces approXQL queries by filling in the templates
//! with names and terms randomly selected from the indexes of the data
//! tree. For each produced query, the generator also creates a file that
//! contains the insert costs, the delete costs, and the renamings of the
//! query selectors. The labels used for renamings are selected randomly
//! from the indexes."

use approxql_cost::{Cost, CostModel, NodeType};
use approxql_index::LabelIndex;
use approxql_query::{parse_query, QueryNode};
use approxql_tree::DataTree;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The paper's "simple path query" pattern.
pub const PATTERN_1: &str = "name[name[term]]";
/// The paper's "small Boolean query" pattern.
pub const PATTERN_2: &str = "name[name[term and (term or term)]]";
/// The paper's "large Boolean query" pattern.
pub const PATTERN_3: &str =
    "name[name[name[term and term and (term or term)] or name[name[term and term]]] and name]";

/// Parameters of the query generator.
#[derive(Debug, Clone)]
pub struct QueryGenConfig {
    /// Renamings emitted per query label (the experiments use 0, 5, 10).
    pub renamings_per_label: usize,
    /// Random rename costs are drawn from this inclusive range.
    pub rename_cost_range: (u64, u64),
    /// Random delete costs are drawn from this inclusive range (every
    /// query selector gets a delete cost, making deletions possible).
    pub delete_cost_range: (u64, u64),
    /// RNG seed.
    pub seed: u64,
    /// Draw labels weighted by their number of occurrences (a uniform
    /// draw over index *entries*), instead of uniformly over distinct
    /// labels. With Zipfian terms this makes frequent words — and thus
    /// long postings — likely, which is what gives the experiments their
    /// shape. Default `true`.
    pub weighted_labels: bool,
}

impl Default for QueryGenConfig {
    fn default() -> Self {
        QueryGenConfig {
            renamings_per_label: 0,
            rename_cost_range: (1, 9),
            delete_cost_range: (1, 9),
            seed: 2287, // LNCS volume of EDBT 2002
            weighted_labels: true,
        }
    }
}

/// One generated query plus its cost table.
#[derive(Debug, Clone)]
pub struct GeneratedQuery {
    /// The approXQL query string.
    pub query: String,
    /// The per-query cost model (insert defaults, delete costs, renamings).
    pub costs: CostModel,
}

/// Fills query patterns with labels drawn from a database's indexes.
pub struct QueryGenerator {
    names: Vec<String>,
    terms: Vec<String>,
    /// Cumulative occurrence counts aligned with `names` / `terms`.
    name_weights: Vec<u64>,
    term_weights: Vec<u64>,
    rng: StdRng,
    cfg: QueryGenConfig,
}

impl QueryGenerator {
    /// Creates a generator drawing labels from `index` (resolved through
    /// `tree`'s interner). The virtual-root label is excluded.
    pub fn new(tree: &DataTree, index: &LabelIndex, cfg: QueryGenConfig) -> QueryGenerator {
        let mut names: Vec<(String, usize)> = index
            .labels_of_type(NodeType::Struct)
            .into_iter()
            .map(|(l, count)| (tree.resolve_label(l).to_owned(), count))
            .filter(|(l, _)| !l.starts_with('\u{0}'))
            .collect();
        let mut terms: Vec<(String, usize)> = index
            .labels_of_type(NodeType::Text)
            .into_iter()
            .map(|(l, count)| (tree.resolve_label(l).to_owned(), count))
            .filter(|(l, _)| !l.starts_with('\u{0}'))
            .collect();
        names.sort();
        terms.sort();
        assert!(!names.is_empty(), "the collection has no element names");
        assert!(!terms.is_empty(), "the collection has no terms");
        let cumulate = |v: &[(String, usize)]| {
            let mut acc = 0u64;
            v.iter()
                .map(|&(_, c)| {
                    acc += c as u64;
                    acc
                })
                .collect::<Vec<u64>>()
        };
        let name_weights = cumulate(&names);
        let term_weights = cumulate(&terms);
        QueryGenerator {
            names: names.into_iter().map(|(l, _)| l).collect(),
            terms: terms.into_iter().map(|(l, _)| l).collect(),
            name_weights,
            term_weights,
            rng: StdRng::seed_from_u64(cfg.seed),
            cfg,
        }
    }

    fn pick(rng: &mut StdRng, pool: &[String], weights: &[u64], weighted: bool) -> String {
        let idx = if weighted {
            // Pools are non-empty by construction; 1 keeps gen_range sane
            // if that ever changes.
            let total = weights.last().copied().unwrap_or(1).max(1);
            let u = rng.gen_range(0..total);
            weights.partition_point(|&w| w <= u)
        } else {
            rng.gen_range(0..pool.len())
        };
        pool[idx.min(pool.len() - 1)].clone()
    }

    fn random_name(&mut self) -> String {
        Self::pick(
            &mut self.rng,
            &self.names,
            &self.name_weights,
            self.cfg.weighted_labels,
        )
    }

    fn random_term(&mut self) -> String {
        Self::pick(
            &mut self.rng,
            &self.terms,
            &self.term_weights,
            self.cfg.weighted_labels,
        )
    }

    /// Instantiates the pattern AST: `name` placeholders become random
    /// element names, `term` placeholders random terms (as text selectors).
    fn instantiate(&mut self, node: &QueryNode) -> QueryNode {
        match node {
            QueryNode::Name { label, child } => {
                if label == "term" {
                    assert!(child.is_none(), "`term` placeholders cannot have children");
                    QueryNode::Text {
                        word: self.random_term(),
                    }
                } else {
                    let new_label = if label == "name" {
                        self.random_name()
                    } else {
                        label.clone()
                    };
                    QueryNode::Name {
                        label: new_label,
                        child: child.as_ref().map(|c| Box::new(self.instantiate(c))),
                    }
                }
            }
            QueryNode::Text { .. } => node.clone(),
            QueryNode::And(l, r) => {
                QueryNode::And(Box::new(self.instantiate(l)), Box::new(self.instantiate(r)))
            }
            QueryNode::Or(l, r) => {
                QueryNode::Or(Box::new(self.instantiate(l)), Box::new(self.instantiate(r)))
            }
        }
    }

    fn collect_selectors(node: &QueryNode, out: &mut Vec<(NodeType, String)>) {
        match node {
            QueryNode::Name { label, child } => {
                out.push((NodeType::Struct, label.clone()));
                if let Some(c) = child {
                    Self::collect_selectors(c, out);
                }
            }
            QueryNode::Text { word } => out.push((NodeType::Text, word.clone())),
            QueryNode::And(l, r) | QueryNode::Or(l, r) => {
                Self::collect_selectors(l, out);
                Self::collect_selectors(r, out);
            }
        }
    }

    fn cost_in(&mut self, range: (u64, u64)) -> Cost {
        Cost::finite(self.rng.gen_range(range.0..=range.1))
    }

    /// Produces one query from `pattern` together with its cost table.
    ///
    /// # Panics
    /// Panics if `pattern` is not a valid pattern (patterns are parsed
    /// with the ordinary approXQL grammar).
    pub fn generate(&mut self, pattern: &str) -> GeneratedQuery {
        // lint:allow(no-panic) the documented `# Panics` contract above
        let parsed = parse_query(pattern).expect("invalid query pattern");
        let root = self.instantiate(&parsed.root);
        let query = approxql_query::Query { root };

        let mut selectors = Vec::new();
        Self::collect_selectors(&query.root, &mut selectors);

        let mut builder = CostModel::builder().insert_default(1);
        let mut seen = std::collections::HashSet::new();
        for (ty, label) in selectors {
            if !seen.insert((ty, label.clone())) {
                continue;
            }
            let del = self.cost_in(self.cfg.delete_cost_range);
            builder = builder.delete(ty, &label, del);
            let mut used = std::collections::HashSet::new();
            used.insert(label.clone());
            let pool_size = match ty {
                NodeType::Struct => self.names.len(),
                NodeType::Text => self.terms.len(),
            };
            let want = self
                .cfg
                .renamings_per_label
                .min(pool_size.saturating_sub(1));
            let mut attempts = 0;
            while used.len() - 1 < want && attempts < 20 * want.max(1) {
                attempts += 1;
                let target = match ty {
                    NodeType::Struct => self.random_name(),
                    NodeType::Text => self.random_term(),
                };
                if !used.insert(target.clone()) {
                    continue; // duplicate target; resample
                }
                let cost = self.cost_in(self.cfg.rename_cost_range);
                builder = builder.rename(ty, &label, &target, cost);
            }
        }
        GeneratedQuery {
            query: query.to_string(),
            costs: builder.build(),
        }
    }

    /// Produces a batch of queries (the experiments use sets of 10).
    pub fn generate_batch(&mut self, pattern: &str, count: usize) -> Vec<GeneratedQuery> {
        (0..count).map(|_| self.generate(pattern)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::data::{DataGenConfig, DataGenerator};

    fn small_db() -> (DataTree, LabelIndex) {
        let cfg = DataGenConfig {
            element_count: 300,
            element_names: 15,
            vocabulary: 40,
            word_occurrences: 1_200,
            ..DataGenConfig::default()
        };
        let tree = DataGenerator::new(cfg).generate_tree(&CostModel::new());
        let index = LabelIndex::build(&tree);
        (tree, index)
    }

    #[test]
    fn patterns_parse_as_approxql() {
        for p in [PATTERN_1, PATTERN_2, PATTERN_3] {
            assert!(parse_query(p).is_ok(), "pattern does not parse: {p}");
        }
    }

    #[test]
    fn generated_queries_parse_and_have_pattern_shape() {
        let (tree, index) = small_db();
        let mut g = QueryGenerator::new(&tree, &index, QueryGenConfig::default());
        for pattern in [PATTERN_1, PATTERN_2, PATTERN_3] {
            let gq = g.generate(pattern);
            let parsed = parse_query(&gq.query).expect("generated query must parse");
            let pattern_parsed = parse_query(pattern).unwrap();
            assert_eq!(parsed.selector_count(), pattern_parsed.selector_count());
            assert_eq!(parsed.or_count(), pattern_parsed.or_count());
        }
    }

    #[test]
    fn labels_come_from_the_collection() {
        let (tree, index) = small_db();
        let mut g = QueryGenerator::new(&tree, &index, QueryGenConfig::default());
        let gq = g.generate(PATTERN_2);
        let parsed = parse_query(&gq.query).unwrap();
        let mut selectors = Vec::new();
        QueryGenerator::collect_selectors(&parsed.root, &mut selectors);
        for (_, label) in selectors {
            assert!(
                tree.lookup_label(&label).is_some(),
                "label {label} not in collection"
            );
        }
    }

    #[test]
    fn renamings_per_label_is_respected() {
        let (tree, index) = small_db();
        let cfg = QueryGenConfig {
            renamings_per_label: 5,
            ..QueryGenConfig::default()
        };
        let mut g = QueryGenerator::new(&tree, &index, cfg);
        let gq = g.generate(PATTERN_1);
        let parsed = parse_query(&gq.query).unwrap();
        let mut selectors = Vec::new();
        QueryGenerator::collect_selectors(&parsed.root, &mut selectors);
        for (ty, label) in selectors {
            let r = gq.costs.renamings(ty, &label).len();
            // Duplicate random targets may be skipped, but most survive.
            assert!(
                (1..=5).contains(&r),
                "expected 1..=5 renamings for {label}, got {r}"
            );
            assert!(gq.costs.delete_cost(ty, &label).is_finite());
        }
    }

    #[test]
    fn zero_renamings_config() {
        let (tree, index) = small_db();
        let mut g = QueryGenerator::new(&tree, &index, QueryGenConfig::default());
        let gq = g.generate(PATTERN_1);
        assert_eq!(gq.costs.listed_renames().count(), 0);
    }

    #[test]
    fn batch_is_deterministic_under_seed() {
        let (tree, index) = small_db();
        let mut g1 = QueryGenerator::new(&tree, &index, QueryGenConfig::default());
        let mut g2 = QueryGenerator::new(&tree, &index, QueryGenConfig::default());
        let b1: Vec<String> = g1
            .generate_batch(PATTERN_3, 10)
            .into_iter()
            .map(|q| q.query)
            .collect();
        let b2: Vec<String> = g2
            .generate_batch(PATTERN_3, 10)
            .into_iter()
            .map(|q| q.query)
            .collect();
        assert_eq!(b1, b2);
        // And the batch is not 10 copies of one query.
        let distinct: std::collections::HashSet<&String> = b1.iter().collect();
        assert!(distinct.len() > 1);
    }

    #[test]
    fn cost_file_roundtrips() {
        let (tree, index) = small_db();
        let cfg = QueryGenConfig {
            renamings_per_label: 3,
            ..QueryGenConfig::default()
        };
        let mut g = QueryGenerator::new(&tree, &index, cfg);
        let gq = g.generate(PATTERN_2);
        let text = approxql_cost::write_cost_file(&gq.costs);
        let parsed = approxql_cost::parse_cost_file(&text).unwrap();
        assert_eq!(approxql_cost::write_cost_file(&parsed), text);
    }
}
