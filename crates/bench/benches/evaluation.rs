//! End-to-end evaluation benchmarks: direct vs. schema-driven best-n on a
//! generated collection (a criterion-sized slice of Figure 7), plus the
//! dynamic-programming ablation (memoization on/off).

use approxql_bench::{build_collection, make_queries, PATTERNS};
use approxql_core::direct;
use approxql_core::schema_eval::{self, SchemaEvalConfig};
use approxql_core::EvalOptions;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_direct_vs_schema(c: &mut Criterion) {
    // 1/100 of the paper scale: 10,000 elements, 100,000 words.
    let col = build_collection(100, 5);
    let mut group = c.benchmark_group("best10");
    group.sample_size(20);
    for (idx, (name, pattern)) in PATTERNS.iter().enumerate() {
        let queries = make_queries(&col, pattern, 5, 3, 17 + idx as u64);
        group.bench_with_input(BenchmarkId::new("direct", name), &queries, |b, qs| {
            b.iter(|| {
                for (_, ex) in qs {
                    let _ = direct::best_n(
                        ex,
                        &col.labels,
                        col.tree.interner(),
                        Some(10),
                        EvalOptions::default(),
                    );
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("schema", name), &queries, |b, qs| {
            b.iter(|| {
                for (_, ex) in qs {
                    let _ = schema_eval::best_n_schema(
                        ex,
                        &col.schema,
                        col.tree.interner(),
                        10,
                        EvalOptions::default(),
                        SchemaEvalConfig::default(),
                    );
                }
            })
        });
    }
    group.finish();
}

fn bench_memo_ablation(c: &mut Criterion) {
    let col = build_collection(100, 5);
    let queries = make_queries(&col, PATTERNS[2].1, 5, 3, 23);
    let mut group = c.benchmark_group("memo_ablation");
    group.sample_size(20);
    for (label, use_memo) in [("memo_on", true), ("memo_off", false)] {
        let opts = EvalOptions {
            use_memo,
            ..EvalOptions::default()
        };
        group.bench_function(label, |b| {
            b.iter(|| {
                for (_, ex) in &queries {
                    let _ = direct::best_n(ex, &col.labels, col.tree.interner(), None, opts);
                }
            })
        });
    }
    group.finish();
}

fn bench_join_ablation_end_to_end(c: &mut Criterion) {
    let col = build_collection(100, 5);
    let queries = make_queries(&col, PATTERNS[1].1, 10, 3, 29);
    let mut group = c.benchmark_group("join_ablation");
    group.sample_size(20);
    for (label, use_paper_joins) in [("fold_on_pop", false), ("paper_rescan", true)] {
        let opts = EvalOptions {
            use_paper_joins,
            ..EvalOptions::default()
        };
        group.bench_function(label, |b| {
            b.iter(|| {
                for (_, ex) in &queries {
                    let _ = direct::best_n(ex, &col.labels, col.tree.interner(), None, opts);
                }
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_direct_vs_schema,
    bench_memo_ablation,
    bench_join_ablation_end_to_end
);
criterion_main!(benches);
