//! End-to-end evaluation benchmarks: direct vs. schema-driven best-n on a
//! generated collection (a criterion-sized slice of Figure 7), plus the
//! physical-plan pipeline (compile cost vs. reusing a cached plan).

use approxql_bench::{build_collection, make_queries, PATTERNS};
use approxql_core::direct;
use approxql_core::schema_eval::{self, SchemaEvalConfig};
use approxql_core::EvalOptions;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_direct_vs_schema(c: &mut Criterion) {
    // 1/100 of the paper scale: 10,000 elements, 100,000 words.
    let col = build_collection(100, 5);
    let mut group = c.benchmark_group("best10");
    group.sample_size(20);
    for (idx, (name, pattern)) in PATTERNS.iter().enumerate() {
        let queries = make_queries(&col, pattern, 5, 3, 17 + idx as u64);
        group.bench_with_input(BenchmarkId::new("direct", name), &queries, |b, qs| {
            b.iter(|| {
                for (_, ex) in qs {
                    let _ = direct::best_n(
                        ex,
                        &col.labels,
                        col.tree.interner(),
                        Some(10),
                        EvalOptions::default(),
                    );
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("schema", name), &queries, |b, qs| {
            b.iter(|| {
                for (_, ex) in qs {
                    let _ = schema_eval::best_n_schema(
                        ex,
                        &col.schema,
                        col.tree.interner(),
                        10,
                        EvalOptions::default(),
                        SchemaEvalConfig::default(),
                    );
                }
            })
        });
    }
    group.finish();
}

/// The plan pipeline: compilation alone, evaluation with compile-on-use,
/// and evaluation over a pre-compiled (cache-hit) plan. The difference
/// between the last two is what the keyed plan cache saves per request.
fn bench_plan_pipeline(c: &mut Criterion) {
    let col = build_collection(100, 5);
    let queries = make_queries(&col, PATTERNS[2].1, 5, 3, 23);
    let plans: Vec<_> = queries
        .iter()
        .map(|(_, ex)| approxql_plan::compile(ex).unwrap())
        .collect();
    let mut group = c.benchmark_group("plan_pipeline");
    group.sample_size(20);
    group.bench_function("compile", |b| {
        b.iter(|| {
            for (_, ex) in &queries {
                let _ = approxql_plan::compile(ex);
            }
        })
    });
    group.bench_function("compile_and_eval", |b| {
        b.iter(|| {
            for (_, ex) in &queries {
                let _ = direct::best_n(
                    ex,
                    &col.labels,
                    col.tree.interner(),
                    None,
                    EvalOptions::default(),
                );
            }
        })
    });
    group.bench_function("cached_plan_eval", |b| {
        b.iter(|| {
            for plan in &plans {
                let _ = direct::best_n_plan(
                    plan,
                    &col.labels,
                    col.tree.interner(),
                    None,
                    EvalOptions::default(),
                );
            }
        })
    });
    group.finish();
}

criterion_group!(benches, bench_direct_vs_schema, bench_plan_pipeline);
criterion_main!(benches);
