//! Microbenchmarks of the list algebra (Section 6.4), including the
//! ablation `join` (fold-on-pop structural merge) vs. `join_paper`
//! (per-ancestor interval rescan, the paper's O(s·l) formulation).

use approxql_core::list::{self, Entry, List};
use approxql_tree::Cost;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds an ancestor list of `n` disjoint intervals and a descendant list
/// with `per` descendants inside each interval.
fn make_lists(n: usize, per: usize) -> (List, List) {
    let mut ancestors = Vec::with_capacity(n);
    let mut descendants = Vec::with_capacity(n * per);
    let mut rng = StdRng::seed_from_u64(9);
    let width = (per as u32 + 2) * 2;
    for i in 0..n as u32 {
        let pre = i * width;
        ancestors.push(Entry {
            pre,
            bound: pre + width - 1,
            pathcost: Cost::finite(2),
            inscost: Cost::finite(1),
            cost_any: Cost::ZERO,
            cost_leaf: Cost::INFINITY,
        });
        for j in 0..per as u32 {
            let dpre = pre + 1 + j * 2;
            let c = rng.gen_range(0..20u64);
            descendants.push(Entry {
                pre: dpre,
                bound: dpre,
                pathcost: Cost::finite(3 + (j % 4) as u64),
                inscost: Cost::finite(1),
                cost_any: Cost::finite(c),
                cost_leaf: Cost::finite(c),
            });
        }
    }
    (ancestors, descendants)
}

fn bench_joins(c: &mut Criterion) {
    let mut group = c.benchmark_group("join");
    for (n, per) in [(1_000usize, 10usize), (10_000, 10)] {
        let (a, d) = make_lists(n, per);
        group.bench_with_input(
            BenchmarkId::new("fold_on_pop", format!("{n}x{per}")),
            &(&a, &d),
            |b, (a, d)| b.iter(|| list::join(a, d, Cost::ZERO)),
        );
        group.bench_with_input(
            BenchmarkId::new("paper_rescan", format!("{n}x{per}")),
            &(&a, &d),
            |b, (a, d)| b.iter(|| list::join_paper(a, d, Cost::ZERO)),
        );
    }
    group.finish();
}

fn bench_set_ops(c: &mut Criterion) {
    let (a, d) = make_lists(10_000, 2);
    let mut group = c.benchmark_group("set_ops");
    group.bench_function("intersect_10k", |b| {
        b.iter(|| list::intersect(&a, &a, Cost::ZERO))
    });
    group.bench_function("union_10k", |b| b.iter(|| list::union(&a, &a, Cost::ZERO)));
    group.bench_function("merge_10k", |b| {
        b.iter(|| list::merge(&a, &d, Cost::finite(3)))
    });
    group.bench_function("outerjoin_10k", |b| {
        b.iter(|| list::outerjoin(&a, &d, Cost::ZERO, Cost::finite(5)))
    });
    group.finish();
}

criterion_group!(benches, bench_joins, bench_set_ops);
criterion_main!(benches);
