//! Construction benchmarks: synthetic generation, label indexing, schema
//! building — the fixed costs the schema-driven approach pays up front.

use approxql_cost::CostModel;
use approxql_gen::{DataGenConfig, DataGenerator};
use approxql_index::LabelIndex;
use approxql_schema::Schema;
use criterion::{criterion_group, criterion_main, Criterion};

fn cfg() -> DataGenConfig {
    // 1/100 of the paper scale.
    DataGenConfig::paper_scale_divided(100)
}

fn bench_build(c: &mut Criterion) {
    let costs = CostModel::new();
    let mut group = c.benchmark_group("build_10k_elements");
    group.sample_size(10);
    group.bench_function("generate_tree", |b| {
        b.iter(|| DataGenerator::new(cfg()).generate_tree(&costs))
    });
    let tree = DataGenerator::new(cfg()).generate_tree(&costs);
    group.bench_function("label_index", |b| b.iter(|| LabelIndex::build(&tree)));
    group.bench_function("schema", |b| b.iter(|| Schema::build(&tree, &costs)));
    group.bench_function("tree_serialize", |b| b.iter(|| tree.to_bytes()));
    let bytes = tree.to_bytes();
    group.bench_function("tree_deserialize", |b| {
        b.iter(|| approxql_tree::DataTree::from_bytes(&bytes).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
