#![forbid(unsafe_code)]
//! Shared harness for the experiment reproduction (Section 8).
//!
//! The experiments compare the **direct** evaluation (find all results,
//! sort, prune after `n`) with the **schema-driven** evaluation (generate
//! the best `k` second-level queries against the schema, execute them
//! incrementally) over three query patterns × {0, 5, 10} renamings per
//! label, as a function of `n` — Figure 7 of the paper.
//!
//! One deliberate economy: the generated per-query cost tables never list
//! explicit *insert* costs (all inserts default to 1, as in Section 6), so
//! the tree/schema encodings — whose `inscost`/`pathcost` columns are the
//! only cost-dependent state — are identical for every query, and the
//! collection is built once per series.

use approxql_core::direct;
use approxql_core::schema_eval::{self, SchemaEvalConfig};
use approxql_core::EvalOptions;
use approxql_cost::CostModel;
use approxql_exec::Executor;
use approxql_gen::{
    DataGenConfig, DataGenerator, GeneratedQuery, QueryGenConfig, QueryGenerator, PATTERN_1,
    PATTERN_2, PATTERN_3,
};
use approxql_index::LabelIndex;
use approxql_metrics::{Layer, Metric, MetricsSnapshot};
use approxql_query::expand::ExpandedQuery;
use approxql_query::parse_query;
use approxql_schema::Schema;
use approxql_tree::DataTree;
use std::time::Instant;

/// The three query patterns of Section 8.1, in paper order.
pub const PATTERNS: [(&str, &str); 3] = [
    ("pattern 1 (simple path)", PATTERN_1),
    ("pattern 2 (small Boolean)", PATTERN_2),
    ("pattern 3 (large Boolean)", PATTERN_3),
];

/// The renaming counts of the test series.
pub const RENAMINGS: [usize; 3] = [0, 5, 10];

/// A generated collection with its evaluation-side structures.
pub struct Collection {
    /// The encoded data tree.
    pub tree: DataTree,
    /// `I_struct` / `I_text`.
    pub labels: LabelIndex,
    /// The schema with its indexes.
    pub schema: Schema,
}

/// Builds the test collection at `1/div` of the paper scale (`div = 1`
/// reproduces the full "1,000,000 elements, 100,000 terms, 10,000,000
/// term occurrences, 100 element names" series).
pub fn build_collection(div: usize, seed: u64) -> Collection {
    let mut cfg = DataGenConfig::paper_scale_divided(div);
    cfg.seed = seed;
    let costs = CostModel::new();
    let tree = DataGenerator::new(cfg).generate_tree(&costs);
    let labels = LabelIndex::build(&tree);
    let schema = Schema::build(&tree, &costs);
    Collection {
        tree,
        labels,
        schema,
    }
}

/// One measured cell of Figure 7.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Pattern name (see [`PATTERNS`]).
    pub pattern: &'static str,
    /// Renamings per label.
    pub renamings: usize,
    /// Requested result count (`None` = all results, the paper's n = ∞).
    pub n: Option<usize>,
    /// `"direct"` or `"schema"`.
    pub algorithm: &'static str,
    /// Worker threads the cell was measured with (1 = sequential).
    pub threads: usize,
    /// Mean evaluation time per query in milliseconds.
    pub mean_ms: f64,
    /// Mean number of results actually returned.
    pub mean_results: f64,
    /// Mean per-layer operation counts per query.
    pub work: WorkCounts,
}

/// Per-layer operation counts averaged over one measured query set —
/// Figure 7's *work* comparison alongside the wall-clock comparison.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkCounts {
    /// Label-index fetches.
    pub index_fetches: f64,
    /// Posting entries retrieved from the label index.
    pub postings_fetched: f64,
    /// Direct list-algebra operations executed.
    pub list_ops: f64,
    /// Entries produced by the direct list operations.
    pub list_entries: f64,
    /// Top-k (schema-side) list operations executed.
    pub topk_ops: f64,
    /// Entries produced by the top-k operations.
    pub topk_entries: f64,
    /// Incremental-driver rounds (schema only).
    pub rounds: f64,
    /// Second-level queries executed against the data (schema only).
    pub second_level_queries: f64,
    /// Instances retrieved by the `secondary` executions (schema only).
    pub secondary_rows: f64,
    /// Compressed posting frames decoded by query operators (§14).
    pub blocks_decoded: f64,
    /// Compressed posting frames skipped via skip headers.
    pub blocks_skipped: f64,
    /// Compressed frame bytes decoded by query operators.
    pub postings_bytes: f64,
}

impl WorkCounts {
    /// Derives per-query means from a metrics diff over `queries` runs.
    pub fn from_diff(d: &MetricsSnapshot, queries: usize) -> WorkCounts {
        let per = |v: u64| v as f64 / queries.max(1) as f64;
        let layer_ops = |layer: Layer, exclude: Metric| {
            d.counters()
                .filter(|&(m, _)| m.layer() == layer && m != exclude)
                .map(|(_, v)| v)
                .sum::<u64>()
        };
        WorkCounts {
            index_fetches: per(d.get(Metric::IndexLabelFetches)),
            postings_fetched: per(d.get(Metric::IndexPostingsFetched)),
            list_ops: per(layer_ops(Layer::List, Metric::ListEntriesProduced)),
            list_entries: per(d.get(Metric::ListEntriesProduced)),
            topk_ops: per(d.get(Metric::TopkOps)),
            topk_entries: per(d.get(Metric::TopkEntriesProduced)),
            rounds: per(d.get(Metric::EvalSchemaRounds)),
            second_level_queries: per(d.get(Metric::EvalSecondLevelQueries)),
            secondary_rows: per(d.get(Metric::EvalSecondaryRows)),
            blocks_decoded: per(d.get(Metric::PostingsBlocksDecoded)),
            blocks_skipped: per(d.get(Metric::PostingsBlocksSkipped)),
            postings_bytes: per(d.get(Metric::PostingsBytes)),
        }
    }

    /// Fraction of consulted compressed frames that were skipped without
    /// decoding (the §14 *skip delta*); 0 when no frames were consulted.
    pub fn skip_fraction(&self) -> f64 {
        let consulted = self.blocks_decoded + self.blocks_skipped;
        if consulted == 0.0 {
            0.0
        } else {
            self.blocks_skipped / consulted
        }
    }

    /// TSV column names, matching [`WorkCounts::to_tsv_fields`].
    pub fn tsv_header() -> &'static str {
        "index_fetches\tpostings\tlist_ops\tlist_entries\ttopk_ops\ttopk_entries\trounds\tsecond_level\tsecondary_rows\tblocks_decoded\tblocks_skipped\tpostings_bytes\tskip_delta"
    }

    /// TSV column values (one decimal: the counts are per-query means).
    pub fn to_tsv_fields(&self) -> String {
        format!(
            "{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.1}\t{:.3}",
            self.index_fetches,
            self.postings_fetched,
            self.list_ops,
            self.list_entries,
            self.topk_ops,
            self.topk_entries,
            self.rounds,
            self.second_level_queries,
            self.secondary_rows,
            self.blocks_decoded,
            self.blocks_skipped,
            self.postings_bytes,
            self.skip_fraction(),
        )
    }
}

/// Compiles a generated query against its own cost table.
pub fn compile(gq: &GeneratedQuery) -> ExpandedQuery {
    let q = parse_query(&gq.query).expect("generated queries always parse");
    ExpandedQuery::build(&q, &gq.costs)
}

/// Times the direct evaluation of `queries` for a given `n`.
///
/// `threads > 1` distributes whole queries over a worker pool
/// (coarse-grained: each query still evaluates sequentially inside its
/// job), so per-query means stay comparable to a sequential run and the
/// merged work counters are identical — only the harness wall-clock drops.
pub fn time_direct(
    col: &Collection,
    queries: &[(GeneratedQuery, ExpandedQuery)],
    n: Option<usize>,
    threads: usize,
) -> (f64, f64, WorkCounts) {
    let opts = EvalOptions {
        threads: 1,
        ..EvalOptions::default()
    };
    // Warm up caches so the first query is not measured cold.
    if let Some((_, ex)) = queries.first() {
        let _ = direct::best_n(ex, &col.labels, col.tree.interner(), n, opts);
    }
    let baseline = approxql_metrics::snapshot();
    let timed = Executor::new(threads).scope(|scope| {
        scope.map(
            queries.iter().collect(),
            move |(_, ex): &(GeneratedQuery, ExpandedQuery)| {
                let start = Instant::now();
                let (hits, _) = direct::best_n(ex, &col.labels, col.tree.interner(), n, opts);
                (start.elapsed().as_secs_f64() * 1e3, hits.len())
            },
        )
    });
    let work = approxql_metrics::snapshot().diff(&baseline);
    let total_ms: f64 = timed.iter().map(|&(ms, _)| ms).sum();
    let total_results: usize = timed.iter().map(|&(_, r)| r).sum();
    (
        total_ms / queries.len() as f64,
        total_results as f64 / queries.len() as f64,
        WorkCounts::from_diff(&work, queries.len()),
    )
}

/// Times the schema-driven evaluation of `queries` for a given `n`.
///
/// `None` means "all results" (the paper's n = ∞ points): the schema path
/// is asked for each query's known total result count, i.e. it must
/// deliver the complete result list through second-level queries.
pub fn time_schema(
    col: &Collection,
    queries: &[(GeneratedQuery, ExpandedQuery)],
    n: Option<usize>,
    threads: usize,
) -> (f64, f64, WorkCounts) {
    let opts = EvalOptions {
        threads: 1,
        ..EvalOptions::default()
    };
    // The per-query totals (for the n = ∞ points) are themselves direct
    // evaluations — spread them over the pool too.
    let totals: Vec<usize> = Executor::new(threads).scope(|scope| {
        scope.map(
            queries.iter().collect(),
            move |(_, ex): &(GeneratedQuery, ExpandedQuery)| {
                direct::best_n(ex, &col.labels, col.tree.interner(), None, opts)
                    .0
                    .len()
            },
        )
    });
    // Warm up caches so the first query is not measured cold.
    if let Some((_, ex)) = queries.first() {
        let _ = schema_eval::best_n_schema(
            ex,
            &col.schema,
            col.tree.interner(),
            n.unwrap_or(1),
            opts,
            SchemaEvalConfig::default(),
        );
    }
    let baseline = approxql_metrics::snapshot();
    let totals = &totals;
    let timed = Executor::new(threads).scope(|scope| {
        scope.map(
            queries.iter().enumerate().collect(),
            move |(i, (_, ex)): (usize, &(GeneratedQuery, ExpandedQuery))| {
                let (want, cfg) = match n {
                    Some(n) => (n, SchemaEvalConfig::default()),
                    // "all results": ask for the known total and allow the
                    // driver to enumerate however many second-level
                    // queries that takes.
                    None => (
                        totals[i].max(1),
                        SchemaEvalConfig {
                            max_k: 1 << 26,
                            ..SchemaEvalConfig::default()
                        },
                    ),
                };
                let start = Instant::now();
                let (hits, _) = schema_eval::best_n_schema(
                    ex,
                    &col.schema,
                    col.tree.interner(),
                    want,
                    opts,
                    cfg,
                );
                (start.elapsed().as_secs_f64() * 1e3, hits.len())
            },
        )
    });
    let work = approxql_metrics::snapshot().diff(&baseline);
    let total_ms: f64 = timed.iter().map(|&(ms, _)| ms).sum();
    let total_results: usize = timed.iter().map(|&(_, r)| r).sum();
    (
        total_ms / queries.len() as f64,
        total_results as f64 / queries.len() as f64,
        WorkCounts::from_diff(&work, queries.len()),
    )
}

/// Generates the query set for one (pattern, renamings) series.
pub fn make_queries(
    col: &Collection,
    pattern: &str,
    renamings: usize,
    count: usize,
    seed: u64,
) -> Vec<(GeneratedQuery, ExpandedQuery)> {
    let cfg = QueryGenConfig {
        renamings_per_label: renamings,
        seed,
        ..QueryGenConfig::default()
    };
    let mut qgen = QueryGenerator::new(&col.tree, &col.labels, cfg);
    qgen.generate_batch(pattern, count)
        .into_iter()
        .map(|gq| {
            let ex = compile(&gq);
            (gq, ex)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_one_cell() {
        let col = build_collection(1000, 1); // 1,000 elements
        let queries = make_queries(&col, PATTERN_1, 0, 2, 7);
        let (direct_ms, direct_results, direct_work) = time_direct(&col, &queries, Some(10), 1);
        let (schema_ms, schema_results, schema_work) = time_schema(&col, &queries, Some(10), 1);
        assert!(direct_ms >= 0.0 && schema_ms >= 0.0);
        // Both algorithms agree on the number of results for small n.
        assert_eq!(direct_results, schema_results);
        // Work counters land in the right columns: the direct run does
        // list-algebra work and no second-level queries; the schema run
        // does top-k work and executes second-level queries.
        assert!(direct_work.list_ops > 0.0 && direct_work.index_fetches > 0.0);
        assert_eq!(direct_work.second_level_queries, 0.0);
        assert!(schema_work.topk_ops > 0.0 && schema_work.second_level_queries > 0.0);
        assert!(schema_work.rounds >= 1.0);
    }

    #[test]
    fn parallel_harness_matches_sequential() {
        let col = build_collection(1000, 1); // 1,000 elements
        let queries = make_queries(&col, PATTERN_2, 5, 4, 9);
        let (_, seq_results, seq_work) = time_direct(&col, &queries, Some(10), 1);
        let (_, par_results, par_work) = time_direct(&col, &queries, Some(10), 4);
        assert_eq!(seq_results, par_results);
        // Coarse-grained parallelism merges every worker's counters into
        // the harness thread: the work columns must be *exactly* equal.
        assert_eq!(seq_work, par_work);
        let (_, s_seq, w_seq) = time_schema(&col, &queries, Some(10), 1);
        let (_, s_par, w_par) = time_schema(&col, &queries, Some(10), 4);
        assert_eq!(s_seq, s_par);
        assert_eq!(w_seq, w_par);
    }

    #[test]
    fn direct_and_schema_agree_on_generated_queries() {
        let col = build_collection(2000, 3); // 500 elements
        for renamings in [0, 5] {
            let queries = make_queries(&col, PATTERN_2, renamings, 3, 11);
            for (gq, ex) in &queries {
                let (d, _) = direct::best_n(
                    ex,
                    &col.labels,
                    col.tree.interner(),
                    Some(10),
                    EvalOptions::default(),
                );
                let (s, _) = schema_eval::best_n_schema(
                    ex,
                    &col.schema,
                    col.tree.interner(),
                    10.min(d.len().max(1)),
                    EvalOptions::default(),
                    SchemaEvalConfig::default(),
                );
                // Both must return the same cost sequence; at the cut the
                // tie-breaking may differ (any best-n set is valid), so
                // roots are compared only strictly below the last cost.
                let d_trunc: Vec<_> = d.iter().take(s.len()).copied().collect();
                let s_costs: Vec<_> = s.iter().map(|&(_, c)| c).collect();
                let d_costs: Vec<_> = d_trunc.iter().map(|&(_, c)| c).collect();
                assert_eq!(s_costs, d_costs, "cost mismatch for {}", gq.query);
                if let Some(&(_, last)) = s.last() {
                    let s_strict: std::collections::BTreeSet<_> =
                        s.iter().filter(|&&(_, c)| c < last).collect();
                    let d_strict: std::collections::BTreeSet<_> =
                        d_trunc.iter().filter(|&&(_, c)| c < last).collect();
                    assert_eq!(s_strict, d_strict, "root mismatch for {}", gq.query);
                }
            }
        }
    }
}
