#![forbid(unsafe_code)]
//! Regenerates Figure 7 of the paper: evaluation times of the three query
//! patterns, direct vs. schema-driven, over the number of requested
//! results `n` and {0, 5, 10} renamings per label.
//!
//! ```text
//! figure7 [--scale DIV] [--full] [--pattern 1|2|3] [--queries N]
//!         [--renamings R[,R...]] [--ns N[,N...][,all]] [--seed S]
//!         [--threads N] [--json PATH]
//! ```
//!
//! The default scale is 1/10 of the paper (100,000 elements, 1,000,000
//! word occurrences); `--full` runs the paper's 1,000,000-element series.
//! Output is a TSV table; each row is the mean over the query set
//! (default 10 queries, like the paper). `--threads` (default: available
//! parallelism, or `APPROXQL_THREADS`) fans the repeated queries of each
//! cell out over a worker pool — means and work columns are identical to
//! `--threads 1`; only the harness wall-clock changes. `--json PATH`
//! additionally writes the full result set (collection stats including
//! bytes/posting of the §14 block-compressed label index, plus every
//! measured cell) as a machine-readable JSON report — this is how
//! `BENCH_baseline.json` at the repo root is produced (see
//! EXPERIMENTS.md).

use approxql_bench::{
    build_collection, make_queries, time_direct, time_schema, Measurement, WorkCounts, PATTERNS,
    RENAMINGS,
};

struct Args {
    scale_div: usize,
    patterns: Vec<usize>,
    queries: usize,
    renamings: Vec<usize>,
    ns: Vec<Option<usize>>,
    seed: u64,
    threads: usize,
    json: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: figure7 [--scale DIV] [--full] [--pattern 1|2|3] [--queries N] \
         [--renamings R,R,...] [--ns N,...,all] [--seed S] [--threads N] [--json PATH]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        scale_div: 10,
        patterns: vec![0, 1, 2],
        queries: 10,
        renamings: RENAMINGS.to_vec(),
        ns: vec![Some(1), Some(10), Some(100), Some(1000), None],
        seed: 2002,
        threads: approxql_exec::default_threads(),
        json: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--scale" => args.scale_div = val().parse().unwrap_or_else(|_| usage()),
            "--full" => args.scale_div = 1,
            "--pattern" => {
                let p: usize = val().parse().unwrap_or_else(|_| usage());
                if !(1..=3).contains(&p) {
                    usage();
                }
                args.patterns = vec![p - 1];
            }
            "--queries" => args.queries = val().parse().unwrap_or_else(|_| usage()),
            "--renamings" => {
                args.renamings = val()
                    .split(',')
                    .map(|s| s.parse().unwrap_or_else(|_| usage()))
                    .collect();
            }
            "--ns" => {
                args.ns = val()
                    .split(',')
                    .map(|s| {
                        if s == "all" || s == "inf" {
                            None
                        } else {
                            Some(s.parse().unwrap_or_else(|_| usage()))
                        }
                    })
                    .collect();
            }
            "--seed" => args.seed = val().parse().unwrap_or_else(|_| usage()),
            "--threads" => {
                args.threads = val().parse().unwrap_or_else(|_| usage());
                if args.threads == 0 {
                    usage();
                }
            }
            "--json" => args.json = Some(val()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

fn fmt_n(n: Option<usize>) -> String {
    match n {
        Some(n) => n.to_string(),
        None => "all".to_owned(),
    }
}

/// Renders one measured cell as a JSON object. The repo carries no JSON
/// serializer dependency, so the report is assembled by hand; every string
/// that ends up here is an ASCII identifier, never user input.
fn row_json(m: &Measurement) -> String {
    let w = &m.work;
    format!(
        concat!(
            "{{\"pattern\":\"{}\",\"renamings\":{},\"n\":\"{}\",\"algorithm\":\"{}\",",
            "\"threads\":{},\"mean_ms\":{:.3},\"mean_results\":{:.1},\"work\":{{",
            "\"index_fetches\":{:.1},\"postings_fetched\":{:.1},\"list_ops\":{:.1},",
            "\"list_entries\":{:.1},\"topk_ops\":{:.1},\"topk_entries\":{:.1},",
            "\"rounds\":{:.1},\"second_level_queries\":{:.1},\"secondary_rows\":{:.1},",
            "\"blocks_decoded\":{:.1},\"blocks_skipped\":{:.1},\"postings_bytes\":{:.1},",
            "\"skip_delta\":{:.3}}}}}"
        ),
        m.pattern,
        m.renamings,
        fmt_n(m.n),
        m.algorithm,
        m.threads,
        m.mean_ms,
        m.mean_results,
        w.index_fetches,
        w.postings_fetched,
        w.list_ops,
        w.list_entries,
        w.topk_ops,
        w.topk_entries,
        w.rounds,
        w.second_level_queries,
        w.secondary_rows,
        w.blocks_decoded,
        w.blocks_skipped,
        w.postings_bytes,
        w.skip_fraction(),
    )
}

fn main() {
    let args = parse_args();
    eprintln!(
        "# building collection at 1/{} of the paper scale …",
        args.scale_div
    );
    let t0 = std::time::Instant::now();
    let col = build_collection(args.scale_div, args.seed);
    let stats = col.tree.stats();
    let sstats = col.schema.stats();
    eprintln!(
        "# collection: {} elements, {} words, {} distinct labels, depth {} (built in {:.1?})",
        stats.element_count,
        stats.word_count,
        stats.distinct_labels,
        stats.max_depth,
        t0.elapsed()
    );
    eprintln!(
        "# schema: {} nodes ({}x compression), {} secondary postings, max class {} instances",
        sstats.schema_nodes,
        stats.node_count / sstats.schema_nodes.max(1),
        sstats.secondary_postings,
        sstats.max_instances
    );
    // DESIGN.md §14: the label index stores delta/varint frames; the flat
    // codec it replaced spent a fixed 24 bytes per posting.
    let bytes_per_posting = col.labels.byte_len() as f64 / col.labels.entry_count().max(1) as f64;
    eprintln!(
        "# label index: {} postings in {} bytes ({:.2} bytes/posting; flat codec: 24)",
        col.labels.entry_count(),
        col.labels.byte_len(),
        bytes_per_posting
    );

    eprintln!("# measuring with {} worker thread(s)", args.threads);
    let measure_start = std::time::Instant::now();
    println!(
        "pattern\trenamings\tn\talgorithm\tthreads\tmean_ms\tmean_results\tbytes_per_posting\t{}",
        WorkCounts::tsv_header()
    );
    let mut rows: Vec<Measurement> = Vec::new();
    for &p in &args.patterns {
        let (pattern_name, pattern) = PATTERNS[p];
        for &r in &args.renamings {
            let queries = make_queries(&col, pattern, r, args.queries, args.seed + r as u64);
            for &n in &args.ns {
                let (direct_ms, direct_res, direct_work) =
                    time_direct(&col, &queries, n, args.threads);
                let (schema_ms, schema_res, schema_work) =
                    time_schema(&col, &queries, n, args.threads);
                for (alg, ms, res, work) in [
                    ("direct", direct_ms, direct_res, direct_work),
                    ("schema", schema_ms, schema_res, schema_work),
                ] {
                    let m = Measurement {
                        pattern: pattern_name,
                        renamings: r,
                        n,
                        algorithm: alg,
                        threads: args.threads,
                        mean_ms: ms,
                        mean_results: res,
                        work,
                    };
                    println!(
                        "{}\t{}\t{}\t{}\t{}\t{:.3}\t{:.1}\t{:.2}\t{}",
                        m.pattern,
                        m.renamings,
                        fmt_n(m.n),
                        m.algorithm,
                        m.threads,
                        m.mean_ms,
                        m.mean_results,
                        bytes_per_posting,
                        m.work.to_tsv_fields()
                    );
                    rows.push(m);
                }
            }
        }
    }
    eprintln!(
        "# measured {} cells in {:.1?} wall-clock with {} thread(s)",
        rows.len(),
        measure_start.elapsed(),
        args.threads
    );

    // Shape summary (the paper's qualitative claims).
    eprintln!("#\n# shape summary (schema wins = schema faster than direct):");
    for &p in &args.patterns {
        let (pattern_name, _) = PATTERNS[p];
        for &r in &args.renamings {
            let wins: Vec<String> = args
                .ns
                .iter()
                .filter_map(|&n| {
                    let d = rows.iter().find(|m| {
                        m.pattern == pattern_name
                            && m.renamings == r
                            && m.n == n
                            && m.algorithm == "direct"
                    })?;
                    let s = rows.iter().find(|m| {
                        m.pattern == pattern_name
                            && m.renamings == r
                            && m.n == n
                            && m.algorithm == "schema"
                    })?;
                    Some(format!(
                        "n={}: {}",
                        fmt_n(n),
                        if s.mean_ms < d.mean_ms {
                            "schema"
                        } else {
                            "direct"
                        }
                    ))
                })
                .collect();
            eprintln!("#   {pattern_name}, {r} renamings -> {}", wins.join(", "));
        }
    }

    if let Some(path) = &args.json {
        let rows_json: Vec<String> = rows.iter().map(row_json).collect();
        let report = format!(
            concat!(
                "{{\n",
                "  \"note\": \"mean_ms values are wall-clock timings and vary by machine; ",
                "all work counters and byte counts are deterministic for a given ",
                "scale/seed/queries configuration\",\n",
                "  \"scale_div\": {},\n  \"queries_per_cell\": {},\n  \"seed\": {},\n",
                "  \"threads\": {},\n",
                "  \"collection\": {{\"elements\": {}, \"words\": {}, ",
                "\"distinct_labels\": {}, \"max_depth\": {}, \"schema_nodes\": {}, ",
                "\"secondary_postings\": {}, \"label_index_postings\": {}, ",
                "\"label_index_bytes\": {}, \"bytes_per_posting\": {:.2}, ",
                "\"flat_bytes_per_posting\": 24}},\n",
                "  \"rows\": [\n    {}\n  ]\n}}\n"
            ),
            args.scale_div,
            args.queries,
            args.seed,
            args.threads,
            stats.element_count,
            stats.word_count,
            stats.distinct_labels,
            stats.max_depth,
            sstats.schema_nodes,
            sstats.secondary_postings,
            col.labels.entry_count(),
            col.labels.byte_len(),
            bytes_per_posting,
            rows_json.join(",\n    "),
        );
        // lint:allow(fs-outside-pager) bench report file, not database I/O
        std::fs::write(path, report).unwrap_or_else(|e| {
            eprintln!("figure7: cannot write {path}: {e}");
            std::process::exit(1);
        });
        eprintln!("# wrote JSON report to {path}");
    }
}
