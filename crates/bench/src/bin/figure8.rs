#![forbid(unsafe_code)]
//! Mixed read/write benchmark over a mutable on-disk collection — the
//! companion to `figure7` for PR 8's incremental maintenance path.
//!
//! ```text
//! figure8 [--scale DIV] [--ops N] [--reads-per-write R] [--queries Q]
//!         [--seed S] [--threads T] [--db PATH]
//! ```
//!
//! The harness generates the synthetic collection as individual XML
//! documents, loads most of them into a fresh store file, and then runs a
//! mixed workload: every mutation (two inserts, then a delete, repeating)
//! is followed by `R` queries (alternating direct and schema-driven)
//! against the live [`DbFile`]. It reports per-phase throughput, the
//! label index's bytes/posting before and after the update stream (the
//! §14 compression must survive incremental maintenance), live/tombstone
//! document counts, plan-cache invalidations, and finishes with a full
//! `Database::check_file` pass over the mutated store.

use approxql_core::{Database, DbFile, EvalOptions, SchemaEvalConfig};
use approxql_cost::CostModel;
use approxql_gen::{
    DataGenConfig, DataGenerator, QueryGenConfig, QueryGenerator, PATTERN_1, PATTERN_2,
};
use approxql_metrics::Metric;
use approxql_tree::NodeId;
use approxql_xml::Document;
use std::time::Instant;

struct Args {
    scale_div: usize,
    ops: usize,
    reads_per_write: usize,
    queries: usize,
    seed: u64,
    threads: usize,
    db: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: figure8 [--scale DIV] [--ops N] [--reads-per-write R] [--queries Q] \
         [--seed S] [--threads T] [--db PATH]"
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args {
        scale_div: 100,
        ops: 150,
        reads_per_write: 4,
        queries: 8,
        seed: 2002,
        threads: 1,
        db: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = || it.next().unwrap_or_else(|| usage());
        match a.as_str() {
            "--scale" => args.scale_div = val().parse().unwrap_or_else(|_| usage()),
            "--ops" => args.ops = val().parse().unwrap_or_else(|_| usage()),
            "--reads-per-write" => args.reads_per_write = val().parse().unwrap_or_else(|_| usage()),
            "--queries" => args.queries = val().parse().unwrap_or_else(|_| usage()),
            "--seed" => args.seed = val().parse().unwrap_or_else(|_| usage()),
            "--threads" => {
                args.threads = val().parse().unwrap_or_else(|_| usage());
                if args.threads == 0 {
                    usage();
                }
            }
            "--db" => args.db = Some(val()),
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

/// One accumulating throughput phase of the mixed workload.
#[derive(Default)]
struct Phase {
    ops: usize,
    total_ms: f64,
}

impl Phase {
    fn record(&mut self, t: Instant) {
        self.ops += 1;
        self.total_ms += t.elapsed().as_secs_f64() * 1e3;
    }
    fn row(&self, name: &str) {
        let mean = self.total_ms / self.ops.max(1) as f64;
        let per_s = if self.total_ms > 0.0 {
            self.ops as f64 / (self.total_ms / 1e3)
        } else {
            0.0
        };
        println!(
            "{name}\t{}\t{:.1}\t{:.3}\t{:.0}",
            self.ops, self.total_ms, mean, per_s
        );
    }
}

fn bytes_per_posting(db: &Database) -> f64 {
    db.labels().byte_len() as f64 / db.labels().entry_count().max(1) as f64
}

fn main() {
    let args = parse_args();

    // Generate the collection as documents so it can be replayed as an
    // insert stream; hold out one document in six as the insert pool.
    eprintln!(
        "# generating documents at 1/{} of the paper scale …",
        args.scale_div
    );
    let mut cfg = DataGenConfig::paper_scale_divided(args.scale_div);
    cfg.seed = args.seed;
    let docs: Vec<Document> = DataGenerator::new(cfg)
        .generate_documents()
        .into_iter()
        .map(|root| Document { root })
        .collect();
    let pool_every = 6;
    let mut initial = Vec::new();
    let mut pool = Vec::new();
    for (i, d) in docs.into_iter().enumerate() {
        if i % pool_every == pool_every - 1 {
            pool.push(d);
        } else {
            initial.push(d);
        }
    }
    if pool.is_empty() || initial.is_empty() {
        eprintln!("figure8: collection too small to split; raise --scale");
        std::process::exit(2);
    }

    let tmp;
    let path = match &args.db {
        Some(p) => std::path::PathBuf::from(p),
        None => {
            tmp = std::env::temp_dir().join(format!("figure8-{}.axql", std::process::id()));
            tmp.clone()
        }
    };
    let t0 = Instant::now();
    let db = Database::from_documents(&initial, CostModel::new());
    eprintln!("# built in-memory database in {:.1?}", t0.elapsed());
    let before = bytes_per_posting(&db);
    let initial_postings = db.labels().entry_count();
    // Query pool drawn from the *initial* collection so every query stays
    // meaningful throughout the update stream.
    let mut qgen = QueryGenerator::new(
        db.tree(),
        db.labels(),
        QueryGenConfig {
            seed: args.seed,
            ..QueryGenConfig::default()
        },
    );
    let queries: Vec<String> = (0..args.queries)
        .map(|i| {
            let pattern = if i % 2 == 0 { PATTERN_1 } else { PATTERN_2 };
            qgen.generate(pattern).query
        })
        .collect();
    let t_create = Instant::now();
    let mut file = DbFile::create(&path, db).unwrap_or_else(|e| {
        eprintln!("figure8: cannot create {}: {e}", path.display());
        std::process::exit(1);
    });
    eprintln!("# wrote store file in {:.1?}", t_create.elapsed());
    eprintln!(
        "# loaded {} documents ({} held back as insert pool) in {:.1?}; {} postings, {:.2} bytes/posting",
        initial.len(),
        pool.len(),
        t0.elapsed(),
        initial_postings,
        before
    );
    eprintln!(
        "# workload: {} mutations, {} queries after each, {} thread(s)",
        args.ops, args.reads_per_write, args.threads
    );

    let opts = EvalOptions {
        threads: args.threads,
        ..EvalOptions::default()
    };
    let metrics_start = approxql_metrics::snapshot();
    let mut inserts = Phase::default();
    let mut deletes = Phase::default();
    let mut direct = Phase::default();
    let mut schema = Phase::default();
    let mut next_doc = 0usize;
    let mut next_query = 0usize;
    let wall = Instant::now();
    for op in 0..args.ops {
        // Two inserts, then a delete — the collection slowly grows while
        // the tombstone share rises.
        if op % 3 == 2 {
            let victim = file
                .database()
                .tree()
                .documents()
                .iter()
                .filter(|d| d.alive)
                .nth(op % 5)
                .map(|d| NodeId(d.start));
            if let Some(root) = victim {
                let t = Instant::now();
                file.delete_document(root).unwrap_or_else(|e| {
                    eprintln!("figure8: delete failed: {e}");
                    std::process::exit(1);
                });
                deletes.record(t);
            }
        } else {
            let doc = pool[next_doc % pool.len()].clone();
            next_doc += 1;
            let t = Instant::now();
            file.insert_documents(std::slice::from_ref(&doc))
                .unwrap_or_else(|e| {
                    eprintln!("figure8: insert failed: {e}");
                    std::process::exit(1);
                });
            inserts.record(t);
        }
        for r in 0..args.reads_per_write {
            let q = &queries[next_query % queries.len()];
            next_query += 1;
            if r % 2 == 0 {
                let t = Instant::now();
                let _ = file.database().query_direct_with(q, Some(10), opts);
                direct.record(t);
            } else {
                let t = Instant::now();
                let _ = file
                    .database()
                    .query_schema_with(q, 10, opts, SchemaEvalConfig::default());
                schema.record(t);
            }
        }
    }
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3;
    let delta = approxql_metrics::snapshot().diff(&metrics_start);

    println!("phase\tops\ttotal_ms\tmean_ms\tops_per_s");
    inserts.row("insert");
    deletes.row("delete");
    direct.row("query_direct");
    schema.row("query_schema");

    let db = file.database();
    let after = bytes_per_posting(db);
    let (live, dead) =
        db.tree().documents().iter().fold(
            (0, 0),
            |(l, d), s| {
                if s.alive {
                    (l + 1, d)
                } else {
                    (l, d + 1)
                }
            },
        );
    eprintln!(
        "# label index after updates: {} postings, {:.2} bytes/posting (initial {:.2}; flat codec: 24)",
        db.labels().entry_count(),
        after,
        before
    );
    eprintln!("# documents: {live} live, {dead} tombstoned");
    eprintln!(
        "# store: {} doc inserts, {} doc deletes, {} plan-cache invalidations, commit sequence {}",
        delta.get(Metric::StoreDocInserts),
        delta.get(Metric::StoreDocDeletes),
        delta.get(Metric::PlanCacheInvalidations),
        file.commit_sequence()
    );
    eprintln!("# mixed workload wall-clock: {wall_ms:.1} ms");

    drop(file);
    let t = Instant::now();
    match Database::check_file(&path) {
        Ok(_) => eprintln!("# post-workload check: ok ({:.1?})", t.elapsed()),
        Err(e) => {
            eprintln!("figure8: post-workload check FAILED: {e}");
            std::process::exit(3);
        }
    }
    if args.db.is_none() {
        // lint:allow(fs-outside-pager) bench scratch file cleanup
        let _ = std::fs::remove_file(&path);
    }
}
