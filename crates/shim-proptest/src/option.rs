//! Option strategies (`proptest::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;

/// Strategy for `Option<T>`, biased 3:1 toward `Some` (interesting
/// structure) like upstream's default.
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.gen_bool(0.75) {
            Some(self.inner.generate(rng))
        } else {
            None
        }
    }
}

/// `proptest::option::of(strategy)`.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}
