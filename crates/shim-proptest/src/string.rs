//! String generation from the regex subset the workspace's tests use:
//! literal characters, character classes with ranges and escapes
//! (`[a-z0-9._-]`, `[ -~éüλ☂]`), `\PC` (any non-control character), and
//! `{m,n}` / `{n}` repetition of the preceding atom.

use crate::test_runner::TestRng;
use rand::Rng;
use std::iter::Peekable;
use std::str::Chars;

/// Non-ASCII code points mixed into `\PC` output to stress UTF-8
/// handling (1–4 byte encodings).
const UNICODE_POOL: [char; 6] = ['é', 'ü', 'λ', '☂', '中', '🦀'];

enum Atom {
    /// Inclusive character ranges; single chars are `(c, c)`.
    Class(Vec<(char, char)>),
    /// `\PC` — any printable (non-control) character.
    AnyPrintable,
}

pub(crate) struct Pattern {
    atoms: Vec<(Atom, usize, usize)>,
}

impl Pattern {
    pub(crate) fn parse(pattern: &str) -> Pattern {
        let mut chars = pattern.chars().peekable();
        let mut atoms: Vec<(Atom, usize, usize)> = Vec::new();
        while let Some(c) = chars.next() {
            match c {
                '[' => atoms.push((parse_class(&mut chars), 1, 1)),
                '\\' => {
                    let e = chars.next().expect("regex pattern ends in '\\'");
                    if e == 'P' {
                        let class = chars.next().expect("'\\P' needs a category letter");
                        assert!(class == 'C', "only \\PC is supported, got \\P{class}");
                        atoms.push((Atom::AnyPrintable, 1, 1));
                    } else {
                        atoms.push((Atom::Class(vec![(e, e)]), 1, 1));
                    }
                }
                '{' => {
                    let (min, max) = parse_repeat(&mut chars);
                    let last = atoms
                        .last_mut()
                        .expect("repetition '{…}' without a preceding atom");
                    last.1 = min;
                    last.2 = max;
                }
                other => atoms.push((Atom::Class(vec![(other, other)]), 1, 1)),
            }
        }
        Pattern { atoms }
    }

    pub(crate) fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for (atom, min, max) in &self.atoms {
            let n = rng.gen_range(*min..=*max);
            for _ in 0..n {
                out.push(atom.sample(rng));
            }
        }
        out
    }
}

impl Atom {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            Atom::AnyPrintable => {
                if rng.gen_bool(0.9) {
                    char::from_u32(rng.gen_range(0x20u32..0x7F)).unwrap()
                } else {
                    UNICODE_POOL[rng.gen_range(0..UNICODE_POOL.len())]
                }
            }
            Atom::Class(ranges) => {
                let total: u32 = ranges
                    .iter()
                    .map(|&(lo, hi)| hi as u32 - lo as u32 + 1)
                    .sum();
                let mut off = rng.gen_range(0..total);
                for &(lo, hi) in ranges {
                    let size = hi as u32 - lo as u32 + 1;
                    if off < size {
                        return char::from_u32(lo as u32 + off)
                            .expect("class range spans invalid code points");
                    }
                    off -= size;
                }
                unreachable!("offset exceeded class size")
            }
        }
    }
}

fn parse_class(chars: &mut Peekable<Chars>) -> Atom {
    let mut ranges = Vec::new();
    loop {
        let mut c = chars.next().expect("unterminated character class");
        if c == ']' {
            break;
        }
        if c == '\\' {
            c = chars.next().expect("class ends in '\\'");
        }
        // `a-z` is a range unless the '-' is last in the class (literal).
        let is_range = chars.peek() == Some(&'-') && {
            let mut ahead = chars.clone();
            ahead.next();
            !matches!(ahead.peek(), Some(&']') | None)
        };
        if is_range {
            chars.next(); // the '-'
            let mut hi = chars.next().expect("class range missing upper bound");
            if hi == '\\' {
                hi = chars.next().expect("class ends in '\\'");
            }
            assert!(c <= hi, "descending class range {c}-{hi}");
            ranges.push((c, hi));
        } else {
            ranges.push((c, c));
        }
    }
    assert!(!ranges.is_empty(), "empty character class");
    Atom::Class(ranges)
}

fn parse_repeat(chars: &mut Peekable<Chars>) -> (usize, usize) {
    let mut body = String::new();
    for c in chars.by_ref() {
        if c == '}' {
            let (min, max) = match body.split_once(',') {
                Some((a, b)) => (a.parse().unwrap(), b.parse().unwrap()),
                None => {
                    let n = body.parse().unwrap();
                    (n, n)
                }
            };
            assert!(min <= max, "descending repetition {{{body}}}");
            return (min, max);
        }
        body.push(c);
    }
    panic!("unterminated repetition '{{{body}'");
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> TestRng {
        TestRng::seed_from_u64(99)
    }

    #[test]
    fn class_with_trailing_dash_is_literal() {
        let p = Pattern::parse("[a-z0-9._-]{1,1}");
        let mut r = rng();
        for _ in 0..500 {
            let s = p.generate(&mut r);
            let c = s.chars().next().unwrap();
            assert!(
                c.is_ascii_lowercase() || c.is_ascii_digit() || ".-_".contains(c),
                "unexpected char {c:?}"
            );
        }
    }

    #[test]
    fn space_to_tilde_range() {
        let p = Pattern::parse("[ -~éüλ☂]{0,20}");
        let mut r = rng();
        for _ in 0..200 {
            for c in p.generate(&mut r).chars() {
                assert!((' '..='~').contains(&c) || "éüλ☂".contains(c));
            }
        }
    }

    #[test]
    fn escaped_metachars_in_class() {
        let p = Pattern::parse("[<>&'\"=a-z/! \\-\\[\\]?]{1,1}");
        let mut r = rng();
        let mut saw_bracket = false;
        for _ in 0..2000 {
            let c = p.generate(&mut r).chars().next().unwrap();
            assert!("<>&'\"=/! -[]?".contains(c) || c.is_ascii_lowercase());
            saw_bracket |= c == '[' || c == ']';
        }
        assert!(saw_bracket, "escaped brackets never generated");
    }

    #[test]
    fn any_printable_never_emits_controls() {
        let p = Pattern::parse("\\PC{0,100}");
        let mut r = rng();
        for _ in 0..100 {
            for c in p.generate(&mut r).chars() {
                assert!(!c.is_control(), "control char {c:?} from \\PC");
            }
        }
    }

    #[test]
    fn repetition_bounds_hold() {
        let p = Pattern::parse("[ab]{2,5}");
        let mut r = rng();
        for _ in 0..200 {
            let s = p.generate(&mut r);
            assert!(
                (2..=5).contains(&s.chars().count()),
                "len {} out of bounds",
                s.len()
            );
        }
    }

    #[test]
    fn literal_atoms_and_exact_counts() {
        let p = Pattern::parse("ab{3}c");
        let mut r = rng();
        assert_eq!(p.generate(&mut r), "abbbc");
    }
}
