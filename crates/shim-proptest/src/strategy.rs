//! The [`Strategy`] trait and its combinators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt;
use std::marker::PhantomData;
use std::rc::Rc;

/// A generator of values of type `Self::Value` (subset of proptest's
/// trait: generation only, no shrinking).
pub trait Strategy {
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transforms generated values with `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        U: fmt::Debug,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keeps only values for which `f` returns true (regenerating others).
    fn prop_filter<F>(self, reason: impl Into<String>, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            reason: reason.into(),
            f,
        }
    }

    /// Recursive strategies: `self` is the leaf case; `recurse` builds a
    /// branch case from a strategy for the sub-trees. Nesting is bounded
    /// by `depth` unions of leaf-vs-branch, so generation always
    /// terminates.
    fn prop_recursive<S, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        S: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(current).boxed();
            current = Union::new(vec![leaf.clone(), branch]).boxed();
        }
        current
    }

    /// Type-erases the strategy (cheaply cloneable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, U, F> Strategy for Map<S, F>
where
    S: Strategy,
    U: fmt::Debug,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    reason: String,
    f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter rejected 1000 candidates in a row: {}",
            self.reason
        );
    }
}

/// Uniform choice between same-valued strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.options.len());
        self.options[i].generate(rng)
    }
}

macro_rules! int_range_strategies {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "empty range strategy {}..{}",
                    self.start,
                    self.end
                );
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = rng.gen_range(0..span);
                (self.start as i128 + off as i128) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy {lo}..={hi}");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                assert!(span <= u64::MAX as u128, "full-width inclusive ranges unsupported");
                let off = rng.gen_range(0..span as u64);
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

macro_rules! tuple_strategies {
    ($(($($S:ident . $idx:tt),+))+) => {$(
        impl<$($S: Strategy),+> Strategy for ($($S,)+) {
            type Value = ($($S::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategies! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Types with a canonical "any value" strategy (subset of proptest's
/// `Arbitrary`: the full bit pattern for integers).
pub trait Arbitrary: fmt::Debug + Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy produced by [`any`].
pub struct ArbitraryStrategy<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for ArbitraryStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> ArbitraryStrategy<T> {
    ArbitraryStrategy(PhantomData)
}

/// String strategies from a regex subset (char classes, `\PC`, and
/// `{m,n}` repetition) — see [`crate::string`].
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        crate::string::Pattern::parse(self).generate(rng)
    }
}
