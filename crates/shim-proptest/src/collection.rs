//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// An inclusive size bound for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max: usize,
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> SizeRange {
        assert!(r.start < r.end, "empty size range {}..{}", r.start, r.end);
        SizeRange {
            min: r.start,
            max: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> SizeRange {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max: *r.end(),
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> SizeRange {
        SizeRange { min: n, max: n }
    }
}

/// Strategy for `Vec`s whose length lies in `size`.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: fmt::Debug,
{
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let n = rng.gen_range(self.size.min..=self.size.max);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// `proptest::collection::vec(element, size)`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
