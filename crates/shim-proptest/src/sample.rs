//! Sampling strategies (`proptest::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt;

/// Strategy picking uniformly from a fixed list.
pub struct Select<T> {
    options: Vec<T>,
}

impl<T: Clone + fmt::Debug> Strategy for Select<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.gen_range(0..self.options.len())].clone()
    }
}

/// `proptest::sample::select(options)`.
pub fn select<T: Clone + fmt::Debug>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select from an empty list");
    Select { options }
}
