#![forbid(unsafe_code)]
//! Offline drop-in subset of the `proptest` API.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of proptest its tests actually use: the [`Strategy`] trait
//! with `prop_map` / `prop_filter` / `prop_recursive`, boxed strategies,
//! tuple and integer-range strategies, a regex-subset string strategy,
//! `collection::vec`, `option::of`, `sample::select`, `any`, and the
//! `proptest!` / `prop_oneof!` / `prop_assert!` / `prop_assert_eq!`
//! macros.
//!
//! Differences from upstream: generation is seeded deterministically from
//! the test name (every run explores the same cases — which is exactly
//! what the counter-pinning regression tests want), and failing cases are
//! reported with their debug representation but are **not shrunk**.

pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod string;
pub mod test_runner;

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Declares deterministic property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     fn my_prop(x in 0usize..10, (a, b) in (any::<u8>(), any::<u8>())) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::test_runner::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr;) => {};
    (
        $cfg:expr;
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        // Upstream proptest requires the caller to write `#[test]` inside
        // the block; pass the attributes through verbatim (adding another
        // `#[test]` here would register every property twice).
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut runner =
                $crate::test_runner::TestRunner::new(&config, stringify!($name));
            for _case in 0..config.cases {
                let mut rng = runner.next_rng();
                $(
                    let value =
                        $crate::strategy::Strategy::generate(&($strat), &mut rng);
                    let case_repr = format!("{:?}", value);
                    let $pat = value;
                )+
                let outcome = (move || -> ::std::result::Result<
                    (),
                    $crate::test_runner::TestCaseError,
                > {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property '{}' failed at case {}: {}\nlast input: {}",
                        stringify!($name),
                        _case,
                        e,
                        case_repr,
                    );
                }
            }
        }
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Like `assert!`, but fails the property instead of panicking directly.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Like `assert_eq!`, but fails the property instead of panicking directly.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "{}: `{:?}` != `{:?}`",
            format!($($fmt)*),
            left,
            right
        );
    }};
}

/// Like `assert_ne!`, but fails the property instead of panicking directly.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "{}: `{:?}` == `{:?}`",
            format!($($fmt)*),
            left,
            right
        );
    }};
}
