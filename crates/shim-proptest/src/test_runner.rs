//! Deterministic test driving: config, per-test seeding, case errors.

use rand::SeedableRng;
use std::fmt;

/// The RNG handed to strategies (the vendored seeded generator).
pub type TestRng = rand::rngs::StdRng;

/// Subset of proptest's run configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Drives one property: derives a stable seed from the test name so every
/// run (and every machine) explores the same inputs.
pub struct TestRunner {
    seed: u64,
    case: u64,
}

impl TestRunner {
    pub fn new(_config: &ProptestConfig, name: &str) -> TestRunner {
        TestRunner {
            seed: fnv64(name.as_bytes()),
            case: 0,
        }
    }

    /// A fresh generator for the next case (distinct but deterministic).
    pub fn next_rng(&mut self) -> TestRng {
        self.case += 1;
        TestRng::seed_from_u64(self.seed ^ self.case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A failed property case (`prop_assert!` produces these).
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}
