//! A dependency-free scoped worker pool with work-stealing deques.
//!
//! The workspace builds offline (no registry access), so instead of rayon
//! this crate provides the minimal executor the evaluators need, over
//! `std::thread` only:
//!
//! * **Scoped**: [`Executor::scope`] spawns its workers inside
//!   `std::thread::scope`, so jobs may borrow from the caller's stack
//!   (the evaluator, the indexes, the interner) without `'static` bounds.
//! * **Work-stealing**: every worker owns a deque; jobs produced by a
//!   running job (nested [`Scope::map`] calls) are pushed to the worker's
//!   own deque and popped LIFO, while idle workers steal FIFO from the
//!   others. The thread that submits a batch *helps*: it executes queued
//!   jobs while waiting, so nested maps can never deadlock the pool.
//! * **Metrics merge-on-join**: the `approxql-metrics` registry is
//!   thread-local by design (exact, race-free counts). Each job's counter
//!   and timer deltas are captured on the executing worker, retracted from
//!   the worker's registry, and handed back with the result. [`Scope::map`]
//!   absorbs every delta into the joining thread — totals are *identical*
//!   to a sequential run at any thread count — while
//!   [`Scope::map_deferred`] returns the deltas so a speculative caller
//!   can absorb exactly the work a sequential run would have done and
//!   discard the rest.
//! * **Sequential degenerate case**: a 1-thread executor spawns nothing
//!   and runs every map inline, in item order, on the caller — bit-for-bit
//!   the sequential code path.
//!
//! [`OnceMap`] complements the pool for evaluators whose work-avoidance
//! (memoization) must not depend on the thread count: each key is computed
//! exactly once, concurrent requesters block until the value is ready, and
//! the hit/miss accounting matches a sequential memo table.

#![forbid(unsafe_code)]

use approxql_metrics::MetricsSnapshot;
use std::cell::Cell;
use std::collections::{HashMap, VecDeque};
use std::hash::Hash;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Duration;

/// Number of hardware threads (1 if it cannot be determined).
pub fn available_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The `APPROXQL_THREADS` override, parsed once per process. `Some(n)` for
/// a positive integer value, `None` when unset or unparsable.
pub fn threads_from_env() -> Option<usize> {
    static CACHE: OnceLock<Option<usize>> = OnceLock::new();
    *CACHE.get_or_init(|| {
        std::env::var("APPROXQL_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
    })
}

/// The thread count user-facing binaries default to: `APPROXQL_THREADS`
/// if set, otherwise the available parallelism.
pub fn default_threads() -> usize {
    threads_from_env()
        .unwrap_or_else(available_parallelism)
        .max(1)
}

type Job<'env> = Box<dyn FnOnce() + Send + 'env>;

/// Condvar shared between the pool and its batches (batches are `Arc`ed
/// into jobs, which may not borrow the pool's stack frame).
struct Notifier {
    lock: Mutex<()>,
    cv: Condvar,
}

impl Notifier {
    fn new() -> Arc<Notifier> {
        Arc::new(Notifier {
            lock: Mutex::new(()),
            cv: Condvar::new(),
        })
    }

    /// Wakes every waiter. Taking the lock first orders this signal after
    /// any state change the caller just made, closing the missed-wakeup
    /// window for waiters that re-check state under the lock.
    fn signal(&self) {
        let _guard = self.lock.lock().unwrap();
        self.cv.notify_all();
    }
}

thread_local! {
    /// `(pool identity, worker index)` of the pool this thread serves.
    static SLOT: Cell<(usize, usize)> = const { Cell::new((0, usize::MAX)) };
}

struct Shared<'env> {
    deques: Vec<Mutex<VecDeque<Job<'env>>>>,
    notifier: Arc<Notifier>,
    shutdown: AtomicBool,
}

impl<'env> Shared<'env> {
    fn new(threads: usize) -> Shared<'env> {
        Shared {
            deques: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            notifier: Notifier::new(),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Stable identity for the thread-local slot registration.
    fn addr(&self) -> usize {
        std::ptr::from_ref(self) as *const () as usize
    }

    /// The current thread's worker index in *this* pool, if registered.
    fn own_index(&self) -> Option<usize> {
        let (pool, idx) = SLOT.with(|s| s.get());
        (pool == self.addr() && idx < self.deques.len()).then_some(idx)
    }

    /// Pushes a job to the current thread's own deque (slot 0 when the
    /// pushing thread is not a worker of this pool).
    fn push(&self, job: Job<'env>) {
        let idx = self.own_index().unwrap_or(0);
        self.deques[idx].lock().unwrap().push_back(job);
    }

    /// Pops from the own deque (LIFO), then steals from the others (FIFO).
    fn find_job(&self, own: Option<usize>) -> Option<Job<'env>> {
        if let Some(i) = own {
            if let Some(job) = self.deques[i].lock().unwrap().pop_back() {
                return Some(job);
            }
        }
        let n = self.deques.len();
        let start = own.map_or(0, |i| i + 1);
        for off in 0..n {
            let victim = (start + off) % n;
            if Some(victim) == own {
                continue;
            }
            if let Some(job) = self.deques[victim].lock().unwrap().pop_front() {
                return Some(job);
            }
        }
        None
    }

    fn has_jobs(&self) -> bool {
        self.deques.iter().any(|d| !d.lock().unwrap().is_empty())
    }

    fn worker_loop(&self, idx: usize) {
        let prev = SLOT.with(|s| s.replace((self.addr(), idx)));
        loop {
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            if let Some(job) = self.find_job(Some(idx)) {
                job();
                continue;
            }
            let guard = self.notifier.lock.lock().unwrap();
            if self.shutdown.load(Ordering::Acquire) || self.has_jobs() {
                continue;
            }
            // The timeout is a safety net only: pushes and completions
            // signal the condvar under the same lock.
            let _ = self
                .notifier
                .cv
                .wait_timeout(guard, Duration::from_millis(1))
                .unwrap();
        }
        SLOT.with(|s| s.set(prev));
    }
}

/// Sets the shutdown flag when dropped, so workers exit even if the
/// scope's main closure unwinds.
struct ShutdownGuard<'a, 'env>(&'a Shared<'env>);

impl Drop for ShutdownGuard<'_, '_> {
    fn drop(&mut self) {
        self.0.shutdown.store(true, Ordering::Release);
        self.0.notifier.signal();
    }
}

/// One submitted batch: items in, `(result, metrics delta)` out.
struct Batch<T, R, F> {
    f: F,
    items: Vec<Mutex<Option<T>>>,
    results: Vec<Mutex<Option<(R, MetricsSnapshot)>>>,
    remaining: AtomicUsize,
    notifier: Arc<Notifier>,
}

impl<T, R, F: Fn(T) -> R> Batch<T, R, F> {
    fn run(&self, i: usize) {
        // Completion is signalled by the guard even if `f` panics, so the
        // submitting thread never waits forever (it observes the missing
        // result and propagates the failure).
        let _done = Completion { batch: self };
        let item = self.items[i].lock().unwrap().take().expect("job ran twice");
        let before = approxql_metrics::snapshot();
        let result = (self.f)(item);
        let delta = approxql_metrics::snapshot().diff(&before);
        approxql_metrics::retract(&delta);
        *self.results[i].lock().unwrap() = Some((result, delta));
    }
}

struct Completion<'a, T, R, F> {
    batch: &'a Batch<T, R, F>,
}

impl<T, R, F> Drop for Completion<'_, T, R, F> {
    fn drop(&mut self) {
        self.batch.remaining.fetch_sub(1, Ordering::Release);
        self.batch.notifier.signal();
    }
}

/// A handle into a running pool; created by [`Executor::scope`].
///
/// `'env` is the lifetime of the environment jobs may borrow. The handle
/// is `Clone`, so recursive code can move a copy into a job closure and
/// submit *nested* maps from inside running jobs.
#[derive(Clone)]
pub struct Scope<'env> {
    shared: Option<Arc<Shared<'env>>>,
}

impl<'env> Scope<'env> {
    /// Worker count (including the submitting thread); 1 means inline.
    pub fn threads(&self) -> usize {
        self.shared.as_ref().map_or(1, |s| s.deques.len())
    }

    /// Applies `f` to every item, in parallel, returning results in item
    /// order. Every job's metrics delta is absorbed into the calling
    /// thread, so counter totals equal a sequential run's exactly. On a
    /// 1-thread scope this *is* the sequential loop.
    pub fn map<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send + 'env,
        R: Send + 'env,
        F: Fn(T) -> R + Send + Sync + 'env,
    {
        match self.shared.as_deref() {
            Some(shared) if items.len() > 1 => self
                .run_batch(shared, items, f)
                .into_iter()
                .map(|(r, delta)| {
                    approxql_metrics::absorb(&delta);
                    r
                })
                .collect(),
            _ => items.into_iter().map(f).collect(),
        }
    }

    /// Like [`Scope::map`], but metrics deltas are *not* absorbed: each
    /// result is returned with the delta its job recorded, and the caller
    /// decides which to absorb and which to discard. This is what makes
    /// speculative parallel execution counter-exact: absorb a delta only
    /// when the sequential algorithm would have done that work.
    pub fn map_deferred<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<(R, MetricsSnapshot)>
    where
        T: Send + 'env,
        R: Send + 'env,
        F: Fn(T) -> R + Send + Sync + 'env,
    {
        match self.shared.as_deref() {
            Some(shared) if items.len() > 1 => self.run_batch(shared, items, f),
            _ => items
                .into_iter()
                .map(|item| {
                    let before = approxql_metrics::snapshot();
                    let result = f(item);
                    let delta = approxql_metrics::snapshot().diff(&before);
                    approxql_metrics::retract(&delta);
                    (result, delta)
                })
                .collect(),
        }
    }

    fn run_batch<T, R, F>(
        &self,
        shared: &'_ Shared<'env>,
        items: Vec<T>,
        f: F,
    ) -> Vec<(R, MetricsSnapshot)>
    where
        T: Send + 'env,
        R: Send + 'env,
        F: Fn(T) -> R + Send + Sync + 'env,
    {
        let n = items.len();
        let batch = Arc::new(Batch {
            f,
            items: items.into_iter().map(|t| Mutex::new(Some(t))).collect(),
            results: (0..n).map(|_| Mutex::new(None)).collect(),
            remaining: AtomicUsize::new(n),
            notifier: Arc::clone(&shared.notifier),
        });
        for i in 0..n {
            let b = Arc::clone(&batch);
            shared.push(Box::new(move || b.run(i)));
        }
        shared.notifier.signal();

        // Help while waiting: execute queued jobs (this batch's or any
        // nested batch's) so a submitting worker never starves the pool.
        let own = shared.own_index();
        loop {
            if batch.remaining.load(Ordering::Acquire) == 0 {
                break;
            }
            if let Some(job) = shared.find_job(own) {
                job();
                continue;
            }
            let guard = shared.notifier.lock.lock().unwrap();
            if batch.remaining.load(Ordering::Acquire) == 0 || shared.has_jobs() {
                continue;
            }
            let _ = shared
                .notifier
                .cv
                .wait_timeout(guard, Duration::from_millis(1))
                .unwrap();
        }

        batch
            .results
            .iter()
            .map(|slot| {
                slot.lock()
                    .unwrap()
                    .take()
                    .expect("a parallel job panicked")
            })
            .collect()
    }
}

/// A worker-pool factory: holds the thread count, spawns per scope.
#[derive(Debug, Clone, Copy)]
pub struct Executor {
    threads: usize,
}

impl Executor {
    /// An executor with `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Executor {
        Executor {
            threads: threads.max(1),
        }
    }

    /// The worker count this executor runs scopes with.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f` with a live pool of `threads - 1` spawned workers plus the
    /// calling thread. Jobs submitted through the [`Scope`] may borrow
    /// anything that outlives the call (`'env`). With 1 thread, nothing is
    /// spawned and every map runs inline on the caller.
    pub fn scope<'env, R>(&self, f: impl FnOnce(&Scope<'env>) -> R) -> R {
        if self.threads == 1 {
            return f(&Scope { shared: None });
        }
        let shared: Arc<Shared<'env>> = Arc::new(Shared::new(self.threads));
        std::thread::scope(|ts| {
            let _shutdown = ShutdownGuard(&shared);
            for i in 1..self.threads {
                let sh = Arc::clone(&shared);
                ts.spawn(move || sh.worker_loop(i));
            }
            let prev = SLOT.with(|s| s.replace((shared.addr(), 0)));
            let result = f(&Scope {
                shared: Some(Arc::clone(&shared)),
            });
            SLOT.with(|s| s.set(prev));
            result
        })
    }
}

enum OnceSlot<V> {
    InFlight,
    Ready(V),
}

/// A compute-once concurrent memo table.
///
/// [`OnceMap::get_or_compute`] runs the closure exactly once per key,
/// process-wide per map; concurrent requesters of an in-flight key block
/// until the value is ready and then share it. The boolean in the return
/// value distinguishes the one computing call (`false`) from every hit
/// (`true`) — under any thread count the hit total equals a sequential
/// memo table's, which keeps memoization counters thread-count-invariant.
pub struct OnceMap<K, V> {
    state: Mutex<HashMap<K, OnceSlot<V>>>,
    cv: Condvar,
}

impl<K, V> Default for OnceMap<K, V> {
    fn default() -> Self {
        OnceMap {
            state: Mutex::new(HashMap::new()),
            cv: Condvar::new(),
        }
    }
}

/// Removes an in-flight marker if the computing closure unwinds, so
/// waiters retry instead of blocking forever.
struct InFlightGuard<'a, K: Eq + Hash + Clone, V> {
    map: &'a OnceMap<K, V>,
    key: Option<K>,
}

impl<K: Eq + Hash + Clone, V> Drop for InFlightGuard<'_, K, V> {
    fn drop(&mut self) {
        if let Some(key) = self.key.take() {
            self.map.state.lock().unwrap().remove(&key);
            self.map.cv.notify_all();
        }
    }
}

impl<K: Eq + Hash + Clone, V: Clone> OnceMap<K, V> {
    /// An empty map.
    pub fn new() -> OnceMap<K, V> {
        OnceMap::default()
    }

    /// Returns the value for `key`, computing it (outside the lock) if
    /// this is the first request. The boolean is `true` for a hit (the
    /// value already existed or was computed by a concurrent caller this
    /// call waited for) and `false` for the one call that computed it.
    pub fn get_or_compute(&self, key: K, compute: impl FnOnce() -> V) -> (V, bool) {
        {
            let mut state = self.state.lock().unwrap();
            loop {
                match state.get(&key) {
                    Some(OnceSlot::Ready(v)) => return (v.clone(), true),
                    Some(OnceSlot::InFlight) => state = self.cv.wait(state).unwrap(),
                    None => {
                        state.insert(key.clone(), OnceSlot::InFlight);
                        break;
                    }
                }
            }
        }
        let mut guard = InFlightGuard {
            map: self,
            key: Some(key.clone()),
        };
        let value = compute();
        guard.key = None;
        let mut state = self.state.lock().unwrap();
        state.insert(key, OnceSlot::Ready(value.clone()));
        self.cv.notify_all();
        (value, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxql_metrics::Metric;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn map_preserves_item_order() {
        let exec = Executor::new(4);
        let out = exec.scope(|s| s.map((0..100).collect(), |i: i32| i * i));
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn single_thread_runs_inline() {
        let exec = Executor::new(1);
        let caller = std::thread::current().id();
        let out = exec.scope(|s| {
            assert_eq!(s.threads(), 1);
            s.map(vec![1, 2, 3], move |i| {
                assert_eq!(std::thread::current().id(), caller);
                i + 1
            })
        });
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn parallel_map_uses_other_threads() {
        let exec = Executor::new(4);
        let caller = format!("{:?}", std::thread::current().id());
        let ids = exec.scope(|s| {
            s.map((0..64).collect(), |_: i32| {
                std::thread::sleep(Duration::from_micros(200));
                format!("{:?}", std::thread::current().id())
            })
        });
        let distinct: std::collections::HashSet<&String> = ids.iter().collect();
        // With 64 sleeping jobs and 3 extra workers, someone else helps.
        assert!(
            distinct.len() > 1 || ids.iter().all(|id| *id != caller),
            "expected work on more than one thread: {distinct:?}"
        );
    }

    #[test]
    fn jobs_may_borrow_the_environment() {
        let data: Vec<u64> = (0..1000).collect();
        let exec = Executor::new(3);
        let chunks: Vec<&[u64]> = data.chunks(100).collect();
        let sums = exec.scope(|s| s.map(chunks, |c: &[u64]| c.iter().sum::<u64>()));
        assert_eq!(sums.iter().sum::<u64>(), data.iter().sum::<u64>());
    }

    #[test]
    fn nested_maps_on_the_same_pool() {
        let exec = Executor::new(3);
        let out = exec.scope(|s| {
            let sc = s.clone();
            s.map((0u64..8).collect(), move |i| {
                // A nested batch from inside a job: the worker pushes to
                // its own deque and helps drain the pool while waiting.
                let parts = sc.map((0u64..4).collect(), move |j| i * 10 + j);
                parts.iter().sum::<u64>()
            })
        });
        assert_eq!(out.len(), 8);
        assert_eq!(out[1], 10 + 11 + 12 + 13);
    }

    #[test]
    fn metrics_totals_match_sequential() {
        let work = |i: u64| {
            Metric::ListJoinOps.add(i + 1);
            i
        };
        let before = approxql_metrics::snapshot();
        let seq: Vec<u64> = Executor::new(1).scope(|s| s.map((0..32).collect(), work));
        let seq_delta = approxql_metrics::snapshot().diff(&before);
        let before = approxql_metrics::snapshot();
        let par: Vec<u64> = Executor::new(4).scope(|s| s.map((0..32).collect(), work));
        let par_delta = approxql_metrics::snapshot().diff(&before);
        assert_eq!(seq, par);
        assert_eq!(
            seq_delta.get(Metric::ListJoinOps),
            par_delta.get(Metric::ListJoinOps)
        );
        assert_eq!(seq_delta.get(Metric::ListJoinOps), (1..=32).sum::<u64>());
    }

    #[test]
    fn map_deferred_leaves_absorption_to_the_caller() {
        let before = approxql_metrics::snapshot();
        let out = Executor::new(4).scope(|s| {
            s.map_deferred((0..8u64).collect(), |i| {
                Metric::TopkOps.add(10);
                i
            })
        });
        // Nothing absorbed yet: the caller's registry is untouched.
        assert_eq!(
            approxql_metrics::snapshot()
                .diff(&before)
                .get(Metric::TopkOps),
            0
        );
        for (_, delta) in out.iter().take(3) {
            assert_eq!(delta.get(Metric::TopkOps), 10);
            approxql_metrics::absorb(delta);
        }
        assert_eq!(
            approxql_metrics::snapshot()
                .diff(&before)
                .get(Metric::TopkOps),
            30
        );
    }

    #[test]
    fn once_map_computes_each_key_once() {
        let map: OnceMap<u64, u64> = OnceMap::new();
        let computes = AtomicU64::new(0);
        let hits = AtomicU64::new(0);
        Executor::new(4).scope(|s| {
            s.map((0..64u64).collect(), |i| {
                let key = i % 8;
                let (v, hit) = map.get_or_compute(key, || {
                    computes.fetch_add(1, Ordering::Relaxed);
                    key * 2
                });
                assert_eq!(v, key * 2);
                if hit {
                    hits.fetch_add(1, Ordering::Relaxed);
                }
            })
        });
        assert_eq!(computes.load(Ordering::Relaxed), 8);
        // Every non-computing lookup is a hit, as in a sequential memo.
        assert_eq!(hits.load(Ordering::Relaxed), 64 - 8);
    }

    #[test]
    fn once_map_recovers_from_a_panicking_compute() {
        let map: OnceMap<u32, u32> = OnceMap::new();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            map.get_or_compute(1, || panic!("boom"));
        }));
        assert!(result.is_err());
        // The in-flight marker was cleared: the next caller computes.
        let (v, hit) = map.get_or_compute(1, || 7);
        assert_eq!((v, hit), (7, false));
    }

    #[test]
    fn env_and_default_threads_are_sane() {
        assert!(available_parallelism() >= 1);
        assert!(default_threads() >= 1);
    }

    #[test]
    fn scope_propagates_job_panics() {
        let result = std::panic::catch_unwind(|| {
            Executor::new(2).scope(|s| {
                s.map((0..4).collect(), |i: i32| {
                    if i == 2 {
                        panic!("job failure");
                    }
                    i
                })
            })
        });
        assert!(result.is_err());
    }
}
