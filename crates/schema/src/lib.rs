#![forbid(unsafe_code)]
//! The schema (DataGuide-style structural summary) of a data tree
//! (Section 7.1 of the paper).
//!
//! The schema is a tree that contains every **label-type path** of the data
//! tree exactly once (Definitions 13/14). Every data node has exactly one
//! **node class** — the schema node reachable by the same label-type path
//! (Definition 15) — and node classes preserve labels, types, and
//! parent-child relationships.
//!
//! We build *compacted* schemata: all text children of a schema node merge
//! into a single text-class node (labeled with a reserved sentinel), and
//! the words are kept in the indexes only — exactly as the paper describes
//! ("sequences of text nodes are merged into a single node and the labels
//! are not stored in the tree but only in the indexes").
//!
//! The schema is itself represented as a [`DataTree`], so it carries the
//! same `pre`/`bound`/`pathcost`/`inscost` encoding as the data tree and
//! the *same evaluation algorithm* can run against it (the key observation
//! of Section 7.1: embeddings are transitive, and every included data tree
//! has exactly one tree class). Because transformation costs are bound to
//! labels, the insert-cost distance between two schema nodes equals the
//! distance between any corresponding pair of instances — schema-estimated
//! embedding costs are *exact*.
//!
//! Alongside the schema tree, [`Schema::build`] constructs
//!
//! * a [`LabelIndex`] over the schema (the `I_struct`/`I_text` the adapted
//!   algorithm `primary` fetches from), keyed by the **data tree's** label
//!   ids, with words resolving to their merged text-class nodes, and
//! * the path-dependent [`SecondaryIndex`] `I_sec` (Section 7.3) mapping
//!   `(schema node, label)` to the preorder-sorted instances.

use approxql_cost::{CostModel, NodeType};
use approxql_index::{InstancePosting, LabelIndex, Posting, SecondaryIndex};
use approxql_tree::{DataTree, DataTreeBuilder, LabelId, NodeId};
use std::collections::HashMap;

/// Reserved label of merged text-class nodes in the schema tree.
pub const TEXT_CLASS_LABEL: &str = "\u{0}text";

/// Aggregate statistics of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaStats {
    /// Nodes in the schema tree (including the root and text classes).
    pub schema_nodes: usize,
    /// Nodes in the underlying data tree.
    pub data_nodes: usize,
    /// Number of distinct `(schema node, label)` postings in `I_sec`.
    pub secondary_postings: usize,
    /// Largest number of instances of any node class (the paper's `s_d`).
    pub max_instances: usize,
}

/// The compacted schema of a data tree, with its indexes.
pub struct Schema {
    tree: DataTree,
    labels: LabelIndex,
    secondary: SecondaryIndex,
    /// `class_of[data_pre] = schema_pre`.
    class_of: Vec<u32>,
}

impl Schema {
    /// Builds the schema of `data`. `costs` supplies the insert costs for
    /// the schema tree's encoding (use the same model as for the data tree
    /// so that schema distances equal instance distances).
    pub fn build(data: &DataTree, costs: &CostModel) -> Schema {
        // ---- pass 1: discover the shape ---------------------------------
        // shape node 0 is the virtual root; text classes get label None.
        struct ShapeNode {
            label: Option<LabelId>,
            ty: NodeType,
            children: Vec<usize>,
            child_lookup: HashMap<(NodeType, Option<LabelId>), usize>,
        }
        let mut shape: Vec<ShapeNode> = vec![ShapeNode {
            label: None,
            ty: NodeType::Struct,
            children: Vec::new(),
            child_lookup: HashMap::new(),
        }];
        let n = data.len();
        let mut node_shape: Vec<usize> = vec![0; n];
        for i in 1..n {
            let node = NodeId(i as u32);
            let parent_shape = node_shape[data.parent(node).expect("non-root").index()];
            let ty = data.node_type(node);
            let key = match ty {
                NodeType::Struct => (ty, Some(data.label_id(node))),
                NodeType::Text => (ty, None), // all words merge into one class
            };
            let child = match shape[parent_shape].child_lookup.get(&key) {
                Some(&c) => c,
                None => {
                    let c = shape.len();
                    shape.push(ShapeNode {
                        label: key.1,
                        ty,
                        children: Vec::new(),
                        child_lookup: HashMap::new(),
                    });
                    shape[parent_shape].children.push(c);
                    shape[parent_shape].child_lookup.insert(key, c);
                    c
                }
            };
            node_shape[i] = child;
        }

        // ---- linearize the shape into a schema DataTree -----------------
        let mut builder = DataTreeBuilder::new();
        let mut shape_pre: Vec<u32> = vec![0; shape.len()];
        // Iterative preorder DFS; children in first-occurrence order.
        let mut stack: Vec<(usize, bool)> = shape[0]
            .children
            .iter()
            .rev()
            .map(|&c| (c, false))
            .collect();
        while let Some((s, closing)) = stack.pop() {
            if closing {
                builder.end();
                continue;
            }
            match shape[s].ty {
                NodeType::Struct => {
                    let label = data.resolve_label(shape[s].label.expect("struct has a label"));
                    shape_pre[s] = builder.begin_struct(label).0;
                    stack.push((s, true));
                    for &c in shape[s].children.iter().rev() {
                        stack.push((c, false));
                    }
                }
                NodeType::Text => {
                    debug_assert!(shape[s].children.is_empty());
                    shape_pre[s] = builder.add_word(TEXT_CLASS_LABEL).0;
                }
            }
        }
        let tree = builder.build(costs);

        // ---- pass 2: instances, I_sec, and the schema label index -------
        let mut class_of: Vec<u32> = vec![0; n];
        let mut secondary = SecondaryIndex::new();
        for i in 1..n {
            let node = NodeId(i as u32);
            let class = shape_pre[node_shape[i]];
            class_of[i] = class;
            secondary.push(
                class,
                data.label_id(node),
                InstancePosting {
                    pre: node.0,
                    bound: data.bound(node),
                },
            );
        }
        // Every (schema node, label) key of I_sec yields one posting entry
        // for the schema-level label index: the query's `fetch` against the
        // schema must find, for a word, all text classes under which the
        // word occurs, and for a name, all schema nodes with that name.
        let mut label_postings: HashMap<(NodeType, LabelId), Vec<Posting>> = HashMap::new();
        for ((schema_pre, label), _) in secondary.iter() {
            let schema_node = NodeId(schema_pre);
            label_postings
                .entry((tree.node_type(schema_node), label))
                .or_default()
                .push(Posting::from_node(&tree, schema_node));
        }
        let mut labels = LabelIndex::default();
        for ((ty, label), mut postings) in label_postings {
            postings.sort_by_key(|p| p.pre);
            postings.dedup_by_key(|p| p.pre);
            labels.insert_posting(ty, label, postings);
        }

        Schema {
            tree,
            labels,
            secondary,
            class_of,
        }
    }

    /// The schema tree (encoded like a data tree).
    pub fn tree(&self) -> &DataTree {
        &self.tree
    }

    /// The schema-level label index (`I_struct`/`I_text` over the schema),
    /// keyed by the *data tree's* label ids.
    pub fn labels(&self) -> &LabelIndex {
        &self.labels
    }

    /// The path-dependent secondary index `I_sec`.
    pub fn secondary(&self) -> &SecondaryIndex {
        &self.secondary
    }

    /// The node class of a data node (Definition 15).
    pub fn class_of(&self, data_node: NodeId) -> NodeId {
        NodeId(self.class_of[data_node.index()])
    }

    /// The instances of a schema node that carry `label`, decoded from the
    /// compressed secondary index.
    pub fn instances(&self, schema_node: NodeId, label: LabelId) -> Vec<InstancePosting> {
        self.secondary.fetch(schema_node.0, label)
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> SchemaStats {
        SchemaStats {
            schema_nodes: self.tree.len(),
            data_nodes: self.class_of.len(),
            secondary_postings: self.secondary.len(),
            max_instances: self
                .secondary
                .iter()
                .map(|(_, p)| p.entry_count())
                .max()
                .unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxql_cost::Cost;

    /// Two CDs with the same structure plus one DVD.
    fn data() -> DataTree {
        let mut b = DataTreeBuilder::new();
        for title in ["piano concerto", "cello suite"] {
            b.begin_struct("cd");
            b.begin_struct("title");
            b.add_text(title);
            b.end();
            b.begin_struct("composer");
            b.add_text("someone");
            b.end();
            b.end();
        }
        b.begin_struct("dvd");
        b.begin_struct("title");
        b.add_text("piano");
        b.end();
        b.end();
        b.build(&CostModel::new())
    }

    #[test]
    fn schema_is_much_smaller_than_data() {
        let d = data();
        let s = Schema::build(&d, &CostModel::new());
        // root, cd, title, text, composer, text, dvd, title, text
        assert_eq!(s.tree().len(), 9);
        assert!(s.tree().len() < d.len());
    }

    #[test]
    fn every_label_type_path_occurs_exactly_once() {
        let d = data();
        let s = Schema::build(&d, &CostModel::new());
        let mut paths = std::collections::HashSet::new();
        for n in s.tree().nodes() {
            let path: Vec<_> = s
                .tree()
                .label_type_path(n)
                .iter()
                .map(|&(l, ty)| (s.tree().resolve_label(l).to_owned(), ty))
                .collect();
            assert!(paths.insert(path), "duplicate label-type path in schema");
        }
        for n in d.nodes() {
            let class = s.class_of(n);
            assert_eq!(d.depth(n), s.tree().depth(class));
        }
    }

    #[test]
    fn node_classes_preserve_labels_types_and_parents() {
        let d = data();
        let s = Schema::build(&d, &CostModel::new());
        for n in d.nodes() {
            let c = s.class_of(n);
            assert_eq!(s.tree().node_type(c), d.node_type(n));
            match d.node_type(n) {
                NodeType::Struct => {
                    if n.0 != 0 {
                        assert_eq!(s.tree().label(c), d.label(n));
                    }
                }
                NodeType::Text => {
                    assert_eq!(s.tree().label(c), TEXT_CLASS_LABEL);
                }
            }
            if let Some(p) = d.parent(n) {
                assert_eq!(s.tree().parent(c), Some(s.class_of(p)));
            }
        }
    }

    #[test]
    fn secondary_index_lists_all_instances_in_preorder() {
        let d = data();
        let s = Schema::build(&d, &CostModel::new());
        let cd = d.lookup_label("cd").unwrap();
        let cd_schema = s.labels().fetch(NodeType::Struct, cd);
        assert_eq!(cd_schema.len(), 1);
        let instances = s.instances(NodeId(cd_schema[0].pre), cd);
        assert_eq!(instances.len(), 2);
        assert!(instances[0].pre < instances[1].pre);
        for inst in instances {
            assert_eq!(d.label(NodeId(inst.pre)), "cd");
        }
    }

    #[test]
    fn words_resolve_to_their_text_classes() {
        let d = data();
        let s = Schema::build(&d, &CostModel::new());
        let piano = d.lookup_label("piano").unwrap();
        // "piano" occurs under cd/title and dvd/title: two classes.
        let classes = s.labels().fetch(NodeType::Text, piano);
        assert_eq!(classes.len(), 2);
        for c in classes {
            assert_eq!(s.tree().label(NodeId(c.pre)), TEXT_CLASS_LABEL);
            let instances = s.instances(NodeId(c.pre), piano);
            assert_eq!(instances.len(), 1);
            assert_eq!(d.label(NodeId(instances[0].pre)), "piano");
        }
        // "cello" occurs only under cd/title: one class.
        let cello = d.lookup_label("cello").unwrap();
        assert_eq!(s.labels().fetch(NodeType::Text, cello).len(), 1);
    }

    #[test]
    fn schema_distances_equal_instance_distances() {
        let costs = CostModel::builder()
            .insert(NodeType::Struct, "title", Cost::finite(3))
            .insert(NodeType::Struct, "cd", Cost::finite(2))
            .build();
        let mut b = DataTreeBuilder::new();
        b.begin_struct("cd");
        b.begin_struct("title");
        b.add_text("piano");
        b.end();
        b.end();
        let d = b.build(&costs);
        let s = Schema::build(&d, &costs);
        let cd_data = NodeId(1);
        let piano_data = NodeId(3);
        let dist_data = d.distance(cd_data, piano_data);
        let dist_schema = s
            .tree()
            .distance(s.class_of(cd_data), s.class_of(piano_data));
        assert_eq!(dist_data, dist_schema);
        assert_eq!(dist_data, Cost::finite(3)); // title sits in between
    }

    #[test]
    fn empty_data_tree_yields_root_only_schema() {
        let d = DataTreeBuilder::new().build(&CostModel::new());
        let s = Schema::build(&d, &CostModel::new());
        assert_eq!(s.tree().len(), 1);
        assert!(s.secondary().is_empty());
        assert_eq!(s.stats().max_instances, 0);
    }

    #[test]
    fn stats_report_counts() {
        let d = data();
        let s = Schema::build(&d, &CostModel::new());
        let st = s.stats();
        assert_eq!(st.schema_nodes, 9);
        assert_eq!(st.data_nodes, d.len());
        assert_eq!(st.max_instances, 2); // the two cd instances
    }

    #[test]
    fn recursive_structures_fold_per_path() {
        // part > part > part: each nesting level is its own label-type
        // path, so the schema keeps one node per depth.
        let mut b = DataTreeBuilder::new();
        b.begin_struct("part");
        b.begin_struct("part");
        b.begin_struct("part");
        b.end();
        b.end();
        b.end();
        b.begin_struct("part");
        b.begin_struct("part");
        b.end();
        b.end();
        let d = b.build(&CostModel::new());
        let s = Schema::build(&d, &CostModel::new());
        // root + part@1 + part@2 + part@3
        assert_eq!(s.tree().len(), 4);
        let part = d.lookup_label("part").unwrap();
        // Three schema nodes carry the label `part`.
        assert_eq!(s.labels().fetch(NodeType::Struct, part).len(), 3);
    }
}
