#![forbid(unsafe_code)]
//! The schema (DataGuide-style structural summary) of a data tree
//! (Section 7.1 of the paper).
//!
//! The schema is a tree that contains every **label-type path** of the data
//! tree exactly once (Definitions 13/14). Every data node has exactly one
//! **node class** — the schema node reachable by the same label-type path
//! (Definition 15) — and node classes preserve labels, types, and
//! parent-child relationships.
//!
//! We build *compacted* schemata: all text children of a schema node merge
//! into a single text-class node (labeled with a reserved sentinel), and
//! the words are kept in the indexes only — exactly as the paper describes
//! ("sequences of text nodes are merged into a single node and the labels
//! are not stored in the tree but only in the indexes").
//!
//! The schema is itself represented as a [`DataTree`], so it carries the
//! same `pre`/`bound`/`pathcost`/`inscost` encoding as the data tree and
//! the *same evaluation algorithm* can run against it (the key observation
//! of Section 7.1: embeddings are transitive, and every included data tree
//! has exactly one tree class). Because transformation costs are bound to
//! labels, the insert-cost distance between two schema nodes equals the
//! distance between any corresponding pair of instances — schema-estimated
//! embedding costs are *exact*.
//!
//! Alongside the schema tree, [`Schema::build`] constructs
//!
//! * a [`LabelIndex`] over the schema (the `I_struct`/`I_text` the adapted
//!   algorithm `primary` fetches from), keyed by the **data tree's** label
//!   ids, with words resolving to their merged text-class nodes, and
//! * the path-dependent [`SecondaryIndex`] `I_sec` (Section 7.3) mapping
//!   `(schema node, label)` to the preorder-sorted instances.

use approxql_cost::{CostModel, NodeType};
use approxql_index::{InstancePosting, LabelIndex, Posting, SecondaryIndex};
use approxql_tree::{DataTree, DataTreeBuilder, DocSpan, LabelId, NodeId};
use std::collections::HashMap;
use std::fmt;

/// Reserved label of merged text-class nodes in the schema tree.
pub const TEXT_CLASS_LABEL: &str = "\u{0}text";

/// Errors raised while reassembling a schema from persisted parts.
#[derive(Debug, PartialEq, Eq)]
pub struct SchemaAssembleError(&'static str);

impl fmt::Display for SchemaAssembleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "inconsistent persisted schema: {}", self.0)
    }
}

impl std::error::Error for SchemaAssembleError {}

/// What a mutation changed in the schema's secondary index, so the
/// persistence layer can rewrite only the affected `sec#` keys.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct SchemaDelta {
    /// `(schema_pre, label)` keys whose instance posting changed.
    pub touched_sec: Vec<(u32, LabelId)>,
    /// `(schema_pre, label)` keys that emptied and were dropped.
    pub removed_sec: Vec<(u32, LabelId)>,
    /// `true` when a new label-type path forced a schema-tree rebuild:
    /// every schema preorder number may have moved, so the whole `sec#`
    /// keyspace and the schema tree blob must be rewritten.
    pub rebuilt: bool,
}

/// Aggregate statistics of a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaStats {
    /// Nodes in the schema tree (including the root and text classes).
    pub schema_nodes: usize,
    /// Nodes in the underlying data tree.
    pub data_nodes: usize,
    /// Number of distinct `(schema node, label)` postings in `I_sec`.
    pub secondary_postings: usize,
    /// Largest number of instances of any node class (the paper's `s_d`).
    pub max_instances: usize,
}

/// `(parent schema pre, child type, child data label)` — the key of the
/// shape lookup; the label is `None` for merged text classes.
type ChildKey = (u32, NodeType, Option<LabelId>);

/// The compacted schema of a data tree, with its indexes.
pub struct Schema {
    tree: DataTree,
    labels: LabelIndex,
    secondary: SecondaryIndex,
    /// `class_of[data_pre] = schema_pre`. Entries of tombstoned data nodes
    /// go stale and must not be read (liveness is checked at the tree).
    class_of: Vec<u32>,
    /// [`ChildKey`] → child schema pre. This is the persistent form of the
    /// shape lookup used during the build, kept so inserts can classify new
    /// nodes without an O(data) pass.
    child_lookup: HashMap<ChildKey, u32>,
}

impl Schema {
    /// Builds the schema of `data`. `costs` supplies the insert costs for
    /// the schema tree's encoding (use the same model as for the data tree
    /// so that schema distances equal instance distances).
    pub fn build(data: &DataTree, costs: &CostModel) -> Schema {
        // ---- pass 1: discover the shape ---------------------------------
        // shape node 0 is the virtual root; text classes get label None.
        struct ShapeNode {
            label: Option<LabelId>,
            ty: NodeType,
            children: Vec<usize>,
            child_lookup: HashMap<(NodeType, Option<LabelId>), usize>,
        }
        let mut shape: Vec<ShapeNode> = vec![ShapeNode {
            label: None,
            ty: NodeType::Struct,
            children: Vec::new(),
            child_lookup: HashMap::new(),
        }];
        let n = data.len();
        let mut node_shape: Vec<usize> = vec![0; n];
        for node in data.live_nodes().filter(|n| n.0 != 0) {
            let i = node.index();
            let parent_shape = node_shape[data.parent(node).expect("non-root").index()];
            let ty = data.node_type(node);
            let key = match ty {
                NodeType::Struct => (ty, Some(data.label_id(node))),
                NodeType::Text => (ty, None), // all words merge into one class
            };
            let child = match shape[parent_shape].child_lookup.get(&key) {
                Some(&c) => c,
                None => {
                    let c = shape.len();
                    shape.push(ShapeNode {
                        label: key.1,
                        ty,
                        children: Vec::new(),
                        child_lookup: HashMap::new(),
                    });
                    shape[parent_shape].children.push(c);
                    shape[parent_shape].child_lookup.insert(key, c);
                    c
                }
            };
            node_shape[i] = child;
        }

        // ---- linearize the shape into a schema DataTree -----------------
        let mut builder = DataTreeBuilder::new();
        let mut shape_pre: Vec<u32> = vec![0; shape.len()];
        // Iterative preorder DFS; children in first-occurrence order.
        let mut stack: Vec<(usize, bool)> = shape[0]
            .children
            .iter()
            .rev()
            .map(|&c| (c, false))
            .collect();
        while let Some((s, closing)) = stack.pop() {
            if closing {
                builder.end();
                continue;
            }
            match shape[s].ty {
                NodeType::Struct => {
                    let label = data.resolve_label(shape[s].label.expect("struct has a label"));
                    shape_pre[s] = builder.begin_struct(label).0;
                    stack.push((s, true));
                    for &c in shape[s].children.iter().rev() {
                        stack.push((c, false));
                    }
                }
                NodeType::Text => {
                    debug_assert!(shape[s].children.is_empty());
                    shape_pre[s] = builder.add_word(TEXT_CLASS_LABEL).0;
                }
            }
        }
        let tree = builder.build(costs);

        // ---- pass 2: instances, I_sec, and the schema label index -------
        let mut class_of: Vec<u32> = vec![0; n];
        let mut secondary = SecondaryIndex::new();
        for node in data.live_nodes().filter(|n| n.0 != 0) {
            let i = node.index();
            let class = shape_pre[node_shape[i]];
            class_of[i] = class;
            secondary.push(
                class,
                data.label_id(node),
                InstancePosting {
                    pre: node.0,
                    bound: data.bound(node),
                },
            );
        }
        let labels = derive_label_index(&tree, &secondary);
        let mut child_lookup = HashMap::new();
        for (s, node) in shape.iter().enumerate() {
            for &c in &node.children {
                child_lookup.insert((shape_pre[s], shape[c].ty, shape[c].label), shape_pre[c]);
            }
        }

        Schema {
            tree,
            labels,
            secondary,
            class_of,
            child_lookup,
        }
    }

    /// Reassembles a schema from its persisted parts: the schema tree and
    /// the secondary index (both maintained incrementally and committed
    /// with every mutation). The label index, the node classes of the live
    /// data nodes, and the shape lookup are derived — this reproduces the
    /// incremental state *exactly*, including schema preorder numbers, so
    /// recovered stores answer queries byte-identically.
    pub fn assemble(
        data: &DataTree,
        tree: DataTree,
        secondary: SecondaryIndex,
    ) -> Result<Schema, SchemaAssembleError> {
        let child_lookup = lookup_from_tree(&tree, data)?;
        let mut class_of: Vec<u32> = vec![0; data.len()];
        for node in data.live_nodes().filter(|n| n.0 != 0) {
            let parent_class = class_of[data.parent(node).expect("non-root").index()];
            let key = match data.node_type(node) {
                NodeType::Struct => (parent_class, NodeType::Struct, Some(data.label_id(node))),
                NodeType::Text => (parent_class, NodeType::Text, None),
            };
            let Some(&class) = child_lookup.get(&key) else {
                return Err(SchemaAssembleError(
                    "a live data node has no class in the schema tree",
                ));
            };
            class_of[node.index()] = class;
        }
        for ((schema_pre, _), _) in secondary.iter() {
            if schema_pre as usize >= tree.len() {
                return Err(SchemaAssembleError(
                    "secondary key points past the schema tree",
                ));
            }
        }
        let labels = derive_label_index(&tree, &secondary);
        Ok(Schema {
            tree,
            labels,
            secondary,
            class_of,
            child_lookup,
        })
    }

    /// Incrementally absorbs a freshly appended document range (`span`
    /// must be the last live range of `data`, already present in its node
    /// columns). New label-type paths force a schema-tree rebuild that
    /// preserves the historical first-occurrence order of all existing
    /// paths; otherwise only the touched secondary postings change.
    pub fn insert_range(
        &mut self,
        data: &DataTree,
        span: DocSpan,
        costs: &CostModel,
    ) -> SchemaDelta {
        let mut delta = SchemaDelta::default();
        // Classify with a dry run: any missing path triggers the
        // structural path (rebuild + remap) before instances are added.
        if !self.range_is_classifiable(data, span) {
            self.extend_structure(data, span, costs);
            delta.rebuilt = true;
        }
        if self.class_of.len() < data.len() {
            self.class_of.resize(data.len(), 0);
        }
        let mut touched: Vec<(u32, LabelId)> = Vec::new();
        for pre in span.start..=span.bound {
            let node = NodeId(pre);
            let parent_class = self.class_of[data.parent(node).expect("non-root").index()];
            let key = match data.node_type(node) {
                NodeType::Struct => (parent_class, NodeType::Struct, Some(data.label_id(node))),
                NodeType::Text => (parent_class, NodeType::Text, None),
            };
            let class = *self
                .child_lookup
                .get(&key)
                .expect("extend_structure covers every path of the range");
            self.class_of[node.index()] = class;
            let label = data.label_id(node);
            let sec_key = (class, label);
            if self.secondary.blocks(class, label).is_none() {
                // A key new to I_sec: the schema label index gains this
                // schema node for the label (small list, re-encoded).
                let ty = self.tree.node_type(NodeId(class));
                let mut posting = self
                    .labels
                    .blocks(ty, label)
                    .map(|b| b.decode_all())
                    .unwrap_or_default();
                let entry = Posting::from_node(&self.tree, NodeId(class));
                if let Err(pos) = posting.binary_search_by_key(&class, |p: &Posting| p.pre) {
                    posting.insert(pos, entry);
                    self.labels.insert_posting(ty, label, posting);
                }
            }
            self.secondary.push(
                class,
                label,
                InstancePosting {
                    pre,
                    bound: data.bound(node),
                },
            );
            touched.push(sec_key);
        }
        touched.sort_unstable_by_key(|&(p, l)| (p, l.0));
        touched.dedup();
        delta.touched_sec = touched;
        delta
    }

    /// Incrementally removes a tombstoned document range from the
    /// secondary index and the schema label index. The schema tree keeps
    /// instance-less path nodes (they are harmless: with no instances they
    /// can never produce a hit) so schema preorder numbers stay stable.
    pub fn delete_range(&mut self, data: &DataTree, span: DocSpan) -> SchemaDelta {
        let mut keys: Vec<(u32, LabelId)> = (span.start..=span.bound)
            .map(|pre| (self.class_of[pre as usize], data.label_id(NodeId(pre))))
            .collect();
        keys.sort_unstable_by_key(|&(p, l)| (p, l.0));
        keys.dedup();
        let mut delta = SchemaDelta::default();
        for (class, label) in keys {
            let removed = self
                .secondary
                .remove_range(class, label, span.start, span.bound);
            debug_assert!(removed > 0, "dead range instance missing from I_sec");
            if self.secondary.blocks(class, label).is_none() {
                // The key emptied: drop this schema node from the label's
                // schema-level posting.
                delta.removed_sec.push((class, label));
                let ty = self.tree.node_type(NodeId(class));
                let mut posting = self
                    .labels
                    .blocks(ty, label)
                    .map(|b| b.decode_all())
                    .unwrap_or_default();
                posting.retain(|p| p.pre != class);
                if posting.is_empty() {
                    self.labels.remove_entry(ty, label);
                } else {
                    self.labels.insert_posting(ty, label, posting);
                }
            } else {
                delta.touched_sec.push((class, label));
            }
        }
        delta
    }

    /// `true` when every node of `span` maps onto an existing schema path.
    fn range_is_classifiable(&self, data: &DataTree, span: DocSpan) -> bool {
        // Walk with a scratch class array local to the range (the range is
        // contiguous and parents precede children within it).
        let mut scratch: HashMap<u32, u32> = HashMap::new();
        for pre in span.start..=span.bound {
            let node = NodeId(pre);
            let parent = data.parent(node).expect("non-root").0;
            let parent_class = if parent < span.start {
                0 // the virtual root
            } else {
                scratch[&parent]
            };
            let key = match data.node_type(node) {
                NodeType::Struct => (parent_class, NodeType::Struct, Some(data.label_id(node))),
                NodeType::Text => (parent_class, NodeType::Text, None),
            };
            match self.child_lookup.get(&key) {
                Some(&class) => {
                    scratch.insert(pre, class);
                }
                None => return false,
            }
        }
        true
    }

    /// Grows the schema tree with the new label-type paths of `span`,
    /// preserving the historical first-occurrence order of existing paths
    /// (existing siblings keep their order; new children append after
    /// them), then remaps every schema preorder number.
    fn extend_structure(&mut self, data: &DataTree, span: DocSpan, costs: &CostModel) {
        // ---- shape graph from the current schema tree -------------------
        // Shape index == old schema pre for existing nodes.
        let old_len = self.tree.len();
        #[derive(Clone)]
        struct ShapeNode {
            /// Data-interner label for new struct nodes; existing nodes
            /// resolve their label from the old schema tree.
            label: Option<LabelId>,
            ty: NodeType,
            children: Vec<usize>,
        }
        let mut shape: Vec<ShapeNode> = (0..old_len)
            .map(|s| ShapeNode {
                label: None,
                ty: self.tree.node_type(NodeId(s as u32)),
                children: self
                    .tree
                    .children(NodeId(s as u32))
                    .map(|c| c.index())
                    .collect(),
            })
            .collect();
        // (shape parent, ty, data label) → shape child, seeded from the
        // persistent lookup (old pre == shape index).
        let mut lookup: HashMap<(usize, NodeType, Option<LabelId>), usize> = self
            .child_lookup
            .iter()
            .map(|(&(p, ty, l), &c)| ((p as usize, ty, l), c as usize))
            .collect();
        // ---- absorb the new range's paths -------------------------------
        let mut node_shape: HashMap<u32, usize> = HashMap::new();
        for pre in span.start..=span.bound {
            let node = NodeId(pre);
            let parent = data.parent(node).expect("non-root").0;
            let parent_shape = if parent < span.start {
                0
            } else {
                node_shape[&parent]
            };
            let key = match data.node_type(node) {
                NodeType::Struct => (parent_shape, NodeType::Struct, Some(data.label_id(node))),
                NodeType::Text => (parent_shape, NodeType::Text, None),
            };
            let s = match lookup.get(&key) {
                Some(&s) => s,
                None => {
                    let s = shape.len();
                    shape.push(ShapeNode {
                        label: key.2,
                        ty: key.1,
                        children: Vec::new(),
                    });
                    shape[parent_shape].children.push(s);
                    lookup.insert(key, s);
                    s
                }
            };
            node_shape.insert(pre, s);
        }
        // ---- re-linearize -----------------------------------------------
        let mut builder = DataTreeBuilder::new();
        let mut shape_pre: Vec<u32> = vec![0; shape.len()];
        let mut stack: Vec<(usize, bool)> = shape[0]
            .children
            .iter()
            .rev()
            .map(|&c| (c, false))
            .collect();
        while let Some((s, closing)) = stack.pop() {
            if closing {
                builder.end();
                continue;
            }
            let label: String = if s < old_len {
                self.tree.label(NodeId(s as u32)).to_owned()
            } else {
                match shape[s].ty {
                    NodeType::Struct => data
                        .resolve_label(shape[s].label.expect("new struct shape has a label"))
                        .to_owned(),
                    NodeType::Text => TEXT_CLASS_LABEL.to_owned(),
                }
            };
            match shape[s].ty {
                NodeType::Struct => {
                    shape_pre[s] = builder.begin_struct(&label).0;
                    stack.push((s, true));
                    for &c in shape[s].children.iter().rev() {
                        stack.push((c, false));
                    }
                }
                NodeType::Text => {
                    debug_assert!(shape[s].children.is_empty());
                    shape_pre[s] = builder.add_word(&label).0;
                }
            }
        }
        let new_tree = builder.build(costs);
        // ---- remap every schema preorder number -------------------------
        let remap = |old: u32| shape_pre[old as usize];
        for c in &mut self.class_of {
            *c = remap(*c);
        }
        let entries: Vec<_> = self
            .secondary
            .iter()
            .map(|((p, l), blocks)| ((remap(p), l), blocks.clone()))
            .collect();
        let mut secondary = SecondaryIndex::new();
        for ((p, l), blocks) in entries {
            secondary.insert_blocks(p, l, blocks);
        }
        self.secondary = secondary;
        self.child_lookup = lookup
            .into_iter()
            .map(|((p, ty, l), c)| ((shape_pre[p], ty, l), shape_pre[c]))
            .collect();
        self.tree = new_tree;
        self.labels = derive_label_index(&self.tree, &self.secondary);
    }

    /// The schema tree (encoded like a data tree).
    pub fn tree(&self) -> &DataTree {
        &self.tree
    }

    /// The schema-level label index (`I_struct`/`I_text` over the schema),
    /// keyed by the *data tree's* label ids.
    pub fn labels(&self) -> &LabelIndex {
        &self.labels
    }

    /// The path-dependent secondary index `I_sec`.
    pub fn secondary(&self) -> &SecondaryIndex {
        &self.secondary
    }

    /// The node class of a data node (Definition 15).
    pub fn class_of(&self, data_node: NodeId) -> NodeId {
        NodeId(self.class_of[data_node.index()])
    }

    /// The instances of a schema node that carry `label`, decoded from the
    /// compressed secondary index.
    pub fn instances(&self, schema_node: NodeId, label: LabelId) -> Vec<InstancePosting> {
        self.secondary.fetch(schema_node.0, label)
    }

    /// Aggregate statistics.
    pub fn stats(&self) -> SchemaStats {
        SchemaStats {
            schema_nodes: self.tree.len(),
            data_nodes: self.class_of.len(),
            secondary_postings: self.secondary.len(),
            max_instances: self
                .secondary
                .iter()
                .map(|(_, p)| p.entry_count())
                .max()
                .unwrap_or(0),
        }
    }
}

/// The schema-level label index, derived from the secondary index: every
/// `(schema node, label)` key of `I_sec` yields one posting entry — the
/// query's `fetch` against the schema must find, for a word, all text
/// classes under which the word occurs, and for a name, all schema nodes
/// with that name.
fn derive_label_index(tree: &DataTree, secondary: &SecondaryIndex) -> LabelIndex {
    let mut label_postings: HashMap<(NodeType, LabelId), Vec<Posting>> = HashMap::new();
    for ((schema_pre, label), _) in secondary.iter() {
        let schema_node = NodeId(schema_pre);
        label_postings
            .entry((tree.node_type(schema_node), label))
            .or_default()
            .push(Posting::from_node(tree, schema_node));
    }
    let mut labels = LabelIndex::default();
    for ((ty, label), mut postings) in label_postings {
        postings.sort_by_key(|p| p.pre);
        postings.dedup_by_key(|p| p.pre);
        labels.insert_posting(ty, label, postings);
    }
    labels
}

/// Rebuilds the shape lookup from a schema tree, translating schema labels
/// back into the data tree's label ids.
fn lookup_from_tree(
    tree: &DataTree,
    data: &DataTree,
) -> Result<HashMap<ChildKey, u32>, SchemaAssembleError> {
    let mut lookup = HashMap::new();
    for s in tree.nodes() {
        for c in tree.children(s) {
            let key = match tree.node_type(c) {
                NodeType::Text => (s.0, NodeType::Text, None),
                NodeType::Struct => {
                    let Some(label) = data.lookup_label(tree.label(c)) else {
                        return Err(SchemaAssembleError(
                            "schema label missing from the data interner",
                        ));
                    };
                    (s.0, NodeType::Struct, Some(label))
                }
            };
            if lookup.insert(key, c.0).is_some() {
                return Err(SchemaAssembleError("duplicate label-type path"));
            }
        }
    }
    Ok(lookup)
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxql_cost::Cost;

    /// Two CDs with the same structure plus one DVD.
    fn data() -> DataTree {
        let mut b = DataTreeBuilder::new();
        for title in ["piano concerto", "cello suite"] {
            b.begin_struct("cd");
            b.begin_struct("title");
            b.add_text(title);
            b.end();
            b.begin_struct("composer");
            b.add_text("someone");
            b.end();
            b.end();
        }
        b.begin_struct("dvd");
        b.begin_struct("title");
        b.add_text("piano");
        b.end();
        b.end();
        b.build(&CostModel::new())
    }

    #[test]
    fn schema_is_much_smaller_than_data() {
        let d = data();
        let s = Schema::build(&d, &CostModel::new());
        // root, cd, title, text, composer, text, dvd, title, text
        assert_eq!(s.tree().len(), 9);
        assert!(s.tree().len() < d.len());
    }

    #[test]
    fn every_label_type_path_occurs_exactly_once() {
        let d = data();
        let s = Schema::build(&d, &CostModel::new());
        let mut paths = std::collections::HashSet::new();
        for n in s.tree().nodes() {
            let path: Vec<_> = s
                .tree()
                .label_type_path(n)
                .iter()
                .map(|&(l, ty)| (s.tree().resolve_label(l).to_owned(), ty))
                .collect();
            assert!(paths.insert(path), "duplicate label-type path in schema");
        }
        for n in d.nodes() {
            let class = s.class_of(n);
            assert_eq!(d.depth(n), s.tree().depth(class));
        }
    }

    #[test]
    fn node_classes_preserve_labels_types_and_parents() {
        let d = data();
        let s = Schema::build(&d, &CostModel::new());
        for n in d.nodes() {
            let c = s.class_of(n);
            assert_eq!(s.tree().node_type(c), d.node_type(n));
            match d.node_type(n) {
                NodeType::Struct => {
                    if n.0 != 0 {
                        assert_eq!(s.tree().label(c), d.label(n));
                    }
                }
                NodeType::Text => {
                    assert_eq!(s.tree().label(c), TEXT_CLASS_LABEL);
                }
            }
            if let Some(p) = d.parent(n) {
                assert_eq!(s.tree().parent(c), Some(s.class_of(p)));
            }
        }
    }

    #[test]
    fn secondary_index_lists_all_instances_in_preorder() {
        let d = data();
        let s = Schema::build(&d, &CostModel::new());
        let cd = d.lookup_label("cd").unwrap();
        let cd_schema = s.labels().fetch(NodeType::Struct, cd);
        assert_eq!(cd_schema.len(), 1);
        let instances = s.instances(NodeId(cd_schema[0].pre), cd);
        assert_eq!(instances.len(), 2);
        assert!(instances[0].pre < instances[1].pre);
        for inst in instances {
            assert_eq!(d.label(NodeId(inst.pre)), "cd");
        }
    }

    #[test]
    fn words_resolve_to_their_text_classes() {
        let d = data();
        let s = Schema::build(&d, &CostModel::new());
        let piano = d.lookup_label("piano").unwrap();
        // "piano" occurs under cd/title and dvd/title: two classes.
        let classes = s.labels().fetch(NodeType::Text, piano);
        assert_eq!(classes.len(), 2);
        for c in classes {
            assert_eq!(s.tree().label(NodeId(c.pre)), TEXT_CLASS_LABEL);
            let instances = s.instances(NodeId(c.pre), piano);
            assert_eq!(instances.len(), 1);
            assert_eq!(d.label(NodeId(instances[0].pre)), "piano");
        }
        // "cello" occurs only under cd/title: one class.
        let cello = d.lookup_label("cello").unwrap();
        assert_eq!(s.labels().fetch(NodeType::Text, cello).len(), 1);
    }

    #[test]
    fn schema_distances_equal_instance_distances() {
        let costs = CostModel::builder()
            .insert(NodeType::Struct, "title", Cost::finite(3))
            .insert(NodeType::Struct, "cd", Cost::finite(2))
            .build();
        let mut b = DataTreeBuilder::new();
        b.begin_struct("cd");
        b.begin_struct("title");
        b.add_text("piano");
        b.end();
        b.end();
        let d = b.build(&costs);
        let s = Schema::build(&d, &costs);
        let cd_data = NodeId(1);
        let piano_data = NodeId(3);
        let dist_data = d.distance(cd_data, piano_data);
        let dist_schema = s
            .tree()
            .distance(s.class_of(cd_data), s.class_of(piano_data));
        assert_eq!(dist_data, dist_schema);
        assert_eq!(dist_data, Cost::finite(3)); // title sits in between
    }

    #[test]
    fn empty_data_tree_yields_root_only_schema() {
        let d = DataTreeBuilder::new().build(&CostModel::new());
        let s = Schema::build(&d, &CostModel::new());
        assert_eq!(s.tree().len(), 1);
        assert!(s.secondary().is_empty());
        assert_eq!(s.stats().max_instances, 0);
    }

    #[test]
    fn stats_report_counts() {
        let d = data();
        let s = Schema::build(&d, &CostModel::new());
        let st = s.stats();
        assert_eq!(st.schema_nodes, 9);
        assert_eq!(st.data_nodes, d.len());
        assert_eq!(st.max_instances, 2); // the two cd instances
    }

    /// Decoded `I_sec` contents: `(schema pre, label)` → instance spans.
    type SecSnapshot = Vec<((u32, u32), Vec<(u32, u32)>)>;
    /// Decoded label-index contents: `(node type, label)` → pres.
    type LabSnapshot = Vec<((u8, u32), Vec<u32>)>;

    /// Orders the decoded contents of two schemas' indexes for comparison.
    fn snapshot(s: &Schema) -> (Vec<u8>, SecSnapshot, LabSnapshot) {
        let tree_bytes = s.tree().to_bytes();
        let mut sec: Vec<_> = s
            .secondary()
            .iter()
            .map(|((p, l), b)| {
                (
                    (p, l.0),
                    b.decode_all().iter().map(|i| (i.pre, i.bound)).collect(),
                )
            })
            .collect();
        sec.sort();
        let mut lab: Vec<_> = s
            .labels()
            .iter()
            .map(|((ty, l), b)| {
                (
                    (ty as u8, l.0),
                    b.decode_all().iter().map(|p| p.pre).collect(),
                )
            })
            .collect();
        lab.sort();
        (tree_bytes, sec, lab)
    }

    #[test]
    fn insert_range_matches_batch_build() {
        use approxql_xml::parse_document;
        let costs = CostModel::new();
        let docs = [
            r#"<cd><title>piano concerto</title></cd>"#,
            r#"<cd><title>cello suite</title><composer>someone</composer></cd>"#, // new path
            r#"<dvd><title>piano</title></dvd>"#,                                 // new path
            r#"<cd><title>violin</title></cd>"#,                                  // no new path
        ];
        // Incremental: one doc at a time.
        let mut tree = {
            let mut b = DataTreeBuilder::new();
            b.add_document(&parse_document(docs[0]).unwrap());
            b.build(&costs)
        };
        let mut schema = Schema::build(&tree, &costs);
        for d in &docs[1..] {
            let span = tree.append_document(&parse_document(d).unwrap(), &costs);
            schema.insert_range(&tree, span, &costs);
        }
        // Batch: all docs at once (same first-occurrence order).
        let batch_tree = {
            let mut b = DataTreeBuilder::new();
            for d in &docs {
                b.add_document(&parse_document(d).unwrap());
            }
            b.build(&costs)
        };
        let batch = Schema::build(&batch_tree, &costs);
        assert_eq!(snapshot(&schema), snapshot(&batch));
        assert_eq!(schema.class_of, batch.class_of);
        assert_eq!(schema.child_lookup, batch.child_lookup);
    }

    #[test]
    fn insert_range_reports_rebuilds() {
        use approxql_xml::parse_document;
        let costs = CostModel::new();
        let mut tree = {
            let mut b = DataTreeBuilder::new();
            b.add_document(&parse_document("<cd><title>piano</title></cd>").unwrap());
            b.build(&costs)
        };
        let mut schema = Schema::build(&tree, &costs);
        let span = tree.append_document(
            &parse_document("<cd><title>cello</title></cd>").unwrap(),
            &costs,
        );
        let delta = schema.insert_range(&tree, span, &costs);
        assert!(!delta.rebuilt, "no new path must not rebuild");
        assert!(!delta.touched_sec.is_empty());
        let span = tree.append_document(
            &parse_document("<lp><title>organ</title></lp>").unwrap(),
            &costs,
        );
        let delta = schema.insert_range(&tree, span, &costs);
        assert!(delta.rebuilt, "new top-level path must rebuild");
    }

    #[test]
    fn delete_range_empties_keys_and_assemble_roundtrips() {
        use approxql_xml::parse_document;
        let costs = CostModel::new();
        let mut tree = {
            let mut b = DataTreeBuilder::new();
            b.add_document(&parse_document("<cd><title>piano</title></cd>").unwrap());
            b.add_document(&parse_document("<cd><title>piano cello</title></cd>").unwrap());
            b.build(&costs)
        };
        let mut schema = Schema::build(&tree, &costs);
        let first = tree.documents()[0];
        tree.delete_document(NodeId(first.start)).unwrap();
        let delta = schema.delete_range(&tree, first);
        assert!(!delta.rebuilt);
        // "piano" survives in doc 2, so its key is touched, not removed.
        let piano = tree.lookup_label("piano").unwrap();
        assert!(delta.touched_sec.iter().any(|&(_, l)| l == piano));
        // Deleting the second doc empties everything.
        let second = tree.documents()[1];
        tree.delete_document(NodeId(second.start)).unwrap();
        let delta = schema.delete_range(&tree, second);
        assert!(delta.touched_sec.is_empty());
        assert!(!delta.removed_sec.is_empty());
        assert!(schema.secondary().is_empty());
        assert!(schema.labels().is_empty());

        // Reassembly from the persisted parts reproduces the state exactly.
        let assembled =
            Schema::assemble(&tree, schema.tree().clone(), schema.secondary().clone()).unwrap();
        assert_eq!(snapshot(&assembled), snapshot(&schema));
        assert_eq!(assembled.child_lookup, schema.child_lookup);
    }

    #[test]
    fn deleted_paths_keep_schema_nodes_but_produce_no_hits() {
        use approxql_xml::parse_document;
        let costs = CostModel::new();
        let mut tree = {
            let mut b = DataTreeBuilder::new();
            b.add_document(&parse_document("<cd><title>piano</title></cd>").unwrap());
            b.add_document(&parse_document("<dvd>film</dvd>").unwrap());
            b.build(&costs)
        };
        let mut schema = Schema::build(&tree, &costs);
        let nodes_before = schema.tree().len();
        let first = tree.documents()[0];
        tree.delete_document(NodeId(first.start)).unwrap();
        schema.delete_range(&tree, first);
        // The schema tree is untouched (stable pres)…
        assert_eq!(schema.tree().len(), nodes_before);
        // …but the cd class no longer appears in the label index.
        let cd = tree.lookup_label("cd").unwrap();
        assert!(schema.labels().blocks(NodeType::Struct, cd).is_none());
    }

    #[test]
    fn recursive_structures_fold_per_path() {
        // part > part > part: each nesting level is its own label-type
        // path, so the schema keeps one node per depth.
        let mut b = DataTreeBuilder::new();
        b.begin_struct("part");
        b.begin_struct("part");
        b.begin_struct("part");
        b.end();
        b.end();
        b.end();
        b.begin_struct("part");
        b.begin_struct("part");
        b.end();
        b.end();
        let d = b.build(&CostModel::new());
        let s = Schema::build(&d, &CostModel::new());
        // root + part@1 + part@2 + part@3
        assert_eq!(s.tree().len(), 4);
        let part = d.lookup_label("part").unwrap();
        // Three schema nodes carry the label `part`.
        assert_eq!(s.labels().fetch(NodeType::Struct, part).len(), 3);
    }
}
