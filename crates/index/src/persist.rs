//! Persisting indexes in an [`approxql_storage::Store`].
//!
//! Key layout (all keys are byte strings):
//!
//! * `meta#<name>` — named blobs (the serialized data tree, schema tree, …)
//! * `ls#<label>` / `lt#<label>` — `I_struct` / `I_text` postings
//! * `sec#<schema-pre, big-endian u32>#<label>` — path-dependent postings,
//!   mirroring the paper's `pre(u)#label(u)` key construction.
//!
//! Labels are stored as strings; on load they are resolved against the
//! interner of the (already loaded) data tree, so label ids stay consistent.

use crate::codec::{BlockList, InstanceBlocks, PostingDecodeError};
use crate::{LabelIndex, SecondaryIndex};
use approxql_storage::{StorageError, Store};
use approxql_tree::{Interner, NodeType};
use std::fmt;

/// Errors raised while saving or loading indexes.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying storage failure.
    Storage(StorageError),
    /// A posting value failed to decode.
    Decode(PostingDecodeError),
    /// A stored key is malformed.
    BadKey(String),
    /// A stored label does not exist in the tree's interner.
    UnknownLabel(String),
    /// A required `meta#` blob is missing.
    MissingBlob(&'static str),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::Storage(e) => write!(f, "{e}"),
            PersistError::Decode(e) => write!(f, "{e}"),
            PersistError::BadKey(k) => write!(f, "malformed index key `{k}`"),
            PersistError::UnknownLabel(l) => {
                write!(f, "stored label `{l}` is not in the tree's interner")
            }
            PersistError::MissingBlob(b) => write!(f, "missing stored blob `{b}`"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<StorageError> for PersistError {
    fn from(e: StorageError) -> Self {
        PersistError::Storage(e)
    }
}

impl From<PostingDecodeError> for PersistError {
    fn from(e: PostingDecodeError) -> Self {
        PersistError::Decode(e)
    }
}

/// The store key of a label posting: `ls#<label>` / `lt#<label>`.
pub fn label_key(ty: NodeType, label: &str) -> Vec<u8> {
    let mut k = match ty {
        NodeType::Struct => b"ls#".to_vec(),
        NodeType::Text => b"lt#".to_vec(),
    };
    k.extend_from_slice(label.as_bytes());
    k
}

/// The store key of a secondary posting:
/// `sec#<schema-pre, big-endian u32>#<label>`.
pub fn sec_key(schema_pre: u32, label: &str) -> Vec<u8> {
    let mut k = b"sec#".to_vec();
    k.extend_from_slice(&schema_pre.to_be_bytes());
    k.push(b'#');
    k.extend_from_slice(label.as_bytes());
    k
}

/// Saves a named blob under `meta#<name>`.
pub fn save_blob(store: &mut Store, name: &str, data: &[u8]) -> Result<(), PersistError> {
    let mut k = b"meta#".to_vec();
    k.extend_from_slice(name.as_bytes());
    store.put(&k, data)?;
    Ok(())
}

/// Loads a named blob saved with [`save_blob`].
pub fn load_blob(store: &mut Store, name: &'static str) -> Result<Vec<u8>, PersistError> {
    let mut k = b"meta#".to_vec();
    k.extend_from_slice(name.as_bytes());
    store.get(&k)?.ok_or(PersistError::MissingBlob(name))
}

/// Saves a label index; labels are resolved through `interner`.
pub fn save_label_index(
    store: &mut Store,
    index: &LabelIndex,
    interner: &Interner,
) -> Result<(), PersistError> {
    for ((ty, label), blocks) in index.iter() {
        let key = label_key(ty, interner.resolve(label));
        store.put(&key, &blocks.to_bytes())?;
    }
    Ok(())
}

/// Loads a label index saved with [`save_label_index`].
pub fn load_label_index(
    store: &mut Store,
    interner: &Interner,
) -> Result<LabelIndex, PersistError> {
    let mut index = LabelIndex::default();
    for (prefix, ty) in [
        (&b"ls#"[..], NodeType::Struct),
        (&b"lt#"[..], NodeType::Text),
    ] {
        let entries = store.scan_prefix(prefix)?.collect_all()?;
        for (key, value) in entries {
            let label_bytes = &key[prefix.len()..];
            let label_str = std::str::from_utf8(label_bytes)
                .map_err(|_| PersistError::BadKey(String::from_utf8_lossy(&key).into_owned()))?;
            let label = interner
                .get(label_str)
                .ok_or_else(|| PersistError::UnknownLabel(label_str.to_owned()))?;
            index.insert_blocks(ty, label, BlockList::from_bytes(&value)?);
        }
    }
    Ok(index)
}

/// Saves a secondary index; labels are resolved through `interner`.
pub fn save_secondary_index(
    store: &mut Store,
    index: &SecondaryIndex,
    interner: &Interner,
) -> Result<(), PersistError> {
    for ((schema_pre, label), blocks) in index.iter() {
        let key = sec_key(schema_pre, interner.resolve(label));
        store.put(&key, &blocks.to_bytes())?;
    }
    Ok(())
}

/// Loads a secondary index saved with [`save_secondary_index`].
pub fn load_secondary_index(
    store: &mut Store,
    interner: &Interner,
) -> Result<SecondaryIndex, PersistError> {
    let mut index = SecondaryIndex::new();
    let entries = store.scan_prefix(b"sec#")?.collect_all()?;
    for (key, value) in entries {
        let rest = &key[4..];
        if rest.len() < 5 || rest[4] != b'#' {
            return Err(PersistError::BadKey(
                String::from_utf8_lossy(&key).into_owned(),
            ));
        }
        let schema_pre = u32::from_be_bytes(rest[0..4].try_into().unwrap());
        let label_str = std::str::from_utf8(&rest[5..])
            .map_err(|_| PersistError::BadKey(String::from_utf8_lossy(&key).into_owned()))?;
        let label = interner
            .get(label_str)
            .ok_or_else(|| PersistError::UnknownLabel(label_str.to_owned()))?;
        index.insert_blocks(schema_pre, label, InstanceBlocks::from_bytes(&value)?);
    }
    Ok(index)
}

/// Walks every stored posting list (`ls#`/`lt#`/`sec#` values) and runs
/// the full block-integrity check: structural skip-header validation,
/// per-frame decode, and the decode round-trip against the headers. Used
/// by `approxql check` (DESIGN.md §14); any failure means the compressed
/// frames contradict their skip headers.
pub fn check_posting_blocks(store: &mut Store) -> Result<(), PersistError> {
    for prefix in [&b"ls#"[..], &b"lt#"[..]] {
        let entries = store.scan_prefix(prefix)?.collect_all()?;
        for (_, value) in entries {
            BlockList::from_bytes(&value)?.check_integrity()?;
        }
    }
    let entries = store.scan_prefix(b"sec#")?.collect_all()?;
    for (_, value) in entries {
        InstanceBlocks::from_bytes(&value)?.check_integrity()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{InstancePosting, Posting};
    use approxql_cost::CostModel;
    use approxql_tree::{Cost, DataTree, DataTreeBuilder};

    fn tree() -> DataTree {
        let mut b = DataTreeBuilder::new();
        b.begin_struct("cd");
        b.begin_struct("title");
        b.add_text("piano concerto");
        b.end();
        b.end();
        b.build(&CostModel::new())
    }

    #[test]
    fn label_index_roundtrip() {
        let t = tree();
        let idx = LabelIndex::build(&t);
        let mut store = Store::in_memory().unwrap();
        save_label_index(&mut store, &idx, t.interner()).unwrap();
        let loaded = load_label_index(&mut store, t.interner()).unwrap();
        assert_eq!(loaded.len(), idx.len());
        assert_eq!(loaded.entry_count(), idx.entry_count());
        let cd = t.lookup_label("cd").unwrap();
        assert_eq!(
            loaded.fetch(NodeType::Struct, cd),
            idx.fetch(NodeType::Struct, cd)
        );
        let piano = t.lookup_label("piano").unwrap();
        assert_eq!(
            loaded.fetch(NodeType::Text, piano),
            idx.fetch(NodeType::Text, piano)
        );
    }

    #[test]
    fn secondary_index_roundtrip() {
        let t = tree();
        let mut idx = SecondaryIndex::new();
        let cd = t.lookup_label("cd").unwrap();
        let piano = t.lookup_label("piano").unwrap();
        idx.push(1, cd, InstancePosting { pre: 1, bound: 4 });
        idx.push(3, piano, InstancePosting { pre: 3, bound: 3 });
        idx.push(3, piano, InstancePosting { pre: 9, bound: 9 });
        let mut store = Store::in_memory().unwrap();
        save_secondary_index(&mut store, &idx, t.interner()).unwrap();
        let loaded = load_secondary_index(&mut store, t.interner()).unwrap();
        assert_eq!(loaded.len(), 2);
        assert_eq!(loaded.fetch(3, piano), idx.fetch(3, piano));
        assert_eq!(loaded.fetch(1, cd), idx.fetch(1, cd));
    }

    #[test]
    fn blob_roundtrip_and_missing() {
        let mut store = Store::in_memory().unwrap();
        save_blob(&mut store, "tree", b"bytes").unwrap();
        assert_eq!(load_blob(&mut store, "tree").unwrap(), b"bytes");
        assert!(matches!(
            load_blob(&mut store, "nope"),
            Err(PersistError::MissingBlob("nope"))
        ));
    }

    #[test]
    fn unknown_label_on_load_is_an_error() {
        let t = tree();
        let idx = LabelIndex::build(&t);
        let mut store = Store::in_memory().unwrap();
        save_label_index(&mut store, &idx, t.interner()).unwrap();
        // A different tree without those labels.
        let other = DataTreeBuilder::new().build(&CostModel::new());
        assert!(matches!(
            load_label_index(&mut store, other.interner()),
            Err(PersistError::UnknownLabel(_))
        ));
    }

    #[test]
    fn check_posting_blocks_flags_contradictory_frames() {
        let t = tree();
        let idx = LabelIndex::build(&t);
        let mut store = Store::in_memory().unwrap();
        save_label_index(&mut store, &idx, t.interner()).unwrap();
        check_posting_blocks(&mut store).unwrap();
        // Bump the count field of the first skip header: the bytes stay
        // structurally valid, but the frame no longer matches its header,
        // which only the decode round-trip of `check_integrity` catches.
        let key = label_key(NodeType::Struct, "cd");
        let mut bad = store.get(&key).unwrap().unwrap();
        let count_off = 4 + 12; // u32 block count, then min/max/max_bound
        bad[count_off] = bad[count_off].wrapping_add(1);
        store.put(&key, &bad).unwrap();
        assert!(check_posting_blocks(&mut store).is_err());
    }

    #[test]
    fn postings_with_infinite_costs_survive() {
        let t = tree();
        let mut idx = LabelIndex::build(&t);
        let cd = t.lookup_label("cd").unwrap();
        idx.insert_posting(
            NodeType::Struct,
            cd,
            vec![Posting {
                pre: 1,
                bound: 2,
                pathcost: Cost::INFINITY,
                inscost: Cost::finite(1),
            }],
        );
        let mut store = Store::in_memory().unwrap();
        save_label_index(&mut store, &idx, t.interner()).unwrap();
        let loaded = load_label_index(&mut store, t.interner()).unwrap();
        assert_eq!(
            loaded.fetch(NodeType::Struct, cd)[0].pathcost,
            Cost::INFINITY
        );
    }
}
