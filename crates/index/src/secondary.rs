//! Path-dependent postings: the secondary index `I_sec` of Section 7.3.

use crate::codec::InstanceBlocks;
use approxql_metrics::Metric;
use approxql_tree::LabelId;
use std::collections::HashMap;

/// One instance of a schema node: a data node as a preorder–bound pair
/// (everything `secondary` needs for its descendant tests).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct InstancePosting {
    /// Preorder number of the instance in the data tree.
    pub pre: u32,
    /// Bound of the instance's subtree.
    pub bound: u32,
}

/// The secondary index: maps `(schema node, label)` to the sorted list of
/// data-tree instances.
///
/// The label component mirrors the paper's key construction
/// `pre(u)#label(u)`: for struct nodes it is redundant (a schema node has
/// one name) but for *merged text classes* of a compacted schema it selects
/// the instances of one specific word.
#[derive(Debug, Clone, Default)]
pub struct SecondaryIndex {
    map: HashMap<(u32, LabelId), InstanceBlocks>,
}

impl SecondaryIndex {
    /// Creates an empty index (populated by the schema builder).
    pub fn new() -> SecondaryIndex {
        SecondaryIndex::default()
    }

    /// Appends an instance to the posting of `(schema_pre, label)`.
    /// Instances must be added in increasing preorder (the schema builder
    /// walks the data tree in preorder, so this holds naturally); sealed
    /// frames compress incrementally as the list grows.
    pub fn push(&mut self, schema_pre: u32, label: LabelId, instance: InstancePosting) {
        self.map
            .entry((schema_pre, label))
            .or_default()
            .push(instance);
    }

    /// The instances of `(schema_pre, label)`, preorder-sorted and fully
    /// decoded.
    pub fn fetch(&self, schema_pre: u32, label: LabelId) -> Vec<InstancePosting> {
        let posting = self
            .map
            .get(&(schema_pre, label))
            .map(InstanceBlocks::decode_all)
            .unwrap_or_default();
        Metric::IndexSecondaryFetches.incr();
        Metric::IndexSecondaryRows.add(posting.len() as u64);
        posting
    }

    /// Number of `(schema node, label)` postings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if no postings exist.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total number of instance entries.
    pub fn entry_count(&self) -> usize {
        self.map.values().map(InstanceBlocks::entry_count).sum()
    }

    /// Total serialized size of all compressed instance lists, in bytes.
    pub fn byte_len(&self) -> usize {
        self.map.values().map(InstanceBlocks::byte_len).sum()
    }

    /// Iterates over all postings (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = ((u32, LabelId), &InstanceBlocks)> {
        self.map.iter().map(|(&k, v)| (k, v))
    }

    /// Inserts a whole posting, compressing it (input must be strictly
    /// pre-sorted).
    pub fn insert_posting(
        &mut self,
        schema_pre: u32,
        label: LabelId,
        posting: Vec<InstancePosting>,
    ) {
        self.map.insert(
            (schema_pre, label),
            InstanceBlocks::from_instances(&posting),
        );
    }

    /// Inserts an already-compressed posting (used when loading from
    /// storage).
    pub fn insert_blocks(&mut self, schema_pre: u32, label: LabelId, blocks: InstanceBlocks) {
        self.map.insert((schema_pre, label), blocks);
    }

    /// The compressed posting for `(schema_pre, label)` without any metric
    /// side-effects, for the persistence write path. `None` if absent.
    pub fn blocks(&self, schema_pre: u32, label: LabelId) -> Option<&InstanceBlocks> {
        self.map.get(&(schema_pre, label))
    }

    /// Removes every instance of `(schema_pre, label)` with
    /// `lo <= pre <= hi`, dropping the entry entirely when it empties.
    /// Returns the number of instances removed.
    pub fn remove_range(&mut self, schema_pre: u32, label: LabelId, lo: u32, hi: u32) -> usize {
        let Some(blocks) = self.map.get_mut(&(schema_pre, label)) else {
            return 0;
        };
        let removed = blocks.remove_range(lo, hi);
        if blocks.entry_count() == 0 {
            self.map.remove(&(schema_pre, label));
        }
        removed
    }

    /// Removes a whole posting. Returns `true` if it existed.
    pub fn remove_key(&mut self, schema_pre: u32, label: LabelId) -> bool {
        self.map.remove(&(schema_pre, label)).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_fetch() {
        let mut idx = SecondaryIndex::new();
        let l = LabelId(3);
        idx.push(7, l, InstancePosting { pre: 10, bound: 12 });
        idx.push(7, l, InstancePosting { pre: 20, bound: 25 });
        assert_eq!(idx.fetch(7, l).len(), 2);
        assert_eq!(idx.fetch(7, l)[1].pre, 20);
        assert!(idx.fetch(8, l).is_empty());
        assert!(idx.fetch(7, LabelId(4)).is_empty());
        assert_eq!(idx.entry_count(), 2);
        assert_eq!(idx.len(), 1);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn out_of_order_push_panics_in_debug() {
        let mut idx = SecondaryIndex::new();
        let l = LabelId(0);
        idx.push(0, l, InstancePosting { pre: 5, bound: 5 });
        idx.push(0, l, InstancePosting { pre: 4, bound: 4 });
    }
}
