//! Byte encodings of posting lists (for the storage layer).
//!
//! Two families live here:
//!
//! * the original fixed-width codecs ([`encode_postings`] /
//!   [`decode_postings`], 24 bytes per entry) — kept for tests and as the
//!   reference layout the block format is measured against;
//! * the block-compressed representation ([`BlockList`] /
//!   [`InstanceBlocks`], DESIGN.md §14): delta-encoded varint frames of up
//!   to [`BLOCK_SIZE`] entries, each fronted by a [`BlockHeader`] skip
//!   entry (`min_pre`/`max_pre`/`max_bound`/count/byte offset) so that
//!   consumers can decide from the headers alone whether a frame can
//!   contribute to a join or intersection, and decode only those that can.

use crate::{InstancePosting, Posting};
use approxql_metrics::Metric;
use approxql_tree::Cost;
use std::fmt;

/// Decode errors for serialized postings.
#[derive(Debug, PartialEq, Eq)]
pub struct PostingDecodeError(pub &'static str);

impl fmt::Display for PostingDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "posting decode error: {}", self.0)
    }
}

impl std::error::Error for PostingDecodeError {}

/// Encodes a posting list: each entry as `pre, bound, pathcost, inscost`
/// (little endian, 24 bytes per entry).
pub fn encode_postings(postings: &[Posting]) -> Vec<u8> {
    let mut out = Vec::with_capacity(postings.len() * 24);
    for p in postings {
        out.extend_from_slice(&p.pre.to_le_bytes());
        out.extend_from_slice(&p.bound.to_le_bytes());
        out.extend_from_slice(&p.pathcost.raw().to_le_bytes());
        out.extend_from_slice(&p.inscost.raw().to_le_bytes());
    }
    out
}

/// Decodes [`encode_postings`] output.
pub fn decode_postings(data: &[u8]) -> Result<Vec<Posting>, PostingDecodeError> {
    if !data.len().is_multiple_of(24) {
        return Err(PostingDecodeError("length is not a multiple of 24"));
    }
    Metric::IndexBytesDecoded.add(data.len() as u64);
    let mut out = Vec::with_capacity(data.len() / 24);
    for chunk in data.chunks_exact(24) {
        out.push(Posting {
            pre: u32::from_le_bytes(chunk[0..4].try_into().unwrap()),
            bound: u32::from_le_bytes(chunk[4..8].try_into().unwrap()),
            pathcost: Cost::from_raw(u64::from_le_bytes(chunk[8..16].try_into().unwrap())),
            inscost: Cost::from_raw(u64::from_le_bytes(chunk[16..24].try_into().unwrap())),
        });
    }
    Ok(out)
}

/// Encodes instance postings (8 bytes per entry).
pub fn encode_instances(postings: &[InstancePosting]) -> Vec<u8> {
    let mut out = Vec::with_capacity(postings.len() * 8);
    for p in postings {
        out.extend_from_slice(&p.pre.to_le_bytes());
        out.extend_from_slice(&p.bound.to_le_bytes());
    }
    out
}

/// Decodes [`encode_instances`] output.
pub fn decode_instances(data: &[u8]) -> Result<Vec<InstancePosting>, PostingDecodeError> {
    if !data.len().is_multiple_of(8) {
        return Err(PostingDecodeError("length is not a multiple of 8"));
    }
    Metric::IndexBytesDecoded.add(data.len() as u64);
    let mut out = Vec::with_capacity(data.len() / 8);
    for chunk in data.chunks_exact(8) {
        out.push(InstancePosting {
            pre: u32::from_le_bytes(chunk[0..4].try_into().unwrap()),
            bound: u32::from_le_bytes(chunk[4..8].try_into().unwrap()),
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Block-compressed postings (DESIGN.md §14)
// ---------------------------------------------------------------------------

/// Entries per compressed frame (the last frame of a list may be shorter).
pub const BLOCK_SIZE: usize = 128;

/// Bytes one serialized [`BlockHeader`] occupies in [`BlockList::to_bytes`].
const HEADER_BYTES: usize = 20;

/// Skip entry of one compressed frame. `min_pre`/`max_pre` bound the
/// preorder numbers inside the frame (frames partition a strictly
/// pre-sorted list, so ranges of consecutive frames are disjoint and
/// increasing); `max_bound` is the largest subtree bound, which an
/// interval join needs to decide whether *any* entry of the frame can
/// still contain a given descendant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockHeader {
    /// Smallest preorder number in the frame (= the first entry's `pre`).
    pub min_pre: u32,
    /// Largest preorder number in the frame (= the last entry's `pre`).
    pub max_pre: u32,
    /// Largest subtree bound of any entry in the frame (≥ `max_pre`).
    pub max_bound: u32,
    /// Number of entries in the frame (1..=[`BLOCK_SIZE`]).
    pub count: u32,
    /// Byte offset of the frame inside the payload.
    pub offset: u32,
}

/// Unsigned LEB128.
fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

fn read_varint(data: &[u8], pos: &mut usize) -> Result<u64, PostingDecodeError> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let Some(&b) = data.get(*pos) else {
            return Err(PostingDecodeError("varint runs past the frame"));
        };
        *pos += 1;
        if shift == 63 && b & 0x7e != 0 {
            return Err(PostingDecodeError("varint exceeds 64 bits"));
        }
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
        if shift > 63 {
            return Err(PostingDecodeError("varint exceeds 64 bits"));
        }
    }
}

/// Bijection that keeps the (frequent, small) finite costs one byte wide:
/// infinity maps to 0, a finite raw value `v` to `v + 1`. Safe because
/// infinity is the reserved `u64::MAX` raw value.
fn encode_cost(c: Cost) -> u64 {
    match c.value() {
        None => 0,
        Some(v) => v + 1,
    }
}

fn decode_cost(v: u64) -> Cost {
    match v {
        0 => Cost::INFINITY,
        v => Cost::from_raw(v - 1),
    }
}

/// A posting list stored as delta-compressed varint frames with skip
/// headers. Construct with [`BlockList::from_postings`] (input must be
/// strictly pre-sorted); persist with [`BlockList::to_bytes`] /
/// [`BlockList::from_bytes`].
///
/// Frame layout (per entry, in entry order): the first entry's `pre` is
/// the header's `min_pre` (not stored); later entries store
/// `varint(pre − prev_pre)`. Every entry stores `varint(bound − pre)`,
/// `varint(cost(pathcost))`, `varint(cost(inscost))` with the
/// infinity-to-0 cost bijection. Deltas use wrapping arithmetic so no
/// input can make the decoder panic.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BlockList {
    headers: Vec<BlockHeader>,
    payload: Vec<u8>,
    entries: usize,
}

impl BlockList {
    /// Compresses a strictly pre-sorted posting list into frames.
    pub fn from_postings(postings: &[Posting]) -> BlockList {
        debug_assert!(
            postings.windows(2).all(|w| w[0].pre < w[1].pre),
            "postings must have strictly increasing preorder numbers"
        );
        let mut headers = Vec::with_capacity(postings.len().div_ceil(BLOCK_SIZE));
        let mut payload = Vec::new();
        for frame in postings.chunks(BLOCK_SIZE) {
            let offset = payload.len() as u32;
            let mut prev_pre = frame[0].pre;
            let mut max_bound = 0u32;
            for (k, p) in frame.iter().enumerate() {
                if k > 0 {
                    write_varint(&mut payload, u64::from(p.pre.wrapping_sub(prev_pre)));
                    prev_pre = p.pre;
                }
                write_varint(&mut payload, u64::from(p.bound.wrapping_sub(p.pre)));
                write_varint(&mut payload, encode_cost(p.pathcost));
                write_varint(&mut payload, encode_cost(p.inscost));
                max_bound = max_bound.max(p.bound);
            }
            headers.push(BlockHeader {
                min_pre: frame[0].pre,
                max_pre: prev_pre,
                max_bound,
                count: frame.len() as u32,
                offset,
            });
        }
        BlockList {
            headers,
            payload,
            entries: postings.len(),
        }
    }

    /// The skip headers, one per frame, in preorder.
    pub fn headers(&self) -> &[BlockHeader] {
        &self.headers
    }

    /// Total number of postings across all frames.
    pub fn entry_count(&self) -> usize {
        self.entries
    }

    /// True when the list holds no postings.
    pub fn is_empty(&self) -> bool {
        self.entries == 0
    }

    /// Size of the serialized representation ([`BlockList::to_bytes`]).
    pub fn byte_len(&self) -> usize {
        4 + self.headers.len() * HEADER_BYTES + self.payload.len()
    }

    /// The payload byte range of frame `i`.
    fn frame_range(&self, i: usize) -> (usize, usize) {
        let start = self.headers[i].offset as usize;
        let end = self
            .headers
            .get(i + 1)
            .map(|h| h.offset as usize)
            .unwrap_or(self.payload.len());
        (start, end)
    }

    fn decode_frame_into(
        &self,
        i: usize,
        out: &mut Vec<Posting>,
    ) -> Result<(), PostingDecodeError> {
        let h = self.headers[i];
        let (start, end) = self.frame_range(i);
        let Some(frame) = self.payload.get(start..end) else {
            return Err(PostingDecodeError("frame offset outside payload"));
        };
        let mut pos = 0usize;
        let mut pre = h.min_pre;
        for k in 0..h.count {
            if k > 0 {
                pre = pre.wrapping_add(read_varint(frame, &mut pos)? as u32);
            }
            let bound = pre.wrapping_add(read_varint(frame, &mut pos)? as u32);
            let pathcost = decode_cost(read_varint(frame, &mut pos)?);
            let inscost = decode_cost(read_varint(frame, &mut pos)?);
            out.push(Posting {
                pre,
                bound,
                pathcost,
                inscost,
            });
        }
        if pos != frame.len() {
            return Err(PostingDecodeError("trailing bytes in frame"));
        }
        Ok(())
    }

    /// Decodes frame `i`, recording the query-time decode metrics
    /// (`postings.blocks_decoded`, `postings.bytes`). A corrupt frame —
    /// impossible for lists built by [`BlockList::from_postings`] —
    /// degrades to the entries decoded so far instead of panicking.
    pub fn decode_block(&self, i: usize) -> Vec<Posting> {
        let mut out = Vec::with_capacity(
            self.headers
                .get(i)
                .map_or(0, |h| (h.count as usize).min(BLOCK_SIZE)),
        );
        self.decode_block_into(i, &mut out);
        out
    }

    /// [`BlockList::decode_block`] appending into an existing buffer.
    pub fn decode_block_into(&self, i: usize, out: &mut Vec<Posting>) {
        if i >= self.headers.len() {
            return;
        }
        Metric::PostingsBlocksDecoded.incr();
        let (start, end) = self.frame_range(i);
        Metric::PostingsBytes.add(end.saturating_sub(start) as u64);
        let before = out.len();
        let r = self.decode_frame_into(i, out);
        debug_assert!(r.is_ok(), "frame {i} failed to decode: {r:?}");
        if r.is_err() {
            out.truncate(before);
        }
    }

    /// Records one skipped frame (`postings.blocks_skipped`). Kept here so
    /// every skip decision in the list algebra counts identically.
    pub fn record_skip() {
        Metric::PostingsBlocksSkipped.incr();
    }

    /// Decodes every frame (the flat-compatibility path).
    pub fn decode_all(&self) -> Vec<Posting> {
        // `entries` is re-derived by `from_bytes`, which bounds every
        // frame's count against its payload byte span, so the sum is ≤
        // the input length.
        // lint:allow(untrusted-length)
        let mut out = Vec::with_capacity(self.entries);
        for i in 0..self.headers.len() {
            self.decode_block_into(i, &mut out);
        }
        out
    }

    /// Serializes headers + payload: `u32` frame count, then per frame
    /// `min_pre, max_pre, max_bound, count, offset` (little-endian u32s),
    /// then the payload bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.byte_len());
        out.extend_from_slice(&(self.headers.len() as u32).to_le_bytes());
        for h in &self.headers {
            out.extend_from_slice(&h.min_pre.to_le_bytes());
            out.extend_from_slice(&h.max_pre.to_le_bytes());
            out.extend_from_slice(&h.max_bound.to_le_bytes());
            out.extend_from_slice(&h.count.to_le_bytes());
            out.extend_from_slice(&h.offset.to_le_bytes());
        }
        out.extend_from_slice(&self.payload);
        out
    }

    /// Deserializes [`BlockList::to_bytes`] output, validating the skip
    /// headers structurally (monotone offsets and pre ranges, entry counts
    /// in range) without decoding the frames. Records the persistence-side
    /// `index.bytes_decoded` metric; the full decode round-trip check is
    /// [`BlockList::check_integrity`].
    pub fn from_bytes(data: &[u8]) -> Result<BlockList, PostingDecodeError> {
        // A posting frame carries 4 varints per entry (pre delta, bound
        // delta, two costs), the first entry's pre delta elided.
        BlockList::from_bytes_with_entry_floor(data, 4)
    }

    /// [`BlockList::from_bytes`] with a caller-chosen entry byte floor:
    /// every frame must span at least `min_varints_per_entry × count − 1`
    /// payload bytes (each varint is ≥ 1 byte). This caps the decoded
    /// `entries` total by the input length, so a hostile header cannot
    /// claim counts the payload could never hold. Instance frames
    /// ([`InstanceBlocks`]) carry 2 varints per entry.
    fn from_bytes_with_entry_floor(
        data: &[u8],
        min_varints_per_entry: usize,
    ) -> Result<BlockList, PostingDecodeError> {
        Metric::IndexBytesDecoded.add(data.len() as u64);
        let Some(n_bytes) = data.get(0..4) else {
            return Err(PostingDecodeError("block list shorter than its header"));
        };
        let n = u32::from_le_bytes(le_array(n_bytes)) as usize;
        let Some(header_bytes) = data.get(4..4 + n.saturating_mul(HEADER_BYTES)) else {
            return Err(PostingDecodeError("skip headers truncated"));
        };
        let payload = data[4 + n * HEADER_BYTES..].to_vec();
        let mut headers: Vec<BlockHeader> = Vec::with_capacity(n);
        let mut entries = 0usize;
        for chunk in header_bytes.chunks_exact(HEADER_BYTES) {
            let h = BlockHeader {
                min_pre: u32::from_le_bytes(le_array(&chunk[0..4])),
                max_pre: u32::from_le_bytes(le_array(&chunk[4..8])),
                max_bound: u32::from_le_bytes(le_array(&chunk[8..12])),
                count: u32::from_le_bytes(le_array(&chunk[12..16])),
                offset: u32::from_le_bytes(le_array(&chunk[16..20])),
            };
            if h.count == 0 || h.count as usize > BLOCK_SIZE {
                return Err(PostingDecodeError("frame entry count out of range"));
            }
            if h.min_pre > h.max_pre || h.max_bound < h.max_pre {
                return Err(PostingDecodeError("skip header pre range inverted"));
            }
            if let Some(prev) = headers.last() {
                if h.offset <= prev.offset || prev.max_pre >= h.min_pre {
                    return Err(PostingDecodeError("skip headers not monotone"));
                }
                let span = (h.offset - prev.offset) as usize;
                if span + 1 < min_varints_per_entry * prev.count as usize {
                    return Err(PostingDecodeError("frame too short for its entry count"));
                }
            } else if h.offset != 0 {
                return Err(PostingDecodeError("first frame must start at offset 0"));
            }
            if h.offset as usize > payload.len() {
                return Err(PostingDecodeError("frame offset outside payload"));
            }
            entries += h.count as usize;
            headers.push(h);
        }
        if let Some(last) = headers.last() {
            let span = payload.len() - last.offset as usize;
            if span + 1 < min_varints_per_entry * last.count as usize {
                return Err(PostingDecodeError("frame too short for its entry count"));
            }
        }
        if n == 0 && !payload.is_empty() {
            return Err(PostingDecodeError("payload without frames"));
        }
        Ok(BlockList {
            headers,
            payload,
            entries,
        })
    }

    /// Appends strictly pre-sorted postings whose preorder numbers all
    /// exceed the list's current maximum (document inserts allocate fresh
    /// preorder numbers past the end, so this is the only append shape the
    /// mutation path needs).
    ///
    /// The merge is canonical-form preserving: full frames are kept as-is,
    /// a partial tail frame is decoded and re-chunked together with the
    /// new entries, so the result is byte-identical to
    /// [`BlockList::from_postings`] over the concatenated list (which
    /// [`BlockList::check_integrity`] demands).
    pub fn append_postings(&mut self, new: &[Posting]) {
        if new.is_empty() {
            return;
        }
        debug_assert!(
            new.windows(2).all(|w| w[0].pre < w[1].pre),
            "appended postings must have strictly increasing preorder numbers"
        );
        debug_assert!(
            self.headers.last().is_none_or(|h| h.max_pre < new[0].pre),
            "appended postings must start past the current maximum"
        );
        // Re-chunk from the first frame that is not full (only the tail
        // frame can be partial in canonical form).
        let keep = self
            .headers
            .iter()
            .position(|h| (h.count as usize) < BLOCK_SIZE)
            .unwrap_or(self.headers.len());
        // Mutation path over in-memory headers: every `count` was
        // bounds-checked (≤ BLOCK_SIZE, frame byte floor) when the list
        // was decoded or built by `encode_frames`.
        // lint:allow(untrusted-length)
        let mut pending = Vec::with_capacity(
            self.headers[keep..]
                .iter()
                .map(|h| h.count as usize)
                .sum::<usize>()
                + new.len(),
        );
        for i in keep..self.headers.len() {
            // Not `decode_block_into`: mutations must not count toward the
            // query-time decode metrics.
            let r = self.decode_frame_into(i, &mut pending);
            debug_assert!(r.is_ok(), "tail frame {i} failed to decode: {r:?}");
        }
        pending.extend_from_slice(new);
        self.truncate_frames(keep);
        self.encode_frames(&pending);
    }

    /// Removes every posting with `pre` in `[lo, hi]`, returning the number
    /// removed. Frames entirely below `lo` are kept untouched; the list is
    /// re-chunked from the first affected frame, so the result stays a
    /// canonical encoding.
    pub fn remove_range(&mut self, lo: u32, hi: u32) -> usize {
        let keep = self
            .headers
            .iter()
            .position(|h| h.max_pre >= lo)
            .unwrap_or(self.headers.len());
        if keep == self.headers.len() {
            return 0;
        }
        let mut tail = Vec::new();
        for i in keep..self.headers.len() {
            let r = self.decode_frame_into(i, &mut tail);
            debug_assert!(r.is_ok(), "frame {i} failed to decode: {r:?}");
        }
        let before = tail.len();
        tail.retain(|p| p.pre < lo || p.pre > hi);
        let removed = before - tail.len();
        if removed == 0 {
            return 0;
        }
        self.truncate_frames(keep);
        self.encode_frames(&tail);
        removed
    }

    /// Drops frames `from..` (headers and payload).
    fn truncate_frames(&mut self, from: usize) {
        let cut = self
            .headers
            .get(from)
            .map(|h| h.offset as usize)
            .unwrap_or(self.payload.len());
        let dropped: usize = self.headers[from..].iter().map(|h| h.count as usize).sum();
        self.payload.truncate(cut);
        self.headers.truncate(from);
        self.entries -= dropped;
    }

    /// Encodes `postings` as frames appended after the existing ones.
    /// Callers must guarantee the existing frames are all full and the new
    /// entries start past the current maximum (canonical-form invariants).
    fn encode_frames(&mut self, postings: &[Posting]) {
        for frame in postings.chunks(BLOCK_SIZE) {
            let offset = self.payload.len() as u32;
            let mut prev_pre = frame[0].pre;
            let mut max_bound = 0u32;
            for (k, p) in frame.iter().enumerate() {
                if k > 0 {
                    write_varint(&mut self.payload, u64::from(p.pre.wrapping_sub(prev_pre)));
                    prev_pre = p.pre;
                }
                write_varint(&mut self.payload, u64::from(p.bound.wrapping_sub(p.pre)));
                write_varint(&mut self.payload, encode_cost(p.pathcost));
                write_varint(&mut self.payload, encode_cost(p.inscost));
                max_bound = max_bound.max(p.bound);
            }
            self.headers.push(BlockHeader {
                min_pre: frame[0].pre,
                max_pre: prev_pre,
                max_bound,
                count: frame.len() as u32,
                offset,
            });
        }
        self.entries += postings.len();
    }

    /// Full integrity check used by `approxql check`: every frame must
    /// decode, the decoded entries must match the skip header
    /// (`min_pre`/`max_pre`/`max_bound`/count, strictly increasing pre),
    /// and re-encoding the decoded list must reproduce this representation
    /// byte for byte.
    pub fn check_integrity(&self) -> Result<(), PostingDecodeError> {
        // `entries` was capped against the payload byte length by
        // `from_bytes`' per-frame floor check.
        // lint:allow(untrusted-length)
        let mut all = Vec::with_capacity(self.entries);
        for (i, h) in self.headers.iter().enumerate() {
            let before = all.len();
            self.decode_frame_into(i, &mut all)?;
            let frame = &all[before..];
            let max_bound = frame.iter().map(|p| p.bound).max().unwrap_or(0);
            let sorted = frame.windows(2).all(|w| w[0].pre < w[1].pre);
            if !sorted
                || frame.first().map(|p| p.pre) != Some(h.min_pre)
                || frame.last().map(|p| p.pre) != Some(h.max_pre)
                || max_bound != h.max_bound
            {
                return Err(PostingDecodeError("frame contents contradict skip header"));
            }
        }
        if BlockList::from_postings(&all) != *self {
            return Err(PostingDecodeError("block list is not a canonical encoding"));
        }
        Ok(())
    }
}

/// Seeking cursor over a [`BlockList`]: yields postings in preorder and
/// can jump to the first posting with `pre ≥ target` via the skip
/// headers, decoding only the frame the target lands in.
pub struct BlockCursor<'a> {
    list: &'a BlockList,
    block: usize,
    buf: Vec<Posting>,
    pos: usize,
}

impl<'a> BlockCursor<'a> {
    /// A cursor positioned before the first posting.
    pub fn new(list: &'a BlockList) -> BlockCursor<'a> {
        BlockCursor {
            list,
            block: 0,
            buf: Vec::new(),
            pos: 0,
        }
    }

    fn fill(&mut self) {
        while self.pos >= self.buf.len() && self.block < self.list.headers.len() {
            self.buf.clear();
            self.pos = 0;
            self.list.decode_block_into(self.block, &mut self.buf);
            self.block += 1;
        }
    }

    /// The posting under the cursor, if any (does not advance).
    pub fn peek(&mut self) -> Option<Posting> {
        self.fill();
        self.buf.get(self.pos).copied()
    }

    /// Positions the cursor at the first posting with `pre ≥ target`
    /// at or after the current position, skipping (and counting) whole
    /// frames whose `max_pre` falls below the target.
    pub fn seek(&mut self, target: u32) -> Option<Posting> {
        // Drop already-decoded entries below the target.
        if let Some(p) = self.buf.get(self.pos) {
            if p.pre >= target {
                return Some(*p);
            }
            self.pos += self.buf[self.pos..].partition_point(|p| p.pre < target);
            if let Some(p) = self.buf.get(self.pos) {
                return Some(*p);
            }
        }
        // Skip whole frames strictly below the target.
        while self
            .list
            .headers
            .get(self.block)
            .is_some_and(|h| h.max_pre < target)
        {
            BlockList::record_skip();
            self.block += 1;
        }
        self.fill();
        self.pos += self.buf[self.pos..].partition_point(|p| p.pre < target);
        self.buf.get(self.pos).copied()
    }
}

impl Iterator for BlockCursor<'_> {
    type Item = Posting;

    /// Advances past the current posting and returns it.
    fn next(&mut self) -> Option<Posting> {
        let p = self.peek();
        if p.is_some() {
            self.pos += 1;
        }
        p
    }
}

/// Little-endian helper: copies a slice into a fixed array, zero-padding
/// a short slice (callers always pass exactly 4 bytes).
fn le_array<const N: usize>(slice: &[u8]) -> [u8; N] {
    let mut out = [0u8; N];
    let n = slice.len().min(N);
    out[..n].copy_from_slice(&slice[..n]);
    out
}

/// Block-compressed instance postings (`pre`/`bound` pairs) with an
/// uncompressed tail buffer so the secondary index can keep appending
/// while earlier entries are already sealed into frames.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InstanceBlocks {
    headers: Vec<BlockHeader>,
    payload: Vec<u8>,
    sealed: usize,
    tail: Vec<InstancePosting>,
}

impl InstanceBlocks {
    /// Compresses a strictly pre-sorted instance list.
    pub fn from_instances(postings: &[InstancePosting]) -> InstanceBlocks {
        let mut out = InstanceBlocks::default();
        for &p in postings {
            out.push(p);
        }
        out
    }

    /// Appends one instance (callers push in strictly increasing `pre`
    /// order); seals a frame whenever the tail reaches [`BLOCK_SIZE`].
    pub fn push(&mut self, p: InstancePosting) {
        debug_assert!(
            self.tail.last().is_none_or(|last| last.pre < p.pre)
                && self.headers.last().is_none_or(|h| h.max_pre < p.pre),
            "instances must be pushed in increasing preorder"
        );
        self.tail.push(p);
        if self.tail.len() == BLOCK_SIZE {
            self.seal_tail();
        }
    }

    fn seal_tail(&mut self) {
        if self.tail.is_empty() {
            return;
        }
        let offset = self.payload.len() as u32;
        let mut prev_pre = self.tail[0].pre;
        let mut max_bound = 0u32;
        for (k, p) in self.tail.iter().enumerate() {
            if k > 0 {
                write_varint(&mut self.payload, u64::from(p.pre.wrapping_sub(prev_pre)));
                prev_pre = p.pre;
            }
            write_varint(&mut self.payload, u64::from(p.bound.wrapping_sub(p.pre)));
            max_bound = max_bound.max(p.bound);
        }
        self.headers.push(BlockHeader {
            min_pre: self.tail[0].pre,
            max_pre: prev_pre,
            max_bound,
            count: self.tail.len() as u32,
            offset,
        });
        self.sealed += self.tail.len();
        self.tail.clear();
    }

    /// Total number of instances (sealed + tail).
    pub fn entry_count(&self) -> usize {
        self.sealed + self.tail.len()
    }

    /// True when no instance was pushed.
    pub fn is_empty(&self) -> bool {
        self.entry_count() == 0
    }

    /// Size of the serialized representation ([`InstanceBlocks::to_bytes`]).
    pub fn byte_len(&self) -> usize {
        // The tail seals into at most one extra frame; size it exactly.
        let mut tail_payload = 0usize;
        let mut prev = self.tail.first().map(|p| p.pre).unwrap_or(0);
        for (k, p) in self.tail.iter().enumerate() {
            if k > 0 {
                tail_payload += varint_len(u64::from(p.pre.wrapping_sub(prev)));
                prev = p.pre;
            }
            tail_payload += varint_len(u64::from(p.bound.wrapping_sub(p.pre)));
        }
        let tail_header = if self.tail.is_empty() {
            0
        } else {
            HEADER_BYTES
        };
        4 + self.headers.len() * HEADER_BYTES + self.payload.len() + tail_header + tail_payload
    }

    /// Decodes every instance, sealed frames first, then the tail. Sealed
    /// frames record the query-time decode metrics.
    pub fn decode_all(&self) -> Vec<InstancePosting> {
        let mut out = Vec::with_capacity(self.entry_count());
        for (i, h) in self.headers.iter().enumerate() {
            Metric::PostingsBlocksDecoded.incr();
            let start = h.offset as usize;
            let end = self
                .headers
                .get(i + 1)
                .map(|h| h.offset as usize)
                .unwrap_or(self.payload.len());
            Metric::PostingsBytes.add(end.saturating_sub(start) as u64);
            let before = out.len();
            let r = decode_instance_frame(&self.payload, start, end, h, &mut out);
            debug_assert!(r.is_ok(), "instance frame {i} failed to decode: {r:?}");
            if r.is_err() {
                out.truncate(before);
            }
        }
        out.extend_from_slice(&self.tail);
        out
    }

    /// Serializes like [`BlockList::to_bytes`], sealing the tail into a
    /// final (possibly short) frame without mutating `self`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut full = self.clone();
        full.seal_tail();
        let mut out = Vec::with_capacity(full.byte_len());
        out.extend_from_slice(&(full.headers.len() as u32).to_le_bytes());
        for h in &full.headers {
            out.extend_from_slice(&h.min_pre.to_le_bytes());
            out.extend_from_slice(&h.max_pre.to_le_bytes());
            out.extend_from_slice(&h.max_bound.to_le_bytes());
            out.extend_from_slice(&h.count.to_le_bytes());
            out.extend_from_slice(&h.offset.to_le_bytes());
        }
        out.extend_from_slice(&full.payload);
        out
    }

    /// Deserializes [`InstanceBlocks::to_bytes`] output with the same
    /// structural header validation as [`BlockList::from_bytes`].
    pub fn from_bytes(data: &[u8]) -> Result<InstanceBlocks, PostingDecodeError> {
        // Headers share the BlockList layout; reuse its validation, then
        // reinterpret the payload as instance frames. Instance entries
        // carry 2 varints (pre delta, bound delta), so the frame byte
        // floor is lower than the posting one.
        let bl = BlockList::from_bytes_with_entry_floor(data, 2)?;
        Ok(InstanceBlocks {
            headers: bl.headers,
            payload: bl.payload,
            sealed: bl.entries,
            tail: Vec::new(),
        })
    }

    /// Removes every instance with `pre` in `[lo, hi]`, returning the
    /// number removed. Instance lists are per `(schema node, label)` and
    /// small, so this decodes and rebuilds rather than splicing frames.
    pub fn remove_range(&mut self, lo: u32, hi: u32) -> usize {
        if self
            .headers
            .last()
            .map(|h| h.max_pre)
            .max(self.tail.last().map(|p| p.pre))
            .is_none_or(|max| max < lo)
        {
            return 0;
        }
        let mut all = Vec::with_capacity(self.entry_count());
        for (i, h) in self.headers.iter().enumerate() {
            let start = h.offset as usize;
            let end = self
                .headers
                .get(i + 1)
                .map(|h| h.offset as usize)
                .unwrap_or(self.payload.len());
            let r = decode_instance_frame(&self.payload, start, end, h, &mut all);
            debug_assert!(r.is_ok(), "instance frame {i} failed to decode: {r:?}");
        }
        all.extend_from_slice(&self.tail);
        let before = all.len();
        all.retain(|p| p.pre < lo || p.pre > hi);
        let removed = before - all.len();
        if removed > 0 {
            *self = InstanceBlocks::from_instances(&all);
        }
        removed
    }

    /// Full decode round-trip check used by `approxql check`.
    pub fn check_integrity(&self) -> Result<(), PostingDecodeError> {
        let mut all = Vec::with_capacity(self.sealed);
        for (i, h) in self.headers.iter().enumerate() {
            let start = h.offset as usize;
            let end = self
                .headers
                .get(i + 1)
                .map(|h| h.offset as usize)
                .unwrap_or(self.payload.len());
            let before = all.len();
            decode_instance_frame(&self.payload, start, end, h, &mut all)?;
            let frame = &all[before..];
            let max_bound = frame.iter().map(|p| p.bound).max().unwrap_or(0);
            let sorted = frame.windows(2).all(|w| w[0].pre < w[1].pre);
            if !sorted
                || frame.first().map(|p| p.pre) != Some(h.min_pre)
                || frame.last().map(|p| p.pre) != Some(h.max_pre)
                || max_bound != h.max_bound
            {
                return Err(PostingDecodeError("frame contents contradict skip header"));
            }
        }
        Ok(())
    }
}

fn decode_instance_frame(
    payload: &[u8],
    start: usize,
    end: usize,
    h: &BlockHeader,
    out: &mut Vec<InstancePosting>,
) -> Result<(), PostingDecodeError> {
    let Some(frame) = payload.get(start..end) else {
        return Err(PostingDecodeError("frame offset outside payload"));
    };
    let mut pos = 0usize;
    let mut pre = h.min_pre;
    for k in 0..h.count {
        if k > 0 {
            pre = pre.wrapping_add(read_varint(frame, &mut pos)? as u32);
        }
        let bound = pre.wrapping_add(read_varint(frame, &mut pos)? as u32);
        out.push(InstancePosting { pre, bound });
    }
    if pos != frame.len() {
        return Err(PostingDecodeError("trailing bytes in frame"));
    }
    Ok(())
}

fn varint_len(v: u64) -> usize {
    (64 - v.max(1).leading_zeros() as usize).div_ceil(7)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn postings_roundtrip() {
        let ps = vec![
            Posting {
                pre: 1,
                bound: 9,
                pathcost: Cost::finite(3),
                inscost: Cost::finite(2),
            },
            Posting {
                pre: 10,
                bound: 10,
                pathcost: Cost::finite(0),
                inscost: Cost::INFINITY,
            },
        ];
        assert_eq!(decode_postings(&encode_postings(&ps)).unwrap(), ps);
    }

    #[test]
    fn instances_roundtrip() {
        let ps = vec![
            InstancePosting { pre: 1, bound: 2 },
            InstancePosting { pre: 3, bound: 3 },
        ];
        assert_eq!(decode_instances(&encode_instances(&ps)).unwrap(), ps);
    }

    #[test]
    fn empty_roundtrips() {
        assert_eq!(decode_postings(&[]).unwrap(), vec![]);
        assert_eq!(decode_instances(&[]).unwrap(), vec![]);
    }

    #[test]
    fn bad_lengths_rejected() {
        assert!(decode_postings(&[0u8; 23]).is_err());
        assert!(decode_instances(&[0u8; 7]).is_err());
    }

    fn sample_postings(n: u32) -> Vec<Posting> {
        (0..n)
            .map(|i| Posting {
                pre: i * 3 + 1,
                bound: i * 3 + 2 + (i % 5),
                pathcost: Cost::finite(u64::from(i % 7)),
                inscost: if i % 11 == 0 {
                    Cost::INFINITY
                } else {
                    Cost::finite(1)
                },
            })
            .collect()
    }

    #[test]
    fn block_list_roundtrips_across_frame_boundaries() {
        for n in [0u32, 1, 127, 128, 129, 300] {
            let ps = sample_postings(n);
            let bl = BlockList::from_postings(&ps);
            assert_eq!(bl.entry_count(), ps.len());
            assert_eq!(bl.decode_all(), ps, "n = {n}");
            let loaded = BlockList::from_bytes(&bl.to_bytes()).unwrap();
            assert_eq!(loaded, bl, "n = {n}");
            loaded.check_integrity().unwrap();
        }
    }

    #[test]
    fn block_list_is_smaller_than_flat_encoding() {
        let ps = sample_postings(1000);
        let bl = BlockList::from_postings(&ps);
        let flat = encode_postings(&ps).len();
        assert!(
            bl.byte_len() * 2 < flat,
            "compressed {} vs flat {flat}",
            bl.byte_len()
        );
    }

    #[test]
    fn block_headers_describe_their_frames() {
        let ps = sample_postings(300);
        let bl = BlockList::from_postings(&ps);
        assert_eq!(bl.headers().len(), 3);
        let mut total = 0usize;
        for (i, h) in bl.headers().iter().enumerate() {
            let frame = bl.decode_block(i);
            assert_eq!(frame.len(), h.count as usize);
            assert_eq!(frame.first().unwrap().pre, h.min_pre);
            assert_eq!(frame.last().unwrap().pre, h.max_pre);
            assert_eq!(frame.iter().map(|p| p.bound).max().unwrap(), h.max_bound);
            total += frame.len();
        }
        assert_eq!(total, ps.len());
    }

    #[test]
    fn block_cursor_seeks_like_a_linear_scan() {
        let ps = sample_postings(300);
        let bl = BlockList::from_postings(&ps);
        let mut cur = BlockCursor::new(&bl);
        for target in [0u32, 5, 130, 131, 500, 899, 900, 1200] {
            let expect = ps.iter().find(|p| p.pre >= target).copied();
            assert_eq!(cur.seek(target), expect, "target {target}");
        }
        assert_eq!(cur.seek(u32::MAX), None);
    }

    #[test]
    fn block_cursor_iterates_everything() {
        let ps = sample_postings(130);
        let bl = BlockList::from_postings(&ps);
        let got: Vec<_> = BlockCursor::new(&bl).collect();
        assert_eq!(got, ps);
    }

    #[test]
    fn corrupt_block_bytes_are_rejected() {
        let bl = BlockList::from_postings(&sample_postings(200));
        let bytes = bl.to_bytes();
        // Truncations of the header region fail structurally.
        assert!(BlockList::from_bytes(&bytes[..3]).is_err());
        assert!(BlockList::from_bytes(&bytes[..10]).is_err());
        // A header monotonicity violation: swap the two frame headers.
        let mut swapped = bytes.clone();
        let (a, b) = (4, 4 + HEADER_BYTES);
        for k in 0..HEADER_BYTES {
            swapped.swap(a + k, b + k);
        }
        assert!(BlockList::from_bytes(&swapped).is_err());
        // A header that contradicts the payload passes the structural
        // check but fails the decode round-trip: shrink the last frame's
        // entry count so decoding leaves trailing bytes.
        let mut garbled = bytes.clone();
        let count_at = 4 + HEADER_BYTES + 12;
        garbled[count_at] -= 1;
        let loaded = BlockList::from_bytes(&garbled).unwrap();
        assert!(loaded.check_integrity().is_err());
    }

    #[test]
    fn instance_blocks_roundtrip_with_tail() {
        for n in [0u32, 1, 127, 128, 200, 400] {
            let ps: Vec<InstancePosting> = (0..n)
                .map(|i| InstancePosting {
                    pre: i * 2 + 1,
                    bound: i * 2 + 1 + (i % 3),
                })
                .collect();
            let mut ib = InstanceBlocks::default();
            for &p in &ps {
                ib.push(p);
            }
            assert_eq!(ib.entry_count(), ps.len());
            assert_eq!(ib.decode_all(), ps, "n = {n}");
            assert_eq!(ib.byte_len(), ib.to_bytes().len(), "n = {n}");
            let loaded = InstanceBlocks::from_bytes(&ib.to_bytes()).unwrap();
            assert_eq!(loaded.decode_all(), ps, "n = {n}");
            loaded.check_integrity().unwrap();
        }
    }

    #[test]
    fn append_postings_matches_batch_encoding() {
        for base in [0u32, 1, 127, 128, 129, 300] {
            for added in [1u32, 5, 127, 128, 200] {
                let mut ps = sample_postings(base);
                let start = ps.last().map(|p| p.pre + 1).unwrap_or(0);
                let new: Vec<Posting> = (0..added)
                    .map(|i| Posting {
                        pre: start + i * 2,
                        bound: start + i * 2 + 1,
                        pathcost: Cost::finite(u64::from(i)),
                        inscost: Cost::finite(1),
                    })
                    .collect();
                let mut bl = BlockList::from_postings(&ps);
                bl.append_postings(&new);
                ps.extend_from_slice(&new);
                assert_eq!(bl, BlockList::from_postings(&ps), "base {base} + {added}");
                bl.check_integrity().unwrap();
            }
        }
    }

    #[test]
    fn remove_range_matches_filtered_batch_encoding() {
        let ps = sample_postings(300);
        for (lo, hi) in [(0u32, 0u32), (1, 400), (390, 600), (0, 10_000), (880, 905)] {
            let mut bl = BlockList::from_postings(&ps);
            let removed = bl.remove_range(lo, hi);
            let kept: Vec<Posting> = ps
                .iter()
                .filter(|p| p.pre < lo || p.pre > hi)
                .copied()
                .collect();
            assert_eq!(removed, ps.len() - kept.len(), "range {lo}..={hi}");
            assert_eq!(bl, BlockList::from_postings(&kept), "range {lo}..={hi}");
            bl.check_integrity().unwrap();
        }
        // Removing everything leaves the canonical empty list.
        let mut bl = BlockList::from_postings(&ps);
        bl.remove_range(0, u32::MAX);
        assert!(bl.is_empty());
        assert_eq!(bl, BlockList::default());
    }

    #[test]
    fn instance_remove_range_filters_sealed_and_tail() {
        let ps: Vec<InstancePosting> = (0..200u32)
            .map(|i| InstancePosting {
                pre: i * 2 + 1,
                bound: i * 2 + 1,
            })
            .collect();
        let mut ib = InstanceBlocks::from_instances(&ps);
        let removed = ib.remove_range(100, 300);
        let kept: Vec<InstancePosting> = ps
            .iter()
            .filter(|p| p.pre < 100 || p.pre > 300)
            .copied()
            .collect();
        assert_eq!(removed, ps.len() - kept.len());
        assert_eq!(ib.decode_all(), kept);
        ib.check_integrity().unwrap();
        assert_eq!(ib.remove_range(10_000, 20_000), 0);
    }

    #[test]
    fn varint_len_matches_encoder() {
        for v in [0u64, 1, 127, 128, 16_383, 16_384, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v), "v = {v}");
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }
}
