//! Byte encodings of posting lists (for the storage layer).

use crate::{InstancePosting, Posting};
use approxql_metrics::Metric;
use approxql_tree::Cost;
use std::fmt;

/// Decode errors for serialized postings.
#[derive(Debug, PartialEq, Eq)]
pub struct PostingDecodeError(pub &'static str);

impl fmt::Display for PostingDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "posting decode error: {}", self.0)
    }
}

impl std::error::Error for PostingDecodeError {}

/// Encodes a posting list: each entry as `pre, bound, pathcost, inscost`
/// (little endian, 24 bytes per entry).
pub fn encode_postings(postings: &[Posting]) -> Vec<u8> {
    let mut out = Vec::with_capacity(postings.len() * 24);
    for p in postings {
        out.extend_from_slice(&p.pre.to_le_bytes());
        out.extend_from_slice(&p.bound.to_le_bytes());
        out.extend_from_slice(&p.pathcost.raw().to_le_bytes());
        out.extend_from_slice(&p.inscost.raw().to_le_bytes());
    }
    out
}

/// Decodes [`encode_postings`] output.
pub fn decode_postings(data: &[u8]) -> Result<Vec<Posting>, PostingDecodeError> {
    if !data.len().is_multiple_of(24) {
        return Err(PostingDecodeError("length is not a multiple of 24"));
    }
    Metric::IndexBytesDecoded.add(data.len() as u64);
    let mut out = Vec::with_capacity(data.len() / 24);
    for chunk in data.chunks_exact(24) {
        out.push(Posting {
            pre: u32::from_le_bytes(chunk[0..4].try_into().unwrap()),
            bound: u32::from_le_bytes(chunk[4..8].try_into().unwrap()),
            pathcost: Cost::from_raw(u64::from_le_bytes(chunk[8..16].try_into().unwrap())),
            inscost: Cost::from_raw(u64::from_le_bytes(chunk[16..24].try_into().unwrap())),
        });
    }
    Ok(out)
}

/// Encodes instance postings (8 bytes per entry).
pub fn encode_instances(postings: &[InstancePosting]) -> Vec<u8> {
    let mut out = Vec::with_capacity(postings.len() * 8);
    for p in postings {
        out.extend_from_slice(&p.pre.to_le_bytes());
        out.extend_from_slice(&p.bound.to_le_bytes());
    }
    out
}

/// Decodes [`encode_instances`] output.
pub fn decode_instances(data: &[u8]) -> Result<Vec<InstancePosting>, PostingDecodeError> {
    if !data.len().is_multiple_of(8) {
        return Err(PostingDecodeError("length is not a multiple of 8"));
    }
    Metric::IndexBytesDecoded.add(data.len() as u64);
    let mut out = Vec::with_capacity(data.len() / 8);
    for chunk in data.chunks_exact(8) {
        out.push(InstancePosting {
            pre: u32::from_le_bytes(chunk[0..4].try_into().unwrap()),
            bound: u32::from_le_bytes(chunk[4..8].try_into().unwrap()),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn postings_roundtrip() {
        let ps = vec![
            Posting {
                pre: 1,
                bound: 9,
                pathcost: Cost::finite(3),
                inscost: Cost::finite(2),
            },
            Posting {
                pre: 10,
                bound: 10,
                pathcost: Cost::finite(0),
                inscost: Cost::INFINITY,
            },
        ];
        assert_eq!(decode_postings(&encode_postings(&ps)).unwrap(), ps);
    }

    #[test]
    fn instances_roundtrip() {
        let ps = vec![
            InstancePosting { pre: 1, bound: 2 },
            InstancePosting { pre: 3, bound: 3 },
        ];
        assert_eq!(decode_instances(&encode_instances(&ps)).unwrap(), ps);
    }

    #[test]
    fn empty_roundtrips() {
        assert_eq!(decode_postings(&[]).unwrap(), vec![]);
        assert_eq!(decode_instances(&[]).unwrap(), vec![]);
    }

    #[test]
    fn bad_lengths_rejected() {
        assert!(decode_postings(&[0u8; 23]).is_err());
        assert!(decode_instances(&[0u8; 7]).is_err());
    }
}
