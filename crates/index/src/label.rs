//! The label indexes `I_struct` and `I_text` (Section 6.2, Figure 3).

use crate::codec::BlockList;
use crate::Posting;
use approxql_metrics::{time, Metric, TimerMetric};
use approxql_tree::{DataTree, LabelId, NodeType};
use std::collections::HashMap;

/// Maps each `(type, label)` to the block-compressed, preorder-sorted
/// posting of all nodes carrying that label (DESIGN.md §14). One
/// `LabelIndex` instance serves as both `I_struct` and `I_text` (the node
/// type is part of the key).
#[derive(Debug, Clone, Default)]
pub struct LabelIndex {
    map: HashMap<(NodeType, LabelId), BlockList>,
    /// Shared zero-posting list for misses ([`LabelIndex::fetch_blocks`]
    /// returns a reference).
    empty: BlockList,
}

impl LabelIndex {
    /// Builds the index with one pass over the tree. Postings come out
    /// preorder-sorted because nodes are visited in preorder; each label's
    /// list is compressed once collection is complete.
    pub fn build(tree: &DataTree) -> LabelIndex {
        let _timer = time(TimerMetric::IndexBuild);
        let mut flat: HashMap<(NodeType, LabelId), Vec<Posting>> = HashMap::new();
        for n in tree.live_nodes() {
            flat.entry((tree.node_type(n), tree.label_id(n)))
                .or_default()
                .push(Posting::from_node(tree, n));
        }
        let map = flat
            .into_iter()
            .map(|(k, v)| (k, BlockList::from_postings(&v)))
            .collect();
        LabelIndex {
            map,
            empty: BlockList::default(),
        }
    }

    /// The posting for `(ty, label)`, fully decoded; empty if the label
    /// never occurs with that type. This is the `fetch` primitive of
    /// Section 6.4 for consumers that need a materialized list.
    pub fn fetch(&self, ty: NodeType, label: LabelId) -> Vec<Posting> {
        let blocks = self.fetch_blocks(ty, label);
        blocks.decode_all()
    }

    /// The compressed posting for `(ty, label)` without decoding it —
    /// the skip-based list operators consume the frames lazily. Records
    /// the same index counters as [`LabelIndex::fetch`].
    pub fn fetch_blocks(&self, ty: NodeType, label: LabelId) -> &BlockList {
        let blocks = self.map.get(&(ty, label)).unwrap_or(&self.empty);
        Metric::IndexLabelFetches.incr();
        Metric::IndexPostingsFetched.add(blocks.entry_count() as u64);
        blocks
    }

    /// Number of `(type, label)` postings.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// `true` if the index holds no postings.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Total number of posting entries across all labels.
    pub fn entry_count(&self) -> usize {
        self.map.values().map(BlockList::entry_count).sum()
    }

    /// Total serialized size of all compressed posting lists, in bytes.
    pub fn byte_len(&self) -> usize {
        self.map.values().map(BlockList::byte_len).sum()
    }

    /// Iterates over all `((type, label), blocks)` pairs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = ((NodeType, LabelId), &BlockList)> {
        self.map.iter().map(|(&k, v)| (k, v))
    }

    /// Inserts a posting list directly, compressing it (used by the schema
    /// builder and tests; input must be strictly pre-sorted).
    pub fn insert_posting(&mut self, ty: NodeType, label: LabelId, posting: Vec<Posting>) {
        self.map
            .insert((ty, label), BlockList::from_postings(&posting));
    }

    /// Inserts an already-compressed posting list (used when loading from
    /// storage).
    pub fn insert_blocks(&mut self, ty: NodeType, label: LabelId, blocks: BlockList) {
        self.map.insert((ty, label), blocks);
    }

    /// The compressed posting for `(ty, label)` without any metric
    /// side-effects, for the persistence write path. `None` if absent.
    pub fn blocks(&self, ty: NodeType, label: LabelId) -> Option<&BlockList> {
        self.map.get(&(ty, label))
    }

    /// Appends postings (all with `pre` past the current maximum) to the
    /// list of `(ty, label)`, creating it if absent. Only the partial tail
    /// frame is re-encoded (DESIGN.md §15).
    pub fn append_postings(&mut self, ty: NodeType, label: LabelId, new: &[Posting]) {
        if new.is_empty() {
            return;
        }
        self.map
            .entry((ty, label))
            .or_default()
            .append_postings(new);
    }

    /// Removes a whole posting. Returns `true` if it existed.
    pub fn remove_entry(&mut self, ty: NodeType, label: LabelId) -> bool {
        self.map.remove(&(ty, label)).is_some()
    }

    /// Removes every posting of `(ty, label)` with `lo <= pre <= hi`,
    /// dropping the entry entirely when it empties. Returns the number of
    /// postings removed.
    pub fn remove_range(&mut self, ty: NodeType, label: LabelId, lo: u32, hi: u32) -> usize {
        let Some(blocks) = self.map.get_mut(&(ty, label)) else {
            return 0;
        };
        let removed = blocks.remove_range(lo, hi);
        if blocks.entry_count() == 0 {
            self.map.remove(&(ty, label));
        }
        removed
    }

    /// All labels of a given type that occur in the index, with their
    /// selectivity (posting length). Used by the query generator.
    pub fn labels_of_type(&self, ty: NodeType) -> Vec<(LabelId, usize)> {
        let mut v: Vec<(LabelId, usize)> = self
            .map
            .iter()
            .filter(|((t, _), _)| *t == ty)
            .map(|((_, l), p)| (*l, p.entry_count()))
            .collect();
        v.sort_by_key(|&(l, _)| l);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxql_cost::CostModel;
    use approxql_tree::{Cost, DataTreeBuilder};

    fn tree() -> DataTree {
        let mut b = DataTreeBuilder::new();
        b.begin_struct("cd");
        b.begin_struct("title");
        b.add_text("piano concerto");
        b.end();
        b.end();
        b.begin_struct("cd");
        b.begin_struct("title");
        b.add_text("cello concerto");
        b.end();
        b.end();
        b.build(&CostModel::new())
    }

    #[test]
    fn postings_are_preorder_sorted_and_complete() {
        let t = tree();
        let idx = LabelIndex::build(&t);
        let cd = t.lookup_label("cd").unwrap();
        let posting = idx.fetch(NodeType::Struct, cd);
        assert_eq!(posting.len(), 2);
        assert!(posting[0].pre < posting[1].pre);
        assert_eq!(idx.entry_count(), t.len());
    }

    #[test]
    fn text_and_struct_namespaces_are_separate() {
        let mut b = DataTreeBuilder::new();
        b.begin_struct("concerto"); // element named like a word
        b.add_word("concerto");
        b.end();
        let t = b.build(&CostModel::new());
        let idx = LabelIndex::build(&t);
        let l = t.lookup_label("concerto").unwrap();
        assert_eq!(idx.fetch(NodeType::Struct, l).len(), 1);
        assert_eq!(idx.fetch(NodeType::Text, l).len(), 1);
        assert_ne!(
            idx.fetch(NodeType::Struct, l)[0].pre,
            idx.fetch(NodeType::Text, l)[0].pre
        );
    }

    #[test]
    fn fetch_unknown_label_is_empty() {
        let t = tree();
        let idx = LabelIndex::build(&t);
        // "piano" exists only as a text label.
        let piano = t.lookup_label("piano").unwrap();
        assert!(idx.fetch(NodeType::Struct, piano).is_empty());
        assert_eq!(idx.fetch(NodeType::Text, piano).len(), 1);
    }

    #[test]
    fn posting_numbers_match_tree_encoding() {
        let t = tree();
        let idx = LabelIndex::build(&t);
        let concerto = t.lookup_label("concerto").unwrap();
        for p in idx.fetch(NodeType::Text, concerto) {
            let n = approxql_tree::NodeId(p.pre);
            assert_eq!(p.bound, t.bound(n));
            assert_eq!(p.pathcost, t.pathcost(n));
            assert_eq!(p.inscost, t.inscost(n));
            // default model: every ancestor costs 1; "concerto" words sit
            // at depth 3.
            assert_eq!(p.pathcost, Cost::finite(3));
        }
    }

    #[test]
    fn labels_of_type_lists_selectivities() {
        let t = tree();
        let idx = LabelIndex::build(&t);
        let structs = idx.labels_of_type(NodeType::Struct);
        // root label, cd, title
        assert_eq!(structs.len(), 3);
        let cd = t.lookup_label("cd").unwrap();
        assert!(structs.contains(&(cd, 2)));
        let texts = idx.labels_of_type(NodeType::Text);
        // piano, concerto, cello
        assert_eq!(texts.len(), 3);
    }
}
