#![forbid(unsafe_code)]
//! Index structures of the approXQL evaluation algorithms.
//!
//! * [`LabelIndex`] — the indexes `I_struct` and `I_text` of Section 6.2:
//!   they map each label to the posting of all data (or schema) nodes that
//!   carry the label. A [`Posting`] carries the four encoding numbers
//!   (`pre`, `bound`, `pathcost`, `inscost`) so list operations never touch
//!   the tree itself.
//! * [`SecondaryIndex`] — the path-dependent postings of Section 7.3
//!   (`I_sec`): for each *schema* node (and, for merged text classes, each
//!   word) the sorted list of its data-tree instances as preorder–bound
//!   pairs.
//! * [`persist`] — serialization of both into an
//!   [`approxql_storage::Store`], mirroring the paper's use of Berkeley DB
//!   as the index store.

pub mod codec;
mod label;
pub mod persist;
mod secondary;

pub use label::LabelIndex;
pub use secondary::{InstancePosting, SecondaryIndex};

use approxql_tree::{Cost, DataTree, NodeId};

/// One posting entry: the encoded numbers of a single node.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Posting {
    /// Preorder number of the node.
    pub pre: u32,
    /// Largest preorder number in the node's subtree.
    pub bound: u32,
    /// Sum of the insert costs of all proper ancestors.
    pub pathcost: Cost,
    /// Insert cost of the node itself.
    pub inscost: Cost,
}

impl Posting {
    /// Reads the posting numbers of node `n` from `tree`.
    pub fn from_node(tree: &DataTree, n: NodeId) -> Posting {
        Posting {
            pre: n.0,
            bound: tree.bound(n),
            pathcost: tree.pathcost(n),
            inscost: tree.inscost(n),
        }
    }
}
