//! `approxql` — the approXQL command line.
//!
//! ```text
//! approxql build  <out.axql> <doc.xml>... [--costs FILE]
//! approxql query  <db.axql> <QUERY> [-n N] [--direct|--schema] [--costs FILE] [--xml] [--stats]
//! approxql stats  <db.axql>
//! approxql explain <db.axql> <QUERY> [--costs FILE] [-k K]
//! approxql gen    <out-dir> [--elements N] [--names N] [--terms N] [--words N] [--seed S] [--docs N]
//! ```

mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(commands::CliError::Usage(msg)) => {
            eprintln!("error: {msg}\n");
            eprintln!("{}", commands::USAGE);
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
