#![forbid(unsafe_code)]
//! `approxql` — the approXQL command line.
//!
//! ```text
//! approxql build  <out.axql> <doc.xml>... [--costs FILE]
//! approxql insert <db.axql> <doc.xml>...
//! approxql delete <db.axql> <root-pre>
//! approxql query  <db.axql> <QUERY> [-n N] [--direct|--schema] [--costs FILE] [--xml] [--stats]
//!                 [--surface classic|json|xpath] [--explain [--format json]]
//! approxql stats  <db.axql>
//! approxql explain <db.axql> <QUERY> [--costs FILE] [-k K] [--surface S]
//! approxql translate <QUERY> [--surface S] [--to classic|json|xpath] [--out FILE]
//! approxql gen    <out-dir> [--elements N] [--names N] [--terms N] [--words N] [--seed S] [--docs N]
//! approxql check  <db.axql>
//! approxql eval   <db.axql> <dataset.json> [--json] [--gen-truth] [-k K] [--threads N]
//! ```
//!
//! Queries are accepted in three surfaces — classic approXQL
//! (`cd[title["piano"]]`), the versioned JSON query-IR
//! (`{"v":1,"query":…}`), and XPath-lite (`/cd//title["piano"]`) — all
//! compiling to the same physical plan; the surface is auto-detected
//! unless pinned with `--surface`.
//!
//! Exit codes: 0 success, 1 generic failure, 2 usage error, 3 database
//! file unreadable / corrupt / failed verification.

mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match commands::run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(commands::CliError::Usage(msg)) => {
            eprintln!("error: {msg}\n");
            eprintln!("{}", commands::USAGE);
            ExitCode::from(2)
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
