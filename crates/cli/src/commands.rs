//! Command implementations for the `approxql` binary.

use approxql_core::schema_eval::SchemaEvalConfig;
use approxql_core::{Database, DatabaseError, DbFile, EvalOptions, QueryHit, QueryInput, Surface};
use approxql_cost::{parse_cost_file, CostModel};
use approxql_eval::dataset::{Dataset, DatasetError, KSpec};
use approxql_eval::{EvalError, RunOptions};
use approxql_gen::{DataGenConfig, DataGenerator};
use approxql_xml::Document;
use std::fmt;
use std::path::PathBuf;

/// Top-level usage text.
pub const USAGE: &str = "\
usage:
  approxql build   <out.axql> <doc.xml>... [--costs FILE]
      parse XML documents into a persistent approXQL database

  approxql query   <db.axql> <QUERY> [-n N] [--direct|--schema]
                   [--costs FILE] [--threads N] [--xml] [--stats] [--stats-json]
                   [--explain] [--format text|json] [--repeat N] [--surface S]
      run an approximate query; results are ranked by transformation cost
      (QUERY may be written in any surface — classic approXQL, the
       versioned JSON query-IR `{\"v\":1,…}`, or XPath-lite `/a//b[c]`;
       auto-detected, or pinned with --surface classic|json|xpath;
       --stats prints per-layer operation counters to stderr,
       --stats-json the same as one JSON object; --threads defaults to the
       available parallelism and 1 reproduces the sequential path exactly;
       --explain prints the compiled physical plan with per-operator entry
       counts instead of results, and --format json renders it as a JSON
       plan DAG with the plan's shape fingerprint; --repeat re-runs the
       query N times in one process to exercise the compiled-plan cache)

  approxql translate <QUERY> [--surface S] [--to classic|json|xpath]
                   [--out FILE]
      parse QUERY (any surface, auto-detected or pinned with --surface)
      and print its canonical form in the --to surface (default: json,
      the versioned query-IR). Equivalent queries translate to identical
      canonical forms regardless of the input surface; malformed queries
      exit 2 with a caret-annotated syntax error

  approxql insert  <db.axql> <doc.xml>...
      append documents to an existing database, incrementally updating
      the label indexes, secondary index, and schema; each document is
      sealed with its own atomic commit, so a crash never loses more
      than the in-flight document

  approxql delete  <db.axql> <root-pre>
      tombstone the document whose root is node ROOT-PRE (document roots
      are listed by `stats`; result nodes by `query`); one atomic commit

  approxql stats   <db.axql>
      print collection, index, and schema statistics

  approxql explain <db.axql> <QUERY> [--costs FILE] [-k K]
      show the expanded representation and the best K second-level queries

  approxql gen     <out-dir> [--elements N] [--names N] [--terms N]
                   [--words N] [--seed S] [--docs N]
      write a synthetic XML collection (Section 8.1 workload)

  approxql check   <db.axql>
      verify on-disk integrity: header slots, page checksums, B+-tree
      invariants, and out-of-line value runs (exit 3 on corruption)

  approxql eval    <db.axql> <dataset.json> [--json] [--gen-truth]
                   [-k K] [--threads N] [--out FILE] [--no-timing]
                   [--stats] [--stats-json]
      score retrieval quality against a dataset's ground truth:
      recall@k, precision@k, MRR, nDCG, latency p50/p95 per evaluator
      (-k overrides every query's truncation depth, a number or
       `unlimited`; --gen-truth instead fills the dataset's expected
       results from the reference evaluator — direct, untruncated — and
       prints the updated dataset; --out writes the report or dataset to
       a file; --no-timing omits latency output, making reports
       byte-identical across machines and thread counts; malformed
       datasets exit 2, evaluation failures exit 1)";

/// Errors surfaced to `main`.
#[derive(Debug)]
pub enum CliError {
    /// Command-line usage problem (prints usage).
    Usage(String),
    /// I/O failure.
    Io(std::io::Error),
    /// Library failure.
    Db(DatabaseError),
    /// Cost-file parse failure.
    Costs(approxql_cost::CostFileError),
    /// Malformed evaluation dataset (a usage-class error: the input file
    /// is wrong, not the system under test).
    Dataset(DatasetError),
    /// Data-level operation failure (e.g. deleting a node that is not a
    /// live document root).
    Op(String),
}

impl CliError {
    /// Process exit code for this error: 2 for usage problems, 3 when the
    /// database file is unreadable, corrupt, or fails verification, 1 for
    /// everything else.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Usage(_) | CliError::Dataset(_) => 2,
            CliError::Db(
                DatabaseError::Storage(_)
                | DatabaseError::Persist(_)
                | DatabaseError::TreeDecode(_)
                | DatabaseError::Schema(_),
            ) => 3,
            _ => 1,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m}"),
            CliError::Io(e) => write!(f, "{e}"),
            CliError::Db(e) => write!(f, "{e}"),
            CliError::Costs(e) => write!(f, "{e}"),
            CliError::Dataset(e) => write!(f, "{e}"),
            CliError::Op(m) => write!(f, "{m}"),
        }
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Io(e)
    }
}

impl From<DatabaseError> for CliError {
    fn from(e: DatabaseError) -> Self {
        CliError::Db(e)
    }
}

impl From<EvalError> for CliError {
    fn from(e: EvalError) -> Self {
        match e {
            EvalError::Dataset(d) => CliError::Dataset(d),
            EvalError::Db(d) => CliError::Db(d),
        }
    }
}

fn usage(msg: impl Into<String>) -> CliError {
    CliError::Usage(msg.into())
}

/// Parsed flags: positional arguments plus `--key value` / `-k value`
/// options and bare `--switches`.
struct Flags {
    positional: Vec<String>,
    options: Vec<(String, String)>,
    switches: Vec<String>,
}

const VALUE_OPTIONS: &[&str] = &[
    "-n",
    "-k",
    "--costs",
    "--threads",
    "--elements",
    "--names",
    "--terms",
    "--words",
    "--seed",
    "--docs",
    "--repeat",
    "--out",
    "--surface",
    "--format",
    "--to",
];

fn parse_flags(args: &[String]) -> Result<Flags, CliError> {
    let mut flags = Flags {
        positional: Vec::new(),
        options: Vec::new(),
        switches: Vec::new(),
    };
    let mut it = args.iter().peekable();
    while let Some(a) = it.next() {
        if VALUE_OPTIONS.contains(&a.as_str()) {
            let v = it
                .next()
                .ok_or_else(|| usage(format!("option {a} needs a value")))?;
            flags.options.push((a.clone(), v.clone()));
        } else if a.starts_with('-') && a.len() > 1 {
            flags.switches.push(a.clone());
        } else {
            flags.positional.push(a.clone());
        }
    }
    Ok(flags)
}

impl Flags {
    fn option(&self, name: &str) -> Option<&str> {
        self.options
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    fn option_parsed<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, CliError> {
        match self.option(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| usage(format!("invalid value `{v}` for {name}"))),
        }
    }

    fn switch(&self, name: &str) -> bool {
        self.switches.iter().any(|s| s == name)
    }
}

/// Parses `--surface` (`None` = auto-detect from the query text).
fn surface_flag(flags: &Flags) -> Result<Option<Surface>, CliError> {
    match flags.option("--surface") {
        None => Ok(None),
        Some(name) => Surface::from_name(name).map(Some).ok_or_else(|| {
            usage(format!(
                "invalid value `{name}` for --surface (classic, json, or xpath)"
            ))
        }),
    }
}

fn load_costs(flags: &Flags) -> Result<CostModel, CliError> {
    match flags.option("--costs") {
        None => Ok(CostModel::new()),
        Some(path) => {
            let text = std::fs::read_to_string(path)?;
            parse_cost_file(&text).map_err(CliError::Costs)
        }
    }
}

/// Entry point: dispatches on the subcommand.
pub fn run(args: &[String]) -> Result<(), CliError> {
    let (cmd, rest) = args
        .split_first()
        .ok_or_else(|| usage("missing subcommand"))?;
    let flags = parse_flags(rest)?;
    match cmd.as_str() {
        "build" => cmd_build(&flags),
        "insert" => cmd_insert(&flags),
        "delete" => cmd_delete(&flags),
        "query" => cmd_query(&flags),
        "stats" => cmd_stats(&flags),
        "explain" => cmd_explain(&flags),
        "translate" => cmd_translate(&flags),
        "gen" => cmd_gen(&flags),
        "check" => cmd_check(&flags),
        "eval" => cmd_eval(&flags),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(usage(format!("unknown subcommand `{other}`"))),
    }
}

fn cmd_build(flags: &Flags) -> Result<(), CliError> {
    let [out, docs @ ..] = flags.positional.as_slice() else {
        return Err(usage(
            "build needs an output path and at least one document",
        ));
    };
    if docs.is_empty() {
        return Err(usage("build needs at least one XML document"));
    }
    let costs = load_costs(flags)?;
    let mut parsed: Vec<Document> = Vec::with_capacity(docs.len());
    for path in docs {
        let text = std::fs::read_to_string(path)?;
        parsed.push(approxql_xml::parse_document(&text).map_err(DatabaseError::Xml)?);
    }
    let db = Database::from_documents(&parsed, costs);
    db.save(out)?;
    let stats = db.tree().stats();
    println!(
        "built {out}: {} elements, {} words, {} distinct labels",
        stats.element_count, stats.word_count, stats.distinct_labels
    );
    Ok(())
}

fn cmd_insert(flags: &Flags) -> Result<(), CliError> {
    let [db_path, docs @ ..] = flags.positional.as_slice() else {
        return Err(usage(
            "insert needs a database path and at least one document",
        ));
    };
    if docs.is_empty() {
        return Err(usage("insert needs at least one XML document"));
    }
    let mut parsed: Vec<Document> = Vec::with_capacity(docs.len());
    for path in docs {
        let text = std::fs::read_to_string(path)?;
        parsed.push(approxql_xml::parse_document(&text).map_err(DatabaseError::Xml)?);
    }
    let mut file = DbFile::open(db_path)?;
    let spans = file.insert_documents(&parsed)?;
    let nodes: u32 = spans.iter().map(|s| s.bound - s.start + 1).sum();
    println!(
        "inserted {} document(s) into {db_path}: {nodes} nodes, roots {}",
        spans.len(),
        spans
            .iter()
            .map(|s| s.start.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    );
    Ok(())
}

fn cmd_delete(flags: &Flags) -> Result<(), CliError> {
    let [db_path, root] = flags.positional.as_slice() else {
        return Err(usage(
            "delete needs a database path and a document root node",
        ));
    };
    let pre: u32 = root
        .parse()
        .map_err(|_| usage(format!("invalid node number `{root}`")))?;
    let mut file = DbFile::open(db_path)?;
    let span = file
        .delete_document(approxql_tree::NodeId(pre))?
        .ok_or_else(|| CliError::Op(format!("node {pre} is not a live document root")))?;
    println!(
        "deleted document at node {pre} from {db_path}: {} nodes tombstoned",
        span.bound - span.start + 1
    );
    Ok(())
}

fn print_hit(db: &Database, rank: usize, hit: QueryHit, as_xml: bool) -> Result<(), CliError> {
    if as_xml {
        let el = db.result_element(hit)?;
        println!(
            "<!-- rank {rank}, cost {} -->\n{}",
            hit.cost,
            Document { root: el }.to_xml_string()
        );
    } else {
        let el = db.result_element(hit)?;
        println!(
            "#{rank}\tcost={}\tnode={}\t<{}>",
            hit.cost, hit.root, el.name
        );
    }
    Ok(())
}

fn cmd_query(flags: &Flags) -> Result<(), CliError> {
    let [db_path, query] = flags.positional.as_slice() else {
        return Err(usage("query needs a database path and a query string"));
    };
    let n: usize = flags.option_parsed("-n")?.unwrap_or(10);
    let as_xml = flags.switch("--xml");
    let show_stats = flags.switch("--stats");
    let stats_json = flags.switch("--stats-json");
    if flags.switch("--direct") && flags.switch("--schema") {
        return Err(usage("--direct and --schema are mutually exclusive"));
    }
    let use_direct = flags.switch("--direct");
    let explain = flags.switch("--explain");
    let explain_json = match flags.option("--format") {
        None | Some("text") => false,
        Some("json") => {
            if !explain {
                return Err(usage("--format is only valid with --explain"));
            }
            true
        }
        Some(other) => {
            return Err(usage(format!(
                "invalid value `{other}` for --format (text or json)"
            )))
        }
    };
    let surface = surface_flag(flags)?;
    let repeat: usize = flags.option_parsed("--repeat")?.unwrap_or(1);
    if repeat == 0 {
        return Err(usage("--repeat must be at least 1"));
    }
    let threads: usize = flags
        .option_parsed("--threads")?
        .unwrap_or_else(approxql_exec::default_threads);
    if threads == 0 {
        return Err(usage("--threads must be at least 1"));
    }
    let opts = EvalOptions {
        threads,
        ..Default::default()
    };

    let mut db = Database::open(db_path)?;
    if let Some(costs_path) = flags.option("--costs") {
        // Re-derive the database view under the query's own cost table.
        let text = std::fs::read_to_string(costs_path)?;
        let costs = parse_cost_file(&text).map_err(CliError::Costs)?;
        db = Database::from_tree(db.tree().clone(), costs);
    }

    // The registry is process-wide; diff against a baseline so the report
    // covers exactly this query's evaluation.
    let before = approxql_metrics::snapshot();
    let input = QueryInput {
        text: query,
        surface,
    };
    for round in 0..repeat {
        // Repeat rounds re-execute through the plan cache (visible in the
        // plan.cache_hits counter) but print only once.
        let printing = round == 0;
        if explain {
            let text = if explain_json {
                let mut doc = db.explain_direct_json(input, Some(n), opts)?;
                doc.push('\n');
                doc
            } else {
                db.explain_direct(input, Some(n), opts)?
            };
            if printing {
                print!("{text}");
            }
        } else if use_direct {
            let (hits, stats) = db.query_direct_with(input, Some(n), opts)?;
            if printing {
                for (rank, hit) in hits.iter().enumerate() {
                    print_hit(&db, rank, *hit, as_xml)?;
                }
                if show_stats {
                    eprintln!(
                        "direct: {} fetches, {} plan ops, {} entries, {} cse reuses",
                        stats.fetches, stats.ops, stats.list_entries, stats.cse_reuses
                    );
                }
            }
        } else {
            let (hits, stats) =
                db.query_schema_with(input, n, opts, SchemaEvalConfig::default())?;
            if printing {
                for (rank, hit) in hits.iter().enumerate() {
                    print_hit(&db, rank, *hit, as_xml)?;
                }
                if show_stats {
                    eprintln!(
                        "schema: {} rounds (k={}), {} second-level queries, {} rows",
                        stats.rounds,
                        stats.k_final,
                        stats.second_level_queries,
                        stats.secondary_rows
                    );
                }
            }
        }
    }
    if show_stats || stats_json {
        let delta = approxql_metrics::snapshot().diff(&before);
        if stats_json {
            eprintln!("{}", delta.to_json());
        } else {
            eprint!("{}", delta.render_table());
        }
    }
    Ok(())
}

fn cmd_stats(flags: &Flags) -> Result<(), CliError> {
    let [db_path] = flags.positional.as_slice() else {
        return Err(usage("stats needs a database path"));
    };
    let db = Database::open(db_path)?;
    let t = db.tree().stats();
    let s = db.schema().stats();
    let docs = db.tree().documents();
    let live = docs.iter().filter(|d| d.alive).count();
    println!("data tree:");
    println!(
        "  documents        {live} live, {} tombstoned",
        docs.len() - live
    );
    println!("  nodes            {}", t.node_count);
    println!("  elements         {}", t.element_count);
    println!("  word occurrences {}", t.word_count);
    println!("  distinct labels  {}", t.distinct_labels);
    println!("  max depth        {}", t.max_depth);
    println!("label index:");
    println!("  postings         {}", db.labels().len());
    println!("  entries          {}", db.labels().entry_count());
    println!("  bytes            {}", db.labels().byte_len());
    // DESIGN.md §14: delta/varint frames vs. the 24-byte flat codec.
    println!(
        "  bytes/posting    {:.2} (flat codec: 24)",
        db.labels().byte_len() as f64 / db.labels().entry_count().max(1) as f64
    );
    println!("schema:");
    println!("  nodes            {}", s.schema_nodes);
    println!(
        "  compression      {}x",
        t.node_count / s.schema_nodes.max(1)
    );
    println!("  I_sec postings   {}", s.secondary_postings);
    println!("  max class size   {}", s.max_instances);
    Ok(())
}

fn cmd_explain(flags: &Flags) -> Result<(), CliError> {
    let [db_path, query] = flags.positional.as_slice() else {
        return Err(usage("explain needs a database path and a query string"));
    };
    let k: usize = flags.option_parsed("-k")?.unwrap_or(5);
    let surface = surface_flag(flags)?;
    let mut db = Database::open(db_path)?;
    if let Some(costs_path) = flags.option("--costs") {
        let text = std::fs::read_to_string(costs_path)?;
        let costs = parse_cost_file(&text).map_err(CliError::Costs)?;
        db = Database::from_tree(db.tree().clone(), costs);
    }
    let metrics_before = approxql_metrics::snapshot();
    let (parsed, expanded) = db.compile(QueryInput {
        text: query,
        surface,
    })?;
    println!("query (canonical): {parsed}");
    println!(
        "separated representation: {} conjunctive quer{}",
        parsed.separate().len(),
        if parsed.separate().len() == 1 {
            "y"
        } else {
            "ies"
        }
    );
    println!(
        "expanded representation: {} nodes, {} leaves, {} derivations",
        expanded.len(),
        expanded.leaf_count(),
        expanded.derivation_count()
    );
    let run = approxql_core::schema_eval::best_k_second_level(
        &expanded,
        db.schema(),
        db.tree().interner(),
        k,
        EvalOptions::default(),
    );
    println!(
        "best {} second-level quer{} (complete: {}):",
        run.queries.len(),
        if run.queries.len() == 1 { "y" } else { "ies" },
        run.complete
    );
    for (i, entry) in run.queries.iter().enumerate() {
        let skel = entry.skeleton();
        println!(
            "  #{i} cost={} skeleton={}",
            entry.cost,
            render_skeleton(&db, &skel)
        );
    }
    println!("work counters:");
    for line in approxql_metrics::snapshot()
        .diff(&metrics_before)
        .render_table()
        .lines()
    {
        println!("  {line}");
    }
    Ok(())
}

fn cmd_translate(flags: &Flags) -> Result<(), CliError> {
    let [query] = flags.positional.as_slice() else {
        return Err(usage("translate needs a query string"));
    };
    let surface = surface_flag(flags)?;
    let to = match flags.option("--to") {
        None => Surface::Json,
        Some(name) => Surface::from_name(name).ok_or_else(|| {
            usage(format!(
                "invalid value `{name}` for --to (classic, json, or xpath)"
            ))
        })?,
    };
    let input = QueryInput {
        text: query,
        surface,
    };
    // A malformed query is a usage-class failure (exit 2): translate
    // validates input, it has no system under test.
    let parsed = input
        .parse()
        .map_err(|e| usage(format!("{} query: {e}", input.surface())))?;
    let mut rendered = to.render(&parsed);
    rendered.push('\n');
    match flags.option("--out") {
        // lint:allow(fs-outside-pager) translate writes a query text, not store state
        Some(path) => std::fs::write(path, &rendered)?,
        None => print!("{rendered}"),
    }
    Ok(())
}

fn render_skeleton(db: &Database, skel: &approxql_core::topk::Skeleton) -> String {
    let label = db.tree().resolve_label(skel.label);
    if skel.children.is_empty() {
        format!("{label}@{}", skel.pre)
    } else {
        let kids: Vec<String> = skel
            .children
            .iter()
            .map(|c| render_skeleton(db, c))
            .collect();
        format!("{label}@{}[{}]", skel.pre, kids.join(" and "))
    }
}

fn cmd_check(flags: &Flags) -> Result<(), CliError> {
    let [db_path] = flags.positional.as_slice() else {
        return Err(usage("check needs a database path"));
    };
    let report = Database::check_file(db_path)?;
    println!("{db_path}: {report}");
    Ok(())
}

fn cmd_eval(flags: &Flags) -> Result<(), CliError> {
    let [db_path, dataset_path] = flags.positional.as_slice() else {
        return Err(usage("eval needs a database path and a dataset path"));
    };
    let as_json = flags.switch("--json");
    let gen_truth = flags.switch("--gen-truth");
    let show_stats = flags.switch("--stats");
    let stats_json = flags.switch("--stats-json");
    let k_override = match flags.option("-k") {
        None => None,
        Some("unlimited") => Some(KSpec::Unlimited),
        Some(v) => match v.parse::<usize>() {
            Ok(n) if n > 0 => Some(KSpec::At(n)),
            _ => {
                return Err(usage(format!(
                    "invalid value `{v}` for -k (a positive integer or `unlimited`)"
                )))
            }
        },
    };
    let threads: usize = flags
        .option_parsed("--threads")?
        .unwrap_or_else(approxql_exec::default_threads);
    if threads == 0 {
        return Err(usage("--threads must be at least 1"));
    }
    let opts = RunOptions {
        k_override,
        threads,
        timing: !flags.switch("--no-timing"),
    };

    let text = std::fs::read_to_string(dataset_path)?;
    let mut ds = Dataset::parse(&text).map_err(CliError::Dataset)?;
    let db = Database::open(db_path)?;

    let before = approxql_metrics::snapshot();
    let output = if gen_truth {
        approxql_eval::gen_truth(&db, &mut ds, opts)?;
        ds.to_json()
    } else {
        let report = approxql_eval::run(&db, &ds, opts)?;
        if as_json {
            report.render_json()
        } else {
            report.render_table()
        }
    };
    match flags.option("--out") {
        // lint:allow(fs-outside-pager) eval writes a report/dataset, not store state
        Some(path) => std::fs::write(path, &output)?,
        None => print!("{output}"),
    }
    if show_stats || stats_json {
        let delta = approxql_metrics::snapshot().diff(&before);
        if stats_json {
            eprintln!("{}", delta.to_json());
        } else {
            eprint!("{}", delta.render_table());
        }
    }
    Ok(())
}

fn cmd_gen(flags: &Flags) -> Result<(), CliError> {
    let [out_dir] = flags.positional.as_slice() else {
        return Err(usage("gen needs an output directory"));
    };
    let mut cfg = DataGenConfig::default();
    if let Some(v) = flags.option_parsed("--elements")? {
        cfg.element_count = v;
    }
    if let Some(v) = flags.option_parsed("--names")? {
        cfg.element_names = v;
    }
    if let Some(v) = flags.option_parsed("--terms")? {
        cfg.vocabulary = v;
    }
    if let Some(v) = flags.option_parsed("--words")? {
        cfg.word_occurrences = v;
    }
    if let Some(v) = flags.option_parsed("--seed")? {
        cfg.seed = v;
    }
    let docs_per_file: usize = flags.option_parsed("--docs")?.unwrap_or(100);

    let out = PathBuf::from(out_dir);
    // lint:allow(fs-outside-pager) `gen` writes an XML corpus, not store state
    std::fs::create_dir_all(&out)?;
    let documents = DataGenerator::new(cfg).generate_documents();
    let mut written = 0;
    for (i, chunk) in documents.chunks(docs_per_file.max(1)).enumerate() {
        let mut text = String::from("<collection>");
        for el in chunk {
            text.push_str(&Document { root: el.clone() }.to_xml_string());
        }
        text.push_str("</collection>");
        let path = out.join(format!("part{i:04}.xml"));
        // lint:allow(fs-outside-pager) `gen` writes an XML corpus, not store state
        std::fs::write(&path, text)?;
        written += 1;
    }
    println!(
        "wrote {} documents into {} file(s) under {}",
        documents.len(),
        written,
        out.display()
    );
    Ok(())
}

/// Test helper: runs a command line given as separate words.
#[cfg(test)]
pub fn run_words(words: &[&str]) -> Result<(), CliError> {
    let args: Vec<String> = words.iter().map(|s| s.to_string()).collect();
    run(&args)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("axql-cli-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn full_cli_roundtrip() {
        let dir = tmpdir("round");
        let doc = dir.join("catalog.xml");
        std::fs::write(
            &doc,
            "<catalog><cd><title>piano concerto</title></cd><cd><title>piano sonata</title></cd></catalog>",
        )
        .unwrap();
        let db = dir.join("db.axql");
        run_words(&["build", db.to_str().unwrap(), doc.to_str().unwrap()]).unwrap();
        run_words(&["stats", db.to_str().unwrap()]).unwrap();
        run_words(&[
            "query",
            db.to_str().unwrap(),
            r#"cd[title["piano"]]"#,
            "-n",
            "5",
            "--direct",
        ])
        .unwrap();
        run_words(&[
            "query",
            db.to_str().unwrap(),
            r#"cd[title["piano"]]"#,
            "--schema",
        ])
        .unwrap();
        run_words(&["explain", db.to_str().unwrap(), r#"cd[title["piano"]]"#]).unwrap();
        // Both evaluators accept an explicit thread count.
        for algo in ["--direct", "--schema"] {
            run_words(&[
                "query",
                db.to_str().unwrap(),
                r#"cd[title["piano"]]"#,
                algo,
                "--threads",
                "2",
            ])
            .unwrap();
        }
        assert!(matches!(
            run_words(&[
                "query",
                db.to_str().unwrap(),
                r#"cd[title["piano"]]"#,
                "--threads",
                "0",
            ]),
            Err(CliError::Usage(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn insert_and_delete_verbs_mutate_the_database() {
        let dir = tmpdir("mutate");
        let doc1 = dir.join("one.xml");
        std::fs::write(&doc1, "<cd><title>piano concerto</title></cd>").unwrap();
        let doc2 = dir.join("two.xml");
        std::fs::write(&doc2, "<cd><title>piano sonata</title></cd>").unwrap();
        let db = dir.join("db.axql");
        run_words(&["build", db.to_str().unwrap(), doc1.to_str().unwrap()]).unwrap();
        run_words(&["insert", db.to_str().unwrap(), doc2.to_str().unwrap()]).unwrap();
        run_words(&["check", db.to_str().unwrap()]).unwrap();
        {
            let reopened = Database::open(&db).unwrap();
            assert_eq!(
                reopened
                    .query_direct(r#"cd[title["piano"]]"#, None)
                    .unwrap()
                    .len(),
                2
            );
        }
        // The first document's root is the first span start (node 1).
        run_words(&["delete", db.to_str().unwrap(), "1"]).unwrap();
        run_words(&["check", db.to_str().unwrap()]).unwrap();
        {
            let reopened = Database::open(&db).unwrap();
            assert_eq!(
                reopened
                    .query_direct(r#"cd[title["piano"]]"#, None)
                    .unwrap()
                    .len(),
                1
            );
        }
        // Deleting the same root again is a data-level error, exit 1.
        let err = run_words(&["delete", db.to_str().unwrap(), "1"]).unwrap_err();
        assert!(matches!(err, CliError::Op(_)));
        assert_eq!(err.exit_code(), 1);
        // A non-numeric node is a usage error.
        assert!(matches!(
            run_words(&["delete", db.to_str().unwrap(), "first"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_words(&["insert", db.to_str().unwrap()]),
            Err(CliError::Usage(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn query_explain_and_repeat() {
        let dir = tmpdir("explain");
        let doc = dir.join("catalog.xml");
        std::fs::write(
            &doc,
            "<catalog><cd><title>piano concerto</title></cd></catalog>",
        )
        .unwrap();
        let db = dir.join("db.axql");
        run_words(&["build", db.to_str().unwrap(), doc.to_str().unwrap()]).unwrap();
        let q = r#"cd[title["piano"]]"#;
        run_words(&["query", db.to_str().unwrap(), q, "--explain"]).unwrap();
        // Repeat rounds drive the plan cache; combined with --stats-json
        // this is what the CI smoke greps for `plan.cache_hits`.
        run_words(&[
            "query",
            db.to_str().unwrap(),
            q,
            "--repeat",
            "3",
            "--stats-json",
        ])
        .unwrap();
        assert!(matches!(
            run_words(&["query", db.to_str().unwrap(), q, "--repeat", "0"]),
            Err(CliError::Usage(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn query_with_costs_file() {
        let dir = tmpdir("costs");
        let doc = dir.join("c.xml");
        std::fs::write(&doc, "<a><mc><title>piano</title></mc></a>").unwrap();
        let db = dir.join("db.axql");
        run_words(&["build", db.to_str().unwrap(), doc.to_str().unwrap()]).unwrap();
        let costs = dir.join("costs.txt");
        std::fs::write(&costs, "rename name cd mc 4\n").unwrap();
        run_words(&[
            "query",
            db.to_str().unwrap(),
            r#"cd[title["piano"]]"#,
            "--costs",
            costs.to_str().unwrap(),
        ])
        .unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn gen_writes_parseable_xml() {
        let dir = tmpdir("gen");
        run_words(&[
            "gen",
            dir.to_str().unwrap(),
            "--elements",
            "200",
            "--terms",
            "50",
            "--words",
            "600",
            "--docs",
            "10",
        ])
        .unwrap();
        let mut parsed = 0;
        for entry in std::fs::read_dir(&dir).unwrap() {
            let p = entry.unwrap().path();
            if p.extension().is_some_and(|e| e == "xml") {
                let text = std::fs::read_to_string(&p).unwrap();
                approxql_xml::parse_document(&text).unwrap();
                parsed += 1;
            }
        }
        assert!(parsed > 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn eval_gen_truth_then_score_roundtrip() {
        let dir = tmpdir("eval");
        let doc = dir.join("catalog.xml");
        std::fs::write(
            &doc,
            "<catalog><cd><title>piano concerto</title></cd><cd><title>piano sonata</title></cd></catalog>",
        )
        .unwrap();
        let db = dir.join("db.axql");
        run_words(&["build", db.to_str().unwrap(), doc.to_str().unwrap()]).unwrap();
        let ds = dir.join("ds.json");
        std::fs::write(
            &ds,
            r#"{"version":1,"name":"cli-roundtrip","defaults":{"k":5},
                "queries":[{"id":"q1","query":"cd[title[\"piano\"]]"}]}"#,
        )
        .unwrap();
        // Scoring before gen-truth is a dataset error (exit 2).
        let err = run_words(&["eval", db.to_str().unwrap(), ds.to_str().unwrap()]).unwrap_err();
        assert!(matches!(err, CliError::Dataset(_)));
        assert_eq!(err.exit_code(), 2);
        // gen-truth writes a dataset that then scores cleanly, with table,
        // JSON, and stats output, at an explicit thread count and -k.
        let truthed = dir.join("truthed.json");
        run_words(&[
            "eval",
            db.to_str().unwrap(),
            ds.to_str().unwrap(),
            "--gen-truth",
            "--out",
            truthed.to_str().unwrap(),
        ])
        .unwrap();
        assert!(std::fs::read_to_string(&truthed)
            .unwrap()
            .contains("\"expected\""));
        run_words(&["eval", db.to_str().unwrap(), truthed.to_str().unwrap()]).unwrap();
        run_words(&[
            "eval",
            db.to_str().unwrap(),
            truthed.to_str().unwrap(),
            "--json",
            "--no-timing",
            "--threads",
            "2",
            "-k",
            "unlimited",
            "--stats-json",
        ])
        .unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn eval_exit_codes_malformed_vs_runtime() {
        let dir = tmpdir("eval-exit");
        let doc = dir.join("c.xml");
        std::fs::write(&doc, "<a><b>x</b></a>").unwrap();
        let db = dir.join("db.axql");
        run_words(&["build", db.to_str().unwrap(), doc.to_str().unwrap()]).unwrap();

        // Malformed dataset JSON → usage-class exit code 2.
        let bad = dir.join("bad.json");
        std::fs::write(&bad, "{not json").unwrap();
        let err = run_words(&["eval", db.to_str().unwrap(), bad.to_str().unwrap()]).unwrap_err();
        assert!(matches!(err, CliError::Dataset(_)));
        assert_eq!(err.exit_code(), 2);

        // Valid dataset whose query fails at runtime → exit code 1.
        let broken = dir.join("broken.json");
        std::fs::write(
            &broken,
            r#"{"version":1,"name":"x",
                "queries":[{"id":"q","query":"a[[","expected":[]}]}"#,
        )
        .unwrap();
        let err = run_words(&["eval", db.to_str().unwrap(), broken.to_str().unwrap()]).unwrap_err();
        assert!(matches!(err, CliError::Db(DatabaseError::Query(_))));
        assert_eq!(err.exit_code(), 1);

        // Invalid -k is a plain usage error.
        assert!(matches!(
            run_words(&[
                "eval",
                db.to_str().unwrap(),
                broken.to_str().unwrap(),
                "-k",
                "zero"
            ]),
            Err(CliError::Usage(_))
        ));
        // Missing or corrupt database stays exit 3.
        let err =
            run_words(&["eval", "/nonexistent/db.axql", broken.to_str().unwrap()]).unwrap_err();
        assert_eq!(err.exit_code(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn usage_errors() {
        assert!(matches!(run_words(&[]), Err(CliError::Usage(_))));
        assert!(matches!(run_words(&["bogus"]), Err(CliError::Usage(_))));
        assert!(matches!(run_words(&["build"]), Err(CliError::Usage(_))));
        assert!(matches!(
            run_words(&["query", "x"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_words(&["query", "a", "b", "-n"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_words(&["query", "a", "b", "--direct", "--schema"]),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn check_passes_on_a_built_database_and_fails_on_a_bit_flip() {
        let dir = tmpdir("check");
        let doc = dir.join("catalog.xml");
        std::fs::write(
            &doc,
            "<catalog><cd><title>piano concerto</title></cd><cd><title>sonata</title></cd></catalog>",
        )
        .unwrap();
        let db = dir.join("db.axql");
        run_words(&["build", db.to_str().unwrap(), doc.to_str().unwrap()]).unwrap();
        run_words(&["check", db.to_str().unwrap()]).unwrap();

        // Flip one bit in a data page (past the two 4 KiB header slots).
        let mut bytes = std::fs::read(&db).unwrap();
        bytes[2 * 4096 + 137] ^= 0x10;
        std::fs::write(&db, &bytes).unwrap();
        let err = run_words(&["check", db.to_str().unwrap()]).unwrap_err();
        assert!(matches!(err, CliError::Db(DatabaseError::Storage(_))));
        assert_eq!(err.exit_code(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn exit_codes_are_distinct() {
        assert_eq!(CliError::Usage("x".into()).exit_code(), 2);
        let nf = run_words(&["check", "/nonexistent/db.axql"]).unwrap_err();
        assert_eq!(nf.exit_code(), 3);
        let io = CliError::Io(std::io::Error::other("boom"));
        assert_eq!(io.exit_code(), 1);
    }

    #[test]
    fn check_usage_errors() {
        assert!(matches!(run_words(&["check"]), Err(CliError::Usage(_))));
    }

    #[test]
    fn missing_database_is_reported() {
        assert!(matches!(
            run_words(&["stats", "/nonexistent/db.axql"]),
            Err(CliError::Db(_) | CliError::Io(_))
        ));
    }

    #[test]
    fn translate_converts_between_surfaces() {
        let dir = tmpdir("translate");
        let classic = r#"cd[title["piano"] and composer]"#;
        // classic → json → xpath → classic via --out files comes back to
        // the canonical classic form.
        let json_out = dir.join("q.json");
        run_words(&["translate", classic, "--out", json_out.to_str().unwrap()]).unwrap();
        let json = std::fs::read_to_string(&json_out).unwrap();
        assert_eq!(
            json.trim_end(),
            r#"{"v":1,"query":{"name":"cd","child":{"and":[{"name":"title","child":{"text":"piano"}},{"name":"composer"}]}}}"#
        );
        let xpath_out = dir.join("q.xpath");
        run_words(&[
            "translate",
            json.trim_end(),
            "--to",
            "xpath",
            "--out",
            xpath_out.to_str().unwrap(),
        ])
        .unwrap();
        let xpath = std::fs::read_to_string(&xpath_out).unwrap();
        assert_eq!(xpath.trim_end(), format!("/{classic}"));
        let classic_out = dir.join("q.axq");
        run_words(&[
            "translate",
            xpath.trim_end(),
            "--to",
            "classic",
            "--out",
            classic_out.to_str().unwrap(),
        ])
        .unwrap();
        assert_eq!(
            std::fs::read_to_string(&classic_out).unwrap().trim_end(),
            classic
        );
        // Pinning a surface overrides detection — and a classic query is
        // not valid JSON-IR.
        assert!(matches!(
            run_words(&["translate", classic, "--surface", "json"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_words(&["translate", classic, "--surface", "sql"]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(
            run_words(&["translate", classic, "--to", "sql"]),
            Err(CliError::Usage(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn translate_errors_render_caret_spans_and_exit_2() {
        // Satellite: the CLI surfaces line/column + caret-snippet parse
        // diagnostics, and malformed input is a usage-class (exit 2) error.
        let err = run_words(&["translate", "cd[a and ]"]).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        let rendered = err.to_string();
        assert!(
            rendered.contains("query syntax error at line 1, column 10:"),
            "{rendered}"
        );
        assert!(
            rendered.ends_with("\n  cd[a and ]\n           ^"),
            "missing caret snippet:\n{rendered}"
        );
        // An unsupported JSON-IR version is also exit 2, with the
        // distinct version message.
        let err = run_words(&["translate", r#"{"v":2,"query":{"name":"cd"}}"#]).unwrap_err();
        assert_eq!(err.exit_code(), 2);
        assert!(
            err.to_string().contains("unsupported query-IR version 2"),
            "{err}"
        );
    }

    #[test]
    fn query_accepts_all_surfaces() {
        let dir = tmpdir("surfaces");
        let doc = dir.join("catalog.xml");
        std::fs::write(
            &doc,
            "<catalog><cd><title>piano concerto</title></cd></catalog>",
        )
        .unwrap();
        let db = dir.join("db.axql");
        run_words(&["build", db.to_str().unwrap(), doc.to_str().unwrap()]).unwrap();
        for query in [
            r#"cd[title["piano"]]"#,
            r#"{"v":1,"query":{"name":"cd","child":{"name":"title","child":{"text":"piano"}}}}"#,
            r#"/cd//title["piano"]"#,
        ] {
            run_words(&["query", db.to_str().unwrap(), query, "--direct"]).unwrap();
        }
        // Pinned surface must match the text.
        assert!(matches!(
            run_words(&[
                "query",
                db.to_str().unwrap(),
                r#"/cd//title"#,
                "--surface",
                "classic",
            ]),
            Err(CliError::Db(DatabaseError::Query(_)))
        ));
        // --explain --format json; --format without --explain is misuse.
        run_words(&[
            "query",
            db.to_str().unwrap(),
            r#"cd[title["piano"]]"#,
            "--explain",
            "--format",
            "json",
        ])
        .unwrap();
        assert!(matches!(
            run_words(&[
                "query",
                db.to_str().unwrap(),
                r#"cd[title["piano"]]"#,
                "--format",
                "json",
            ]),
            Err(CliError::Usage(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
