//! Word normalization shared by document loading and query parsing.
//!
//! Section 4: "Text sequences are splitted into words. For each word, a
//! leaf node of the document tree is created and labeled with the word."
//! Both sides of a match — document words and query text selectors — must
//! be normalized identically, so this module is the single source of truth:
//! words are maximal runs of alphanumeric characters, lowercased.

/// Normalizes a single token (lowercases it). Returns `None` for tokens
/// that contain no alphanumeric character.
pub fn normalize_word(token: &str) -> Option<String> {
    let w: String = token
        .chars()
        .filter(|c| c.is_alphanumeric())
        .flat_map(char::to_lowercase)
        .collect();
    if w.is_empty() {
        None
    } else {
        Some(w)
    }
}

/// Splits a text sequence into normalized words.
///
/// ```
/// use approxql_tree::text::split_words;
/// assert_eq!(split_words("Piano Concerto No. 2"), ["piano", "concerto", "no", "2"]);
/// ```
pub fn split_words(text: &str) -> Vec<String> {
    text.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.chars().flat_map(char::to_lowercase).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_on_punctuation_and_whitespace() {
        assert_eq!(
            split_words("Rachmaninov: Piano-Concerto (no. 2)"),
            ["rachmaninov", "piano", "concerto", "no", "2"]
        );
    }

    #[test]
    fn empty_and_symbol_only_texts_yield_nothing() {
        assert!(split_words("").is_empty());
        assert!(split_words("  --- !!! ").is_empty());
    }

    #[test]
    fn lowercases_unicode() {
        assert_eq!(split_words("DVOŘÁK"), ["dvořák"]);
    }

    #[test]
    fn digits_are_words() {
        assert_eq!(split_words("op. 18"), ["op", "18"]);
    }

    #[test]
    fn normalize_word_strips_symbols() {
        assert_eq!(normalize_word("\"Piano\""), Some("piano".to_owned()));
        assert_eq!(normalize_word("--"), None);
        assert_eq!(normalize_word(""), None);
    }
}
