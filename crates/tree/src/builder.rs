//! Building data trees from XML documents or programmatically.

use crate::interner::{Interner, LabelId};
use crate::text::split_words;
use crate::tree::{DataTree, NodeId};
use approxql_cost::{Cost, CostModel, NodeType};
use approxql_xml::{Document, Element, XmlNode};

/// The unique label of the virtual super-root added above all documents
/// (Section 4: "We add a new root node with a unique label to the
/// collection of document trees"). The `\u{0}` prefix guarantees it cannot
/// clash with an element name or word.
pub const VIRTUAL_ROOT_LABEL: &str = "\u{0}root";

/// Builds a [`DataTree`] incrementally in document order.
///
/// XML documents are added with [`DataTreeBuilder::add_document`]; trees
/// can also be assembled by hand with [`begin_struct`](Self::begin_struct) /
/// [`add_word`](Self::add_word) / [`end`](Self::end), which the tests and
/// the synthetic data generator use.
#[derive(Debug)]
pub struct DataTreeBuilder {
    interner: Interner,
    labels: Vec<LabelId>,
    types: Vec<NodeType>,
    parents: Vec<u32>,
    bounds: Vec<u32>,
    /// Preorder numbers of currently open struct nodes.
    stack: Vec<u32>,
}

impl Default for DataTreeBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl DataTreeBuilder {
    /// Creates a builder holding only the virtual root.
    pub fn new() -> DataTreeBuilder {
        let mut b = DataTreeBuilder {
            interner: Interner::new(),
            labels: Vec::new(),
            types: Vec::new(),
            parents: Vec::new(),
            bounds: Vec::new(),
            stack: Vec::new(),
        };
        let root_label = b.interner.intern(VIRTUAL_ROOT_LABEL);
        b.labels.push(root_label);
        b.types.push(NodeType::Struct);
        b.parents.push(u32::MAX);
        b.bounds.push(0);
        b.stack.push(0);
        b
    }

    fn push_node(&mut self, label: &str, ty: NodeType) -> u32 {
        let pre = u32::try_from(self.labels.len()).expect("more than u32::MAX nodes");
        let id = self.interner.intern(label);
        self.labels.push(id);
        self.types.push(ty);
        self.parents
            .push(*self.stack.last().expect("virtual root is always open"));
        self.bounds.push(pre);
        pre
    }

    /// Opens a new struct node below the currently open node.
    pub fn begin_struct(&mut self, label: &str) -> NodeId {
        let pre = self.push_node(label, NodeType::Struct);
        self.stack.push(pre);
        NodeId(pre)
    }

    /// Closes the most recently opened struct node.
    ///
    /// # Panics
    /// Panics when trying to close the virtual root.
    pub fn end(&mut self) {
        assert!(self.stack.len() > 1, "cannot close the virtual root");
        self.stack.pop();
    }

    /// Adds a single already-normalized word as a text leaf.
    pub fn add_word(&mut self, word: &str) -> NodeId {
        NodeId(self.push_node(word, NodeType::Text))
    }

    /// Splits `text` into normalized words and adds one text leaf each
    /// (Section 4 word splitting).
    pub fn add_text(&mut self, text: &str) {
        for w in split_words(text) {
            self.add_word(&w);
        }
    }

    /// Adds an attribute: a struct node labeled with the attribute name
    /// whose children are the words of the value (Section 4: "Attributes
    /// are mapped to two nodes in parent-child relationship").
    pub fn add_attribute(&mut self, name: &str, value: &str) {
        self.begin_struct(name);
        self.add_text(value);
        self.end();
    }

    fn add_element(&mut self, el: &Element) {
        self.begin_struct(&el.name);
        for (name, value) in &el.attributes {
            self.add_attribute(name, value);
        }
        for child in &el.children {
            match child {
                XmlNode::Element(e) => self.add_element(e),
                XmlNode::Text(t) => self.add_text(t),
            }
        }
        self.end();
    }

    /// Adds a whole document below the virtual root.
    pub fn add_document(&mut self, doc: &Document) {
        assert_eq!(
            self.stack.len(),
            1,
            "add_document must be called at the top level"
        );
        self.add_element(&doc.root);
    }

    /// Number of nodes added so far (including the virtual root).
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `false`: the builder always contains at least the virtual root.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Finishes the tree, computing `bound`, `inscost`, and `pathcost`
    /// with insert costs drawn from `costs`.
    ///
    /// # Panics
    /// Panics if struct nodes are still open (unbalanced `begin`/`end`).
    pub fn build(mut self, costs: &CostModel) -> DataTree {
        assert_eq!(
            self.stack.len(),
            1,
            "unbalanced begin_struct/end: {} nodes still open",
            self.stack.len() - 1
        );
        let n = self.labels.len();
        // bounds: sweep right-to-left; bound(u) = max(pre of u, bound of
        // children), computed by propagating to parents.
        for i in (1..n).rev() {
            let p = self.parents[i] as usize;
            if self.bounds[i] > self.bounds[p] {
                self.bounds[p] = self.bounds[i];
            }
        }
        // per-label insert costs, resolved once.
        let mut label_inscost: Vec<Option<Cost>> = vec![None; self.interner.len()];
        let mut inscosts = Vec::with_capacity(n);
        let mut pathcosts = vec![Cost::ZERO; n];
        for i in 0..n {
            let lid = self.labels[i];
            let c = *label_inscost[lid.index()].get_or_insert_with(|| {
                costs.insert_cost(self.types[i], self.interner.resolve(lid))
            });
            inscosts.push(c);
        }
        for i in 1..n {
            let p = self.parents[i] as usize;
            pathcosts[i] = pathcosts[p] + inscosts[p];
        }
        // Document registry: one span per child of the virtual root.
        let mut docs = Vec::new();
        let mut c = 1usize;
        while c < n {
            let bound = self.bounds[c];
            docs.push(crate::tree::DocSpan {
                start: c as u32,
                bound,
                alive: true,
            });
            c = bound as usize + 1;
        }
        DataTree {
            labels: self.labels,
            types: self.types,
            parents: self.parents,
            bounds: self.bounds,
            inscosts,
            pathcosts,
            interner: self.interner,
            docs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use approxql_cost::CostModelBuilder;
    use approxql_xml::parse_document;

    #[test]
    fn virtual_root_is_node_zero() {
        let t = DataTreeBuilder::new().build(&CostModel::new());
        assert_eq!(t.len(), 1);
        assert_eq!(t.label(NodeId(0)), VIRTUAL_ROOT_LABEL);
        assert_eq!(t.bound(NodeId(0)), 0);
        assert_eq!(t.pathcost(NodeId(0)), Cost::ZERO);
    }

    #[test]
    fn from_xml_document() {
        let doc = parse_document(r#"<cd year="1901"><title>Piano Concerto</title></cd>"#).unwrap();
        let mut b = DataTreeBuilder::new();
        b.add_document(&doc);
        let t = b.build(&CostModel::new());
        // root, cd, year, "1901", title, "piano", "concerto"
        assert_eq!(t.len(), 7);
        assert_eq!(t.label(NodeId(1)), "cd");
        assert_eq!(t.label(NodeId(2)), "year");
        assert_eq!(t.node_type(NodeId(2)), NodeType::Struct);
        assert_eq!(t.label(NodeId(3)), "1901");
        assert_eq!(t.node_type(NodeId(3)), NodeType::Text);
        assert_eq!(t.label(NodeId(5)), "piano");
    }

    #[test]
    fn attributes_become_two_nodes() {
        let doc = parse_document(r#"<a k="v w"/>"#).unwrap();
        let mut b = DataTreeBuilder::new();
        b.add_document(&doc);
        let t = b.build(&CostModel::new());
        // root, a, k, "v", "w"
        assert_eq!(t.len(), 5);
        assert_eq!(t.parent(NodeId(3)), Some(NodeId(2)));
        assert_eq!(t.parent(NodeId(4)), Some(NodeId(2)));
    }

    #[test]
    fn multiple_documents_share_the_root() {
        let mut b = DataTreeBuilder::new();
        b.add_document(&parse_document("<a/>").unwrap());
        b.add_document(&parse_document("<b/>").unwrap());
        let t = b.build(&CostModel::new());
        let kids: Vec<_> = t
            .children(t.root())
            .map(|c| t.label(c).to_owned())
            .collect();
        assert_eq!(kids, vec!["a", "b"]);
    }

    #[test]
    fn inscost_uses_cost_model() {
        let costs = CostModel::builder()
            .insert_default(1)
            .insert(NodeType::Struct, "title", Cost::finite(3))
            .build();
        let mut b = DataTreeBuilder::new();
        b.begin_struct("cd");
        b.begin_struct("title");
        b.add_word("piano");
        b.end();
        b.end();
        let t = b.build(&costs);
        assert_eq!(t.inscost(NodeId(2)), Cost::finite(3)); // title
        assert_eq!(t.inscost(NodeId(1)), Cost::finite(1)); // cd, default
                                                           // pathcost("piano") = inscost(root) + inscost(cd) + inscost(title)
        assert_eq!(t.pathcost(NodeId(3)), Cost::finite(1 + 1 + 3));
    }

    #[test]
    fn builder_drops_empty_text() {
        let doc = parse_document("<a>  \n\t </a>").unwrap();
        let mut b = DataTreeBuilder::new();
        b.add_document(&doc);
        let t = b.build(&CostModel::new());
        assert_eq!(t.len(), 2); // root + a, no text nodes
    }

    #[test]
    #[should_panic]
    fn unbalanced_build_panics() {
        let mut b = DataTreeBuilder::new();
        b.begin_struct("a");
        let _ = b.build(&CostModel::new());
    }

    #[test]
    #[should_panic]
    fn closing_root_panics() {
        let mut b = DataTreeBuilder::new();
        b.end();
    }

    #[allow(unused_imports)]
    use CostModelBuilder as _;
}
