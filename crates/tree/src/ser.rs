//! Binary (de)serialization of [`DataTree`], used by the storage layer to
//! persist a database image.
//!
//! Two families of formats live here:
//!
//! * the whole-tree dump ([`DataTree::to_bytes`] / [`DataTree::from_bytes`]):
//!   magic, version, interner strings, per-node column arrays, and (since
//!   version 2) the document registry. Version 1 input is still accepted —
//!   its registry is derived from the children of the virtual root.
//! * the segmented layout used by mutable stores: a standalone interner
//!   blob, a document map, and one self-contained segment per live
//!   document ([`DataTree::doc_segment_bytes`] /
//!   [`DataTree::from_doc_segments`]), so an insert or delete rewrites
//!   O(document) bytes instead of the whole collection.

use crate::builder::VIRTUAL_ROOT_LABEL;
use crate::interner::{Interner, LabelId};
use crate::tree::{DataTree, DocSpan};
use approxql_cost::{Cost, CostModel, NodeType};
use std::fmt;

const MAGIC: &[u8; 8] = b"AXQLTREE";
const SEGMENT_MAGIC: &[u8; 8] = b"AXQLDSEG";
const DOCMAP_MAGIC: &[u8; 8] = b"AXQLDMAP";
const INTERNER_MAGIC: &[u8; 8] = b"AXQLINTR";
const VERSION: u32 = 2;

/// Errors raised while decoding a serialized tree.
#[derive(Debug, PartialEq, Eq)]
pub enum TreeDecodeError {
    /// The byte stream does not start with the tree magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// The stream ended prematurely or contains inconsistent lengths.
    Truncated,
    /// A string is not valid UTF-8.
    BadString,
    /// A structural invariant does not hold (e.g. a parent id out of range).
    Corrupt(&'static str),
}

impl fmt::Display for TreeDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeDecodeError::BadMagic => write!(f, "not a serialized data tree (bad magic)"),
            TreeDecodeError::BadVersion(v) => write!(f, "unsupported tree format version {v}"),
            TreeDecodeError::Truncated => write!(f, "serialized tree is truncated"),
            TreeDecodeError::BadString => write!(f, "serialized tree contains invalid UTF-8"),
            TreeDecodeError::Corrupt(what) => write!(f, "serialized tree is corrupt: {what}"),
        }
    }
}

impl std::error::Error for TreeDecodeError {}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], TreeDecodeError> {
        if self.pos + n > self.data.len() {
            return Err(TreeDecodeError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, TreeDecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, TreeDecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Bounds a decoded element count before it sizes an allocation: `n`
    /// entries of at least `per` bytes each must still fit in the input.
    /// A hostile header claiming billions of entries in a 20-byte blob is
    /// rejected here instead of driving `Vec::with_capacity` into an
    /// allocation-sized-by-attacker abort.
    fn claim(&self, n: usize, per: usize) -> Result<(), TreeDecodeError> {
        match n.checked_mul(per) {
            Some(need) if need <= self.data.len() - self.pos => Ok(()),
            _ => Err(TreeDecodeError::Truncated),
        }
    }
}

impl DataTree {
    /// Serializes the tree to a byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.labels.len();
        let mut out = Vec::with_capacity(32 + n * 25);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.interner.len() as u32).to_le_bytes());
        for (_, s) in self.interner.iter() {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        out.extend_from_slice(&(n as u64).to_le_bytes());
        for &l in &self.labels {
            out.extend_from_slice(&l.0.to_le_bytes());
        }
        for &t in &self.types {
            out.push(match t {
                NodeType::Struct => 0,
                NodeType::Text => 1,
            });
        }
        for &p in &self.parents {
            out.extend_from_slice(&p.to_le_bytes());
        }
        for &b in &self.bounds {
            out.extend_from_slice(&b.to_le_bytes());
        }
        for &c in &self.inscosts {
            out.extend_from_slice(&c.raw().to_le_bytes());
        }
        for &c in &self.pathcosts {
            out.extend_from_slice(&c.raw().to_le_bytes());
        }
        out.extend_from_slice(&(self.docs.len() as u32).to_le_bytes());
        for d in &self.docs {
            out.extend_from_slice(&d.start.to_le_bytes());
            out.extend_from_slice(&d.bound.to_le_bytes());
            out.push(u8::from(d.alive));
        }
        out
    }

    /// Decodes a tree serialized by [`DataTree::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Result<DataTree, TreeDecodeError> {
        let mut cur = Cursor { data, pos: 0 };
        if cur.take(8)? != MAGIC {
            return Err(TreeDecodeError::BadMagic);
        }
        let version = cur.u32()?;
        if version != 1 && version != VERSION {
            return Err(TreeDecodeError::BadVersion(version));
        }
        let nstrings = cur.u32()? as usize;
        let mut interner = Interner::new();
        for i in 0..nstrings {
            let len = cur.u32()? as usize;
            let s = std::str::from_utf8(cur.take(len)?).map_err(|_| TreeDecodeError::BadString)?;
            let id = interner.intern(s);
            if id != LabelId(i as u32) {
                return Err(TreeDecodeError::Corrupt("duplicate interned string"));
            }
        }
        let n = cur.u64()? as usize;
        // 29 B/node floor: label 4 + type 1 + parent 4 + bound 4 + two costs 16.
        cur.claim(n, 29)?;
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let l = cur.u32()?;
            if l as usize >= nstrings {
                return Err(TreeDecodeError::Corrupt("label id out of range"));
            }
            labels.push(LabelId(l));
        }
        let mut types = Vec::with_capacity(n);
        for _ in 0..n {
            types.push(match cur.take(1)?[0] {
                0 => NodeType::Struct,
                1 => NodeType::Text,
                _ => return Err(TreeDecodeError::Corrupt("invalid node type")),
            });
        }
        let mut parents = Vec::with_capacity(n);
        for i in 0..n {
            let p = cur.u32()?;
            if i == 0 {
                if p != u32::MAX {
                    return Err(TreeDecodeError::Corrupt("root must have no parent"));
                }
            } else if p as usize >= i {
                return Err(TreeDecodeError::Corrupt("parent must precede child"));
            }
            parents.push(p);
        }
        let mut bounds = Vec::with_capacity(n);
        for i in 0..n {
            let b = cur.u32()?;
            if (b as usize) < i || b as usize >= n {
                return Err(TreeDecodeError::Corrupt("bound out of range"));
            }
            bounds.push(b);
        }
        let mut inscosts = Vec::with_capacity(n);
        for _ in 0..n {
            inscosts.push(Cost::from_raw(cur.u64()?));
        }
        let mut pathcosts = Vec::with_capacity(n);
        for _ in 0..n {
            pathcosts.push(Cost::from_raw(cur.u64()?));
        }
        let docs = if version == 1 {
            // v1 predates the registry: every child of the root is a live
            // document.
            let mut docs = Vec::new();
            let mut c = 1usize;
            while c < n {
                let bound = bounds[c];
                docs.push(DocSpan {
                    start: c as u32,
                    bound,
                    alive: true,
                });
                c = bound as usize + 1;
            }
            docs
        } else {
            let ndocs = cur.u32()? as usize;
            // 9 B/span floor: start 4 + bound 4 + liveness 1.
            cur.claim(ndocs, 9)?;
            let mut docs = Vec::with_capacity(ndocs);
            let mut expect = 1u32;
            for _ in 0..ndocs {
                let start = cur.u32()?;
                let bound = cur.u32()?;
                let alive = match cur.take(1)?[0] {
                    0 => false,
                    1 => true,
                    _ => return Err(TreeDecodeError::Corrupt("invalid doc liveness flag")),
                };
                if start != expect || bound < start || bound as usize >= n {
                    return Err(TreeDecodeError::Corrupt(
                        "doc spans must partition the tree",
                    ));
                }
                expect = bound + 1;
                docs.push(DocSpan {
                    start,
                    bound,
                    alive,
                });
            }
            if expect as usize != n.max(1) {
                return Err(TreeDecodeError::Corrupt(
                    "doc spans must partition the tree",
                ));
            }
            docs
        };
        if cur.pos != data.len() {
            return Err(TreeDecodeError::Corrupt("trailing bytes"));
        }
        Ok(DataTree {
            labels,
            types,
            parents,
            bounds,
            inscosts,
            pathcosts,
            interner,
            docs,
        })
    }
}

/// The decoded node columns of one document segment (absolute preorder
/// addressing, ready to splice into a [`DataTree`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DocSegment {
    /// Label ids, resolved against the standalone interner blob.
    pub labels: Vec<LabelId>,
    /// Node types.
    pub types: Vec<NodeType>,
    /// Absolute parent preorder numbers (the document root's parent is 0).
    pub parents: Vec<u32>,
    /// Absolute subtree bounds.
    pub bounds: Vec<u32>,
    /// Insert costs.
    pub inscosts: Vec<Cost>,
    /// Root-path costs.
    pub pathcosts: Vec<Cost>,
}

impl DataTree {
    /// Serializes the document `span` as a self-contained segment
    /// (absolute preorder addressing; decoded by [`decode_doc_segment`]).
    pub fn doc_segment_bytes(&self, span: DocSpan) -> Vec<u8> {
        let lo = span.start as usize;
        let hi = span.bound as usize + 1;
        let n = hi - lo;
        let mut out = Vec::with_capacity(24 + n * 29);
        out.extend_from_slice(SEGMENT_MAGIC);
        out.extend_from_slice(&(n as u32).to_le_bytes());
        for &l in &self.labels[lo..hi] {
            out.extend_from_slice(&l.0.to_le_bytes());
        }
        for &t in &self.types[lo..hi] {
            out.push(match t {
                NodeType::Struct => 0,
                NodeType::Text => 1,
            });
        }
        for &p in &self.parents[lo..hi] {
            out.extend_from_slice(&p.to_le_bytes());
        }
        for &b in &self.bounds[lo..hi] {
            out.extend_from_slice(&b.to_le_bytes());
        }
        for &c in &self.inscosts[lo..hi] {
            out.extend_from_slice(&c.raw().to_le_bytes());
        }
        for &c in &self.pathcosts[lo..hi] {
            out.extend_from_slice(&c.raw().to_le_bytes());
        }
        out
    }

    /// Reassembles a tree from the segmented layout: the standalone
    /// interner, the document map (`total_len` + spans), and one decoded
    /// segment per *live* document. Tombstoned ranges become inert filler
    /// nodes that the liveness checks hide; the virtual root is
    /// reconstructed from `costs`.
    pub fn from_doc_segments(
        interner: Interner,
        total_len: u32,
        docs: Vec<DocSpan>,
        segments: &[(DocSpan, DocSegment)],
        costs: &CostModel,
    ) -> Result<DataTree, TreeDecodeError> {
        let n = total_len as usize;
        if n == 0 {
            return Err(TreeDecodeError::Corrupt("empty docmap"));
        }
        let Some(root_label) = interner.get(VIRTUAL_ROOT_LABEL) else {
            return Err(TreeDecodeError::Corrupt(
                "interner lacks the virtual root label",
            ));
        };
        let mut labels = vec![root_label; n];
        let mut types = vec![NodeType::Struct; n];
        let mut parents = vec![0u32; n];
        let mut bounds = vec![0u32; n];
        let mut inscosts = vec![Cost::ZERO; n];
        let mut pathcosts = vec![Cost::ZERO; n];
        parents[0] = u32::MAX;
        bounds[0] = total_len - 1;
        inscosts[0] = costs.insert_cost(NodeType::Struct, VIRTUAL_ROOT_LABEL);
        // Filler for tombstoned ranges: point every bound at the doc bound
        // so the child iterator's jump clears the gap in one step.
        for d in &docs {
            if !d.alive {
                for b in &mut bounds[d.start as usize..=d.bound as usize] {
                    *b = d.bound;
                }
            }
        }
        let mut seg_iter = segments.iter();
        for d in docs.iter().filter(|d| d.alive) {
            let Some((span, seg)) = seg_iter.next() else {
                return Err(TreeDecodeError::Corrupt("missing segment for live doc"));
            };
            if *span != *d {
                return Err(TreeDecodeError::Corrupt(
                    "segment does not match its doc span",
                ));
            }
            let lo = d.start as usize;
            let hi = d.bound as usize + 1;
            if seg.labels.len() != hi - lo {
                return Err(TreeDecodeError::Corrupt("segment length mismatch"));
            }
            labels[lo..hi].copy_from_slice(&seg.labels);
            types[lo..hi].copy_from_slice(&seg.types);
            parents[lo..hi].copy_from_slice(&seg.parents);
            bounds[lo..hi].copy_from_slice(&seg.bounds);
            inscosts[lo..hi].copy_from_slice(&seg.inscosts);
            pathcosts[lo..hi].copy_from_slice(&seg.pathcosts);
        }
        if seg_iter.next().is_some() {
            return Err(TreeDecodeError::Corrupt("extra segment without a live doc"));
        }
        for label in labels.iter().take(n).skip(1) {
            if label.index() >= interner.len() {
                return Err(TreeDecodeError::Corrupt("label id out of range"));
            }
        }
        Ok(DataTree {
            labels,
            types,
            parents,
            bounds,
            inscosts,
            pathcosts,
            interner,
            docs,
        })
    }
}

/// Decodes a segment written by [`DataTree::doc_segment_bytes`],
/// validating its structure against the expected `span` and the interner
/// size `nlabels`.
pub fn decode_doc_segment(
    data: &[u8],
    span: DocSpan,
    nlabels: usize,
) -> Result<DocSegment, TreeDecodeError> {
    let mut cur = Cursor { data, pos: 0 };
    if cur.take(8)? != SEGMENT_MAGIC {
        return Err(TreeDecodeError::BadMagic);
    }
    let n = cur.u32()? as usize;
    if n != (span.bound - span.start) as usize + 1 {
        return Err(TreeDecodeError::Corrupt("segment length mismatch"));
    }
    let mut labels = Vec::with_capacity(n);
    for _ in 0..n {
        let l = cur.u32()?;
        if l as usize >= nlabels {
            return Err(TreeDecodeError::Corrupt("label id out of range"));
        }
        labels.push(LabelId(l));
    }
    let mut types = Vec::with_capacity(n);
    for _ in 0..n {
        types.push(match cur.take(1)?[0] {
            0 => NodeType::Struct,
            1 => NodeType::Text,
            _ => return Err(TreeDecodeError::Corrupt("invalid node type")),
        });
    }
    let mut parents = Vec::with_capacity(n);
    for i in 0..n {
        let p = cur.u32()?;
        let pre = span.start + i as u32;
        if i == 0 {
            if p != 0 {
                return Err(TreeDecodeError::Corrupt(
                    "doc root must hang off the virtual root",
                ));
            }
        } else if p < span.start || p >= pre {
            return Err(TreeDecodeError::Corrupt(
                "parent must precede child within the doc",
            ));
        }
        parents.push(p);
    }
    let mut bounds = Vec::with_capacity(n);
    for i in 0..n {
        let b = cur.u32()?;
        let pre = span.start + i as u32;
        if b < pre || b > span.bound {
            return Err(TreeDecodeError::Corrupt("bound out of range"));
        }
        bounds.push(b);
    }
    if bounds[0] != span.bound {
        return Err(TreeDecodeError::Corrupt(
            "doc root bound must equal the span bound",
        ));
    }
    let mut inscosts = Vec::with_capacity(n);
    for _ in 0..n {
        inscosts.push(Cost::from_raw(cur.u64()?));
    }
    let mut pathcosts = Vec::with_capacity(n);
    for _ in 0..n {
        pathcosts.push(Cost::from_raw(cur.u64()?));
    }
    if cur.pos != data.len() {
        return Err(TreeDecodeError::Corrupt("trailing bytes"));
    }
    Ok(DocSegment {
        labels,
        types,
        parents,
        bounds,
        inscosts,
        pathcosts,
    })
}

/// Serializes an interner as a standalone blob (strings in id order).
pub fn encode_interner(interner: &Interner) -> Vec<u8> {
    let mut out = Vec::new();
    out.extend_from_slice(INTERNER_MAGIC);
    out.extend_from_slice(&(interner.len() as u32).to_le_bytes());
    for (_, s) in interner.iter() {
        out.extend_from_slice(&(s.len() as u32).to_le_bytes());
        out.extend_from_slice(s.as_bytes());
    }
    out
}

/// Decodes a blob written by [`encode_interner`].
pub fn decode_interner(data: &[u8]) -> Result<Interner, TreeDecodeError> {
    let mut cur = Cursor { data, pos: 0 };
    if cur.take(8)? != INTERNER_MAGIC {
        return Err(TreeDecodeError::BadMagic);
    }
    let nstrings = cur.u32()? as usize;
    let mut interner = Interner::new();
    for i in 0..nstrings {
        let len = cur.u32()? as usize;
        let s = std::str::from_utf8(cur.take(len)?).map_err(|_| TreeDecodeError::BadString)?;
        let id = interner.intern(s);
        if id != LabelId(i as u32) {
            return Err(TreeDecodeError::Corrupt("duplicate interned string"));
        }
    }
    if cur.pos != data.len() {
        return Err(TreeDecodeError::Corrupt("trailing bytes"));
    }
    Ok(interner)
}

/// Serializes the document map: total preorder length plus every span,
/// tombstones included.
pub fn encode_docmap(total_len: u32, docs: &[DocSpan]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + docs.len() * 9);
    out.extend_from_slice(DOCMAP_MAGIC);
    out.extend_from_slice(&total_len.to_le_bytes());
    out.extend_from_slice(&(docs.len() as u32).to_le_bytes());
    for d in docs {
        out.extend_from_slice(&d.start.to_le_bytes());
        out.extend_from_slice(&d.bound.to_le_bytes());
        out.push(u8::from(d.alive));
    }
    out
}

/// Decodes a blob written by [`encode_docmap`], checking that the spans
/// contiguously partition `1..total_len`.
pub fn decode_docmap(data: &[u8]) -> Result<(u32, Vec<DocSpan>), TreeDecodeError> {
    let mut cur = Cursor { data, pos: 0 };
    if cur.take(8)? != DOCMAP_MAGIC {
        return Err(TreeDecodeError::BadMagic);
    }
    let total_len = cur.u32()?;
    if total_len == 0 {
        return Err(TreeDecodeError::Corrupt("empty docmap"));
    }
    let ndocs = cur.u32()? as usize;
    // 9 B/span floor: start 4 + bound 4 + liveness 1.
    cur.claim(ndocs, 9)?;
    let mut docs = Vec::with_capacity(ndocs);
    let mut expect = 1u32;
    for _ in 0..ndocs {
        let start = cur.u32()?;
        let bound = cur.u32()?;
        let alive = match cur.take(1)?[0] {
            0 => false,
            1 => true,
            _ => return Err(TreeDecodeError::Corrupt("invalid doc liveness flag")),
        };
        if start != expect || bound < start || bound >= total_len {
            return Err(TreeDecodeError::Corrupt(
                "doc spans must partition the tree",
            ));
        }
        expect = bound + 1;
        docs.push(DocSpan {
            start,
            bound,
            alive,
        });
    }
    if expect != total_len.max(1) {
        return Err(TreeDecodeError::Corrupt(
            "doc spans must partition the tree",
        ));
    }
    if cur.pos != data.len() {
        return Err(TreeDecodeError::Corrupt("trailing bytes"));
    }
    Ok((total_len, docs))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DataTreeBuilder;
    use crate::tree::NodeId;
    use approxql_cost::CostModel;

    fn sample() -> DataTree {
        let mut b = DataTreeBuilder::new();
        b.begin_struct("cd");
        b.begin_struct("title");
        b.add_text("piano concerto");
        b.end();
        b.end();
        b.build(&CostModel::new())
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        let bytes = t.to_bytes();
        let t2 = DataTree::from_bytes(&bytes).unwrap();
        assert_eq!(t2.len(), t.len());
        for n in t.nodes() {
            assert_eq!(t2.label(n), t.label(n));
            assert_eq!(t2.node_type(n), t.node_type(n));
            assert_eq!(t2.parent(n), t.parent(n));
            assert_eq!(t2.bound(n), t.bound(n));
            assert_eq!(t2.inscost(n), t.inscost(n));
            assert_eq!(t2.pathcost(n), t.pathcost(n));
        }
    }

    #[test]
    fn rejects_bad_magic() {
        assert_eq!(
            DataTree::from_bytes(b"NOTATREE????").unwrap_err(),
            TreeDecodeError::BadMagic
        );
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                DataTree::from_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert_eq!(
            DataTree::from_bytes(&bytes).unwrap_err(),
            TreeDecodeError::Corrupt("trailing bytes")
        );
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = sample().to_bytes();
        bytes[8] = 99;
        assert_eq!(
            DataTree::from_bytes(&bytes).unwrap_err(),
            TreeDecodeError::BadVersion(99)
        );
    }

    #[test]
    fn decoded_tree_answers_queries() {
        let t = DataTree::from_bytes(&sample().to_bytes()).unwrap();
        assert!(t.is_ancestor(NodeId(1), NodeId(3)));
        assert_eq!(t.distance(NodeId(1), NodeId(3)), Cost::finite(1));
    }

    #[test]
    fn roundtrip_preserves_tombstones() {
        let mut t = {
            let mut b = DataTreeBuilder::new();
            b.begin_struct("a");
            b.add_text("one");
            b.end();
            b.begin_struct("b");
            b.add_text("two");
            b.end();
            b.build(&CostModel::new())
        };
        let first = t.documents()[0];
        t.delete_document(NodeId(first.start)).unwrap();
        let t2 = DataTree::from_bytes(&t.to_bytes()).unwrap();
        assert_eq!(t2.documents(), t.documents());
        assert!(!t2.is_live(NodeId(first.start)));
    }

    #[test]
    fn accepts_version_one_input() {
        // A v1 blob is a v2 blob minus the docs section, with version 1.
        let t = sample();
        let mut bytes = t.to_bytes();
        let docs_bytes = 4 + t.documents().len() * 9;
        bytes.truncate(bytes.len() - docs_bytes);
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
        let t2 = DataTree::from_bytes(&bytes).unwrap();
        assert_eq!(t2.documents(), t.documents());
    }

    #[test]
    fn segmented_layout_roundtrips() {
        let costs = CostModel::new();
        let mut t = {
            let mut b = DataTreeBuilder::new();
            b.begin_struct("a");
            b.add_text("one");
            b.end();
            b.begin_struct("b");
            b.begin_struct("c");
            b.add_text("two three");
            b.end();
            b.end();
            b.build(&costs)
        };
        t.delete_document(NodeId(t.documents()[0].start)).unwrap();

        let interner_blob = encode_interner(t.interner());
        let docmap_blob = encode_docmap(t.len() as u32, t.documents());
        let segments: Vec<_> = t
            .documents()
            .iter()
            .filter(|d| d.alive)
            .map(|&d| {
                let blob = t.doc_segment_bytes(d);
                (d, decode_doc_segment(&blob, d, t.interner().len()).unwrap())
            })
            .collect();

        let interner = decode_interner(&interner_blob).unwrap();
        let (total_len, docs) = decode_docmap(&docmap_blob).unwrap();
        let t2 = DataTree::from_doc_segments(interner, total_len, docs, &segments, &costs).unwrap();

        assert_eq!(t2.len(), t.len());
        assert_eq!(t2.documents(), t.documents());
        for n in t.live_nodes() {
            assert_eq!(t2.label(n), t.label(n), "label of {n}");
            assert_eq!(t2.node_type(n), t.node_type(n));
            assert_eq!(t2.parent(n), t.parent(n));
            assert_eq!(t2.bound(n), t.bound(n), "bound of {n}");
            assert_eq!(t2.inscost(n), t.inscost(n));
            assert_eq!(t2.pathcost(n), t.pathcost(n));
        }
        // The gap is skipped identically.
        let kids: Vec<_> = t2.children(t2.root()).collect();
        assert_eq!(kids, t.children(t.root()).collect::<Vec<_>>());
    }

    #[test]
    fn segment_decode_rejects_corruption() {
        let t = sample();
        let d = t.documents()[0];
        let blob = t.doc_segment_bytes(d);
        assert_eq!(
            decode_doc_segment(b"NOTASEG?", d, t.interner().len()).unwrap_err(),
            TreeDecodeError::BadMagic
        );
        for cut in 0..blob.len() {
            assert!(
                decode_doc_segment(&blob[..cut], d, t.interner().len()).is_err(),
                "prefix of {cut} bytes decoded successfully"
            );
        }
        // A wrong span is rejected up front.
        let wrong = DocSpan {
            start: d.start,
            bound: d.bound + 1,
            alive: true,
        };
        assert!(decode_doc_segment(&blob, wrong, t.interner().len()).is_err());
    }

    #[test]
    fn docmap_decode_rejects_non_partitions() {
        let t = sample();
        let mut docs = t.documents().to_vec();
        docs[0].start = 2;
        let blob = encode_docmap(t.len() as u32, &docs);
        assert!(decode_docmap(&blob).is_err());
    }
}
