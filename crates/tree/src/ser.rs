//! Binary (de)serialization of [`DataTree`], used by the storage layer to
//! persist a database image.
//!
//! The format is a straightforward little-endian dump:
//! magic, version, interner strings, then the per-node column arrays.

use crate::interner::{Interner, LabelId};
use crate::tree::DataTree;
use approxql_cost::{Cost, NodeType};
use std::fmt;

const MAGIC: &[u8; 8] = b"AXQLTREE";
const VERSION: u32 = 1;

/// Errors raised while decoding a serialized tree.
#[derive(Debug, PartialEq, Eq)]
pub enum TreeDecodeError {
    /// The byte stream does not start with the tree magic.
    BadMagic,
    /// Unsupported format version.
    BadVersion(u32),
    /// The stream ended prematurely or contains inconsistent lengths.
    Truncated,
    /// A string is not valid UTF-8.
    BadString,
    /// A structural invariant does not hold (e.g. a parent id out of range).
    Corrupt(&'static str),
}

impl fmt::Display for TreeDecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeDecodeError::BadMagic => write!(f, "not a serialized data tree (bad magic)"),
            TreeDecodeError::BadVersion(v) => write!(f, "unsupported tree format version {v}"),
            TreeDecodeError::Truncated => write!(f, "serialized tree is truncated"),
            TreeDecodeError::BadString => write!(f, "serialized tree contains invalid UTF-8"),
            TreeDecodeError::Corrupt(what) => write!(f, "serialized tree is corrupt: {what}"),
        }
    }
}

impl std::error::Error for TreeDecodeError {}

struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], TreeDecodeError> {
        if self.pos + n > self.data.len() {
            return Err(TreeDecodeError::Truncated);
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u32(&mut self) -> Result<u32, TreeDecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, TreeDecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }
}

impl DataTree {
    /// Serializes the tree to a byte vector.
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.labels.len();
        let mut out = Vec::with_capacity(32 + n * 25);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&(self.interner.len() as u32).to_le_bytes());
        for (_, s) in self.interner.iter() {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        out.extend_from_slice(&(n as u64).to_le_bytes());
        for &l in &self.labels {
            out.extend_from_slice(&l.0.to_le_bytes());
        }
        for &t in &self.types {
            out.push(match t {
                NodeType::Struct => 0,
                NodeType::Text => 1,
            });
        }
        for &p in &self.parents {
            out.extend_from_slice(&p.to_le_bytes());
        }
        for &b in &self.bounds {
            out.extend_from_slice(&b.to_le_bytes());
        }
        for &c in &self.inscosts {
            out.extend_from_slice(&c.raw().to_le_bytes());
        }
        for &c in &self.pathcosts {
            out.extend_from_slice(&c.raw().to_le_bytes());
        }
        out
    }

    /// Decodes a tree serialized by [`DataTree::to_bytes`].
    pub fn from_bytes(data: &[u8]) -> Result<DataTree, TreeDecodeError> {
        let mut cur = Cursor { data, pos: 0 };
        if cur.take(8)? != MAGIC {
            return Err(TreeDecodeError::BadMagic);
        }
        let version = cur.u32()?;
        if version != VERSION {
            return Err(TreeDecodeError::BadVersion(version));
        }
        let nstrings = cur.u32()? as usize;
        let mut interner = Interner::new();
        for i in 0..nstrings {
            let len = cur.u32()? as usize;
            let s = std::str::from_utf8(cur.take(len)?).map_err(|_| TreeDecodeError::BadString)?;
            let id = interner.intern(s);
            if id != LabelId(i as u32) {
                return Err(TreeDecodeError::Corrupt("duplicate interned string"));
            }
        }
        let n = cur.u64()? as usize;
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let l = cur.u32()?;
            if l as usize >= nstrings {
                return Err(TreeDecodeError::Corrupt("label id out of range"));
            }
            labels.push(LabelId(l));
        }
        let mut types = Vec::with_capacity(n);
        for _ in 0..n {
            types.push(match cur.take(1)?[0] {
                0 => NodeType::Struct,
                1 => NodeType::Text,
                _ => return Err(TreeDecodeError::Corrupt("invalid node type")),
            });
        }
        let mut parents = Vec::with_capacity(n);
        for i in 0..n {
            let p = cur.u32()?;
            if i == 0 {
                if p != u32::MAX {
                    return Err(TreeDecodeError::Corrupt("root must have no parent"));
                }
            } else if p as usize >= i {
                return Err(TreeDecodeError::Corrupt("parent must precede child"));
            }
            parents.push(p);
        }
        let mut bounds = Vec::with_capacity(n);
        for i in 0..n {
            let b = cur.u32()?;
            if (b as usize) < i || b as usize >= n {
                return Err(TreeDecodeError::Corrupt("bound out of range"));
            }
            bounds.push(b);
        }
        let mut inscosts = Vec::with_capacity(n);
        for _ in 0..n {
            inscosts.push(Cost::from_raw(cur.u64()?));
        }
        let mut pathcosts = Vec::with_capacity(n);
        for _ in 0..n {
            pathcosts.push(Cost::from_raw(cur.u64()?));
        }
        if cur.pos != data.len() {
            return Err(TreeDecodeError::Corrupt("trailing bytes"));
        }
        Ok(DataTree {
            labels,
            types,
            parents,
            bounds,
            inscosts,
            pathcosts,
            interner,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DataTreeBuilder;
    use crate::tree::NodeId;
    use approxql_cost::CostModel;

    fn sample() -> DataTree {
        let mut b = DataTreeBuilder::new();
        b.begin_struct("cd");
        b.begin_struct("title");
        b.add_text("piano concerto");
        b.end();
        b.end();
        b.build(&CostModel::new())
    }

    #[test]
    fn roundtrip() {
        let t = sample();
        let bytes = t.to_bytes();
        let t2 = DataTree::from_bytes(&bytes).unwrap();
        assert_eq!(t2.len(), t.len());
        for n in t.nodes() {
            assert_eq!(t2.label(n), t.label(n));
            assert_eq!(t2.node_type(n), t.node_type(n));
            assert_eq!(t2.parent(n), t.parent(n));
            assert_eq!(t2.bound(n), t.bound(n));
            assert_eq!(t2.inscost(n), t.inscost(n));
            assert_eq!(t2.pathcost(n), t.pathcost(n));
        }
    }

    #[test]
    fn rejects_bad_magic() {
        assert_eq!(
            DataTree::from_bytes(b"NOTATREE????").unwrap_err(),
            TreeDecodeError::BadMagic
        );
    }

    #[test]
    fn rejects_truncation_anywhere() {
        let bytes = sample().to_bytes();
        for cut in 0..bytes.len() {
            assert!(
                DataTree::from_bytes(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes decoded successfully"
            );
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        let mut bytes = sample().to_bytes();
        bytes.push(0);
        assert_eq!(
            DataTree::from_bytes(&bytes).unwrap_err(),
            TreeDecodeError::Corrupt("trailing bytes")
        );
    }

    #[test]
    fn rejects_bad_version() {
        let mut bytes = sample().to_bytes();
        bytes[8] = 99;
        assert_eq!(
            DataTree::from_bytes(&bytes).unwrap_err(),
            TreeDecodeError::BadVersion(99)
        );
    }

    #[test]
    fn decoded_tree_answers_queries() {
        let t = DataTree::from_bytes(&sample().to_bytes()).unwrap();
        assert!(t.is_ancestor(NodeId(1), NodeId(3)));
        assert_eq!(t.distance(NodeId(1), NodeId(3)), Cost::finite(1));
    }
}
