#![forbid(unsafe_code)]
//! The data-tree model of approXQL (Sections 4 and 6.2 of the paper).
//!
//! XML documents are modeled as labeled trees with two node types:
//! `struct` nodes for elements and attribute names, `text` nodes for single
//! words of element text and attribute values. All documents of a collection
//! hang below one virtual super-root with a unique label, forming the *data
//! tree*.
//!
//! Every node `u` carries the four numbers of the encoding of Section 6.2:
//!
//! * `pre(u)` — preorder number (here: the node's index, 0-based),
//! * `bound(u)` — the largest preorder number in the subtree rooted at `u`,
//! * `inscost(u)` — the cost of inserting a node with `u`'s label into a
//!   query,
//! * `pathcost(u)` — the sum of the insert costs of all proper ancestors
//!   of `u`.
//!
//! These support the two primitives every evaluation algorithm uses:
//! the ancestor test `pre(u) < pre(v) && bound(u) >= pre(v)` and
//! `distance(u, v) = pathcost(v) - pathcost(u) - inscost(u)`, the total
//! insert cost of the nodes strictly between `u` and `v`.

mod builder;
mod interner;
mod ser;
pub mod text;
mod tree;

pub use builder::{DataTreeBuilder, VIRTUAL_ROOT_LABEL};
pub use interner::{Interner, LabelId};
pub use ser::{
    decode_doc_segment, decode_docmap, decode_interner, encode_docmap, encode_interner, DocSegment,
    TreeDecodeError,
};
pub use tree::{DataTree, DocSpan, NodeId, TreeError, TreeStats};

// Re-export the shared vocabulary types so downstream crates can name them
// without depending on approxql-cost directly.
pub use approxql_cost::{Cost, NodeType};
