//! String interning for node labels.
//!
//! The evaluation algorithms never compare label strings; they work on
//! dense [`LabelId`]s, which also key the label indexes. One interner is
//! shared by struct and text labels — the node *type* is stored separately,
//! so an element `concerto` and the word `concerto` intern to the same id
//! but never collide semantically.

use std::collections::HashMap;

/// A dense identifier for an interned label string.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LabelId(pub u32);

impl LabelId {
    /// The id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An append-only string interner.
#[derive(Clone, Debug, Default)]
pub struct Interner {
    map: HashMap<Box<str>, LabelId>,
    strings: Vec<Box<str>>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Interns `s`, returning its id (existing or fresh).
    pub fn intern(&mut self, s: &str) -> LabelId {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        let id = LabelId(u32::try_from(self.strings.len()).expect("more than u32::MAX labels"));
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.map.insert(boxed, id);
        id
    }

    /// Looks up an already-interned string.
    pub fn get(&self, s: &str) -> Option<LabelId> {
        self.map.get(s).copied()
    }

    /// Resolves an id back to its string.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: LabelId) -> &str {
        &self.strings[id.index()]
    }

    /// Number of distinct interned strings.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// `true` if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// All interned strings in id order.
    pub fn iter(&self) -> impl Iterator<Item = (LabelId, &str)> {
        self.strings
            .iter()
            .enumerate()
            .map(|(i, s)| (LabelId(i as u32), s.as_ref()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("cd");
        let b = i.intern("cd");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut i = Interner::new();
        assert_eq!(i.intern("a"), LabelId(0));
        assert_eq!(i.intern("b"), LabelId(1));
        assert_eq!(i.intern("a"), LabelId(0));
        assert_eq!(i.intern("c"), LabelId(2));
    }

    #[test]
    fn resolve_roundtrips() {
        let mut i = Interner::new();
        let id = i.intern("composer");
        assert_eq!(i.resolve(id), "composer");
    }

    #[test]
    fn get_does_not_intern() {
        let mut i = Interner::new();
        assert_eq!(i.get("x"), None);
        let id = i.intern("x");
        assert_eq!(i.get("x"), Some(id));
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn iter_yields_in_id_order() {
        let mut i = Interner::new();
        i.intern("b");
        i.intern("a");
        let all: Vec<_> = i.iter().map(|(id, s)| (id.0, s.to_owned())).collect();
        assert_eq!(all, vec![(0, "b".to_owned()), (1, "a".to_owned())]);
    }

    #[test]
    fn empty_interner() {
        let i = Interner::new();
        assert!(i.is_empty());
        assert_eq!(i.len(), 0);
    }
}
