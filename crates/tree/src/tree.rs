//! The encoded data tree: immutable node columns plus a document registry
//! that supports append-at-end inserts and tombstone deletes.

use crate::interner::{Interner, LabelId};
use crate::text::split_words;
use approxql_cost::{Cost, CostModel, NodeType};
use approxql_xml::{Document, Element, XmlNode};
use std::fmt;

/// A node of a [`DataTree`], identified by its 0-based preorder number.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The node id as a usize index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// Errors raised by tree operations.
#[derive(Debug, PartialEq, Eq)]
pub enum TreeError {
    /// The requested operation needs a `struct` node.
    NotAStructNode(NodeId),
    /// A node id does not belong to this tree.
    InvalidNode(NodeId),
}

impl fmt::Display for TreeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeError::NotAStructNode(n) => write!(f, "node {n} is not a struct node"),
            TreeError::InvalidNode(n) => write!(f, "node {n} is not part of this tree"),
        }
    }
}

impl std::error::Error for TreeError {}

/// Aggregate statistics of a data tree (used by experiments and examples).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreeStats {
    /// Total nodes including the virtual root.
    pub node_count: usize,
    /// Number of `struct` nodes (elements + attribute names), excluding the
    /// virtual root.
    pub element_count: usize,
    /// Number of `text` nodes (word occurrences).
    pub word_count: usize,
    /// Number of distinct labels (element names + terms).
    pub distinct_labels: usize,
    /// Maximum depth (root has depth 0).
    pub max_depth: usize,
}

/// One document subtree hanging off the virtual root: a contiguous
/// preorder range `[start, bound]` plus a liveness flag.
///
/// The registry realizes gap-based labelling (DESIGN.md §15): inserts
/// append a fresh range past the current maximum (existing nodes never
/// relabel) and deletes flip `alive` off, leaving the range as a permanent
/// gap in the preorder sequence. Interval-based ancestor tests stay valid
/// because surviving nodes keep their `pre`/`bound` values verbatim.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DocSpan {
    /// Preorder number of the document root (a child of the virtual root).
    pub start: u32,
    /// Largest preorder number in the document subtree.
    pub bound: u32,
    /// `false` once the document has been deleted (tombstoned).
    pub alive: bool,
}

/// The encoded data tree (Sections 4 and 6.2).
///
/// Nodes are stored in preorder; [`NodeId`] *is* the preorder number `pre`.
/// Node columns are append-only: [`DataTree::append_document`] adds a
/// fresh preorder range at the end and [`DataTree::delete_document`]
/// tombstones a document's range in the [`DocSpan`] registry without
/// touching any other node.
#[derive(Clone, Debug)]
pub struct DataTree {
    pub(crate) labels: Vec<LabelId>,
    pub(crate) types: Vec<NodeType>,
    /// Parent preorder numbers; the root stores `u32::MAX`.
    pub(crate) parents: Vec<u32>,
    pub(crate) bounds: Vec<u32>,
    pub(crate) inscosts: Vec<Cost>,
    pub(crate) pathcosts: Vec<Cost>,
    pub(crate) interner: Interner,
    /// Document registry: the ranges under the virtual root, in preorder.
    pub(crate) docs: Vec<DocSpan>,
}

impl DataTree {
    /// Number of nodes, including the virtual root.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// `true` only for a tree that was never built (the builder always adds
    /// a root).
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// The virtual super-root (preorder 0).
    pub fn root(&self) -> NodeId {
        NodeId(0)
    }

    fn check(&self, n: NodeId) -> usize {
        let i = n.index();
        assert!(i < self.len(), "node {n} out of bounds");
        i
    }

    /// The interned label id of `n`.
    pub fn label_id(&self, n: NodeId) -> LabelId {
        self.labels[self.check(n)]
    }

    /// The label string of `n`.
    pub fn label(&self, n: NodeId) -> &str {
        self.interner.resolve(self.label_id(n))
    }

    /// The node type of `n`.
    pub fn node_type(&self, n: NodeId) -> NodeType {
        self.types[self.check(n)]
    }

    /// The parent of `n`, or `None` for the root.
    pub fn parent(&self, n: NodeId) -> Option<NodeId> {
        let p = self.parents[self.check(n)];
        (p != u32::MAX).then_some(NodeId(p))
    }

    /// `bound(n)`: the largest preorder number in the subtree of `n`.
    pub fn bound(&self, n: NodeId) -> u32 {
        self.bounds[self.check(n)]
    }

    /// `inscost(n)`: the cost of inserting a node labeled like `n`.
    pub fn inscost(&self, n: NodeId) -> Cost {
        self.inscosts[self.check(n)]
    }

    /// `pathcost(n)`: sum of the insert costs of all proper ancestors.
    pub fn pathcost(&self, n: NodeId) -> Cost {
        self.pathcosts[self.check(n)]
    }

    /// The ancestor test of Section 6.2:
    /// `pre(a) < pre(d) && bound(a) >= pre(d)`.
    pub fn is_ancestor(&self, a: NodeId, d: NodeId) -> bool {
        a.0 < d.0 && self.bound(a) >= d.0
    }

    /// The insert-cost distance between an ancestor `a` and a descendant
    /// `d`: the sum of the insert costs of the nodes strictly between them.
    ///
    /// # Panics
    /// Panics (debug) if `a` is not an ancestor of `d`.
    pub fn distance(&self, a: NodeId, d: NodeId) -> Cost {
        debug_assert!(self.is_ancestor(a, d), "{a} is not an ancestor of {d}");
        self.pathcost(d)
            .checked_sub(self.pathcost(a))
            .and_then(|c| c.checked_sub(self.inscost(a)))
            .expect("pathcosts are finite and monotone along root paths")
    }

    /// Iterates over the children of `n` in document order.
    pub fn children(&self, n: NodeId) -> Children<'_> {
        let i = self.check(n);
        Children {
            tree: self,
            next: n.0 + 1,
            bound: self.bounds[i],
        }
    }

    /// Iterates over all nodes of the subtree rooted at `n` (including `n`)
    /// in preorder.
    pub fn descendants_inclusive(&self, n: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let b = self.bound(n);
        (n.0..=b).map(NodeId)
    }

    /// Depth of `n` (the root has depth 0).
    pub fn depth(&self, n: NodeId) -> usize {
        let mut d = 0;
        let mut cur = n;
        while let Some(p) = self.parent(cur) {
            d += 1;
            cur = p;
        }
        d
    }

    /// The label-type path from the root to `n` (Definition 13), root first.
    pub fn label_type_path(&self, n: NodeId) -> Vec<(LabelId, NodeType)> {
        let mut path = Vec::new();
        let mut cur = Some(n);
        while let Some(c) = cur {
            path.push((self.label_id(c), self.node_type(c)));
            cur = self.parent(c);
        }
        path.reverse();
        path
    }

    /// Looks up the id of a label string, if it occurs in the tree.
    pub fn lookup_label(&self, s: &str) -> Option<LabelId> {
        self.interner.get(s)
    }

    /// Resolves a label id to its string.
    pub fn resolve_label(&self, id: LabelId) -> &str {
        self.interner.resolve(id)
    }

    /// The label interner (read access).
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// All node ids in preorder, including tombstoned ranges.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.len() as u32).map(NodeId)
    }

    /// The document registry: one span per document ever inserted, in
    /// preorder, tombstones included.
    pub fn documents(&self) -> &[DocSpan] {
        &self.docs
    }

    /// The live document whose range contains `pre`, if any.
    pub fn doc_of(&self, pre: u32) -> Option<DocSpan> {
        let i = self
            .docs
            .partition_point(|d| d.start <= pre)
            .checked_sub(1)?;
        let d = self.docs[i];
        (pre <= d.bound && d.alive).then_some(d)
    }

    /// `true` if `n` is the virtual root or belongs to a live document.
    pub fn is_live(&self, n: NodeId) -> bool {
        n.0 == 0 || self.doc_of(n.0).is_some()
    }

    /// All live node ids in preorder (the root, then each live document's
    /// range).
    pub fn live_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        std::iter::once(NodeId(0)).chain(
            self.docs
                .iter()
                .filter(|d| d.alive)
                .flat_map(|d| (d.start..=d.bound).map(NodeId)),
        )
    }

    /// Number of live nodes, including the virtual root.
    pub fn live_node_count(&self) -> usize {
        1 + self
            .docs
            .iter()
            .filter(|d| d.alive)
            .map(|d| (d.bound - d.start + 1) as usize)
            .sum::<usize>()
    }

    /// Appends `doc` as a new document at the end of the preorder range
    /// and returns its span. Existing nodes keep their preorder numbers
    /// verbatim (gap-based labelling); only the virtual root's bound grows.
    pub fn append_document(&mut self, doc: &Document, costs: &CostModel) -> DocSpan {
        let start = self.labels.len() as u32;
        self.append_element(&doc.root, 0, costs);
        let n = self.labels.len();
        // Bounds right-to-left within the new range: propagate each child's
        // bound to its parent (mirrors DataTreeBuilder::build).
        for i in (start as usize..n).rev() {
            let p = self.parents[i] as usize;
            if p >= start as usize && self.bounds[i] > self.bounds[p] {
                self.bounds[p] = self.bounds[i];
            }
        }
        let bound = (n - 1) as u32;
        self.bounds[0] = bound;
        let span = DocSpan {
            start,
            bound,
            alive: true,
        };
        self.docs.push(span);
        span
    }

    /// Tombstones the document rooted at `root` (a live child of the
    /// virtual root) and returns its span. The node columns and every
    /// surviving preorder number are untouched; the root's bound is *not*
    /// shrunk (it only ever grows, which keeps it a valid upper bound).
    pub fn delete_document(&mut self, root: NodeId) -> Option<DocSpan> {
        let d = self
            .docs
            .iter_mut()
            .find(|d| d.start == root.0 && d.alive)?;
        d.alive = false;
        Some(*d)
    }

    fn append_node(&mut self, label: &str, ty: NodeType, parent: u32, costs: &CostModel) -> u32 {
        let pre = u32::try_from(self.labels.len()).expect("tree larger than u32 preorder space");
        self.labels.push(self.interner.intern(label));
        self.types.push(ty);
        self.parents.push(parent);
        self.bounds.push(pre);
        self.inscosts.push(costs.insert_cost(ty, label));
        let p = parent as usize;
        self.pathcosts.push(self.pathcosts[p] + self.inscosts[p]);
        pre
    }

    fn append_element(&mut self, el: &Element, parent: u32, costs: &CostModel) {
        let pre = self.append_node(&el.name, NodeType::Struct, parent, costs);
        for (name, value) in &el.attributes {
            let a = self.append_node(name, NodeType::Struct, pre, costs);
            for w in split_words(value) {
                self.append_node(&w, NodeType::Text, a, costs);
            }
        }
        for child in &el.children {
            match child {
                XmlNode::Element(e) => self.append_element(e, pre, costs),
                XmlNode::Text(t) => {
                    for w in split_words(t) {
                        self.append_node(&w, NodeType::Text, pre, costs);
                    }
                }
            }
        }
    }

    /// Reconstructs the subtree rooted at `n` as an XML element.
    ///
    /// Consecutive text-node children become one text run with words joined
    /// by single spaces. Attribute nodes come back as child elements (the
    /// data model deliberately erases the element/attribute distinction,
    /// see Section 4).
    pub fn subtree_element(&self, n: NodeId) -> Result<Element, TreeError> {
        if n.index() >= self.len() || !self.is_live(n) {
            return Err(TreeError::InvalidNode(n));
        }
        if self.node_type(n) != NodeType::Struct {
            return Err(TreeError::NotAStructNode(n));
        }
        let mut el = Element::new(self.label(n));
        let mut pending_words: Vec<&str> = Vec::new();
        for c in self.children(n) {
            match self.node_type(c) {
                NodeType::Text => pending_words.push(self.label(c)),
                NodeType::Struct => {
                    if !pending_words.is_empty() {
                        el = el.with_text(pending_words.join(" "));
                        pending_words.clear();
                    }
                    el = el.with_child(self.subtree_element(c)?);
                }
            }
        }
        if !pending_words.is_empty() {
            el = el.with_text(pending_words.join(" "));
        }
        Ok(el)
    }

    /// Aggregate statistics over the live nodes.
    pub fn stats(&self) -> TreeStats {
        let mut element_count = 0;
        let mut word_count = 0;
        let mut max_depth = 0;
        let mut depths = vec![0usize; self.len()];
        for n in self.live_nodes() {
            if n.0 != 0 {
                let p = self.parents[n.index()] as usize;
                depths[n.index()] = depths[p] + 1;
                max_depth = max_depth.max(depths[n.index()]);
                match self.node_type(n) {
                    NodeType::Struct => element_count += 1,
                    NodeType::Text => word_count += 1,
                }
            }
        }
        TreeStats {
            node_count: self.live_node_count(),
            element_count,
            word_count,
            distinct_labels: self.interner.len(),
            max_depth,
        }
    }
}

/// Iterator over the children of a node.
pub struct Children<'a> {
    tree: &'a DataTree,
    next: u32,
    bound: u32,
}

impl Iterator for Children<'_> {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        // Skip tombstoned documents: a dead doc root's bounds entry still
        // covers its whole range, so one jump clears the gap.
        while self.next <= self.bound {
            let id = NodeId(self.next);
            self.next = self.tree.bounds[id.index()] + 1;
            if self.tree.is_live(id) {
                return Some(id);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::DataTreeBuilder;
    use approxql_cost::CostModel;

    /// `root(cd(title("piano","concerto"), composer("rachmaninov")))`
    fn small_tree() -> DataTree {
        let mut b = DataTreeBuilder::new();
        b.begin_struct("cd");
        b.begin_struct("title");
        b.add_text("piano concerto");
        b.end();
        b.begin_struct("composer");
        b.add_text("rachmaninov");
        b.end();
        b.end();
        b.build(&CostModel::new())
    }

    #[test]
    fn preorder_layout() {
        let t = small_tree();
        // 0 root, 1 cd, 2 title, 3 "piano", 4 "concerto", 5 composer, 6 "rachmaninov"
        assert_eq!(t.len(), 7);
        assert_eq!(t.label(NodeId(1)), "cd");
        assert_eq!(t.label(NodeId(3)), "piano");
        assert_eq!(t.node_type(NodeId(3)), NodeType::Text);
        assert_eq!(t.label(NodeId(6)), "rachmaninov");
    }

    #[test]
    fn bounds_cover_subtrees() {
        let t = small_tree();
        assert_eq!(t.bound(NodeId(0)), 6);
        assert_eq!(t.bound(NodeId(1)), 6);
        assert_eq!(t.bound(NodeId(2)), 4);
        assert_eq!(t.bound(NodeId(3)), 3);
        assert_eq!(t.bound(NodeId(5)), 6);
    }

    #[test]
    fn ancestor_test_matches_definition() {
        let t = small_tree();
        assert!(t.is_ancestor(NodeId(1), NodeId(4)));
        assert!(t.is_ancestor(NodeId(0), NodeId(6)));
        assert!(!t.is_ancestor(NodeId(2), NodeId(5)));
        assert!(!t.is_ancestor(NodeId(4), NodeId(4)));
        assert!(!t.is_ancestor(NodeId(4), NodeId(1)));
    }

    #[test]
    fn parents_and_depths() {
        let t = small_tree();
        assert_eq!(t.parent(NodeId(0)), None);
        assert_eq!(t.parent(NodeId(1)), Some(NodeId(0)));
        assert_eq!(t.parent(NodeId(4)), Some(NodeId(2)));
        assert_eq!(t.depth(NodeId(0)), 0);
        assert_eq!(t.depth(NodeId(4)), 3);
    }

    #[test]
    fn children_iterator_skips_subtrees() {
        let t = small_tree();
        let kids: Vec<_> = t.children(NodeId(1)).collect();
        assert_eq!(kids, vec![NodeId(2), NodeId(5)]);
        let kids: Vec<_> = t.children(NodeId(3)).collect();
        assert!(kids.is_empty());
    }

    #[test]
    fn pathcost_telescopes() {
        // With the default model every insert costs 1, so pathcost == depth.
        let t = small_tree();
        for n in t.nodes() {
            assert_eq!(t.pathcost(n), Cost::finite(t.depth(n) as u64));
        }
    }

    #[test]
    fn distance_sums_intermediate_inserts() {
        let t = small_tree();
        // Between cd (1) and "piano" (3) lies only title: distance = 1.
        assert_eq!(t.distance(NodeId(1), NodeId(3)), Cost::finite(1));
        // Between root and "piano" lie cd and title: distance = 2.
        assert_eq!(t.distance(NodeId(0), NodeId(3)), Cost::finite(2));
        // Parent-child distance is zero.
        assert_eq!(t.distance(NodeId(2), NodeId(3)), Cost::ZERO);
    }

    #[test]
    fn label_type_path_starts_at_root() {
        let t = small_tree();
        let path = t.label_type_path(NodeId(3));
        let rendered: Vec<_> = path
            .iter()
            .map(|&(l, ty)| (t.resolve_label(l).to_owned(), ty))
            .collect();
        assert_eq!(
            rendered,
            vec![
                (
                    crate::builder::VIRTUAL_ROOT_LABEL.to_owned(),
                    NodeType::Struct
                ),
                ("cd".to_owned(), NodeType::Struct),
                ("title".to_owned(), NodeType::Struct),
                ("piano".to_owned(), NodeType::Text),
            ]
        );
    }

    #[test]
    fn subtree_element_reconstructs_xml() {
        let t = small_tree();
        let el = t.subtree_element(NodeId(1)).unwrap();
        assert_eq!(el.name, "cd");
        assert_eq!(el.child_elements().count(), 2);
        assert_eq!(
            el.find_child("title").unwrap().text_content(),
            "piano concerto"
        );
    }

    #[test]
    fn subtree_element_rejects_text_nodes() {
        let t = small_tree();
        assert_eq!(
            t.subtree_element(NodeId(3)),
            Err(TreeError::NotAStructNode(NodeId(3)))
        );
    }

    #[test]
    fn stats_count_node_kinds() {
        let t = small_tree();
        let s = t.stats();
        assert_eq!(s.node_count, 7);
        assert_eq!(s.element_count, 3);
        assert_eq!(s.word_count, 3);
        assert_eq!(s.max_depth, 3);
    }

    #[test]
    fn descendants_inclusive_covers_interval() {
        let t = small_tree();
        let d: Vec<_> = t.descendants_inclusive(NodeId(2)).collect();
        assert_eq!(d, vec![NodeId(2), NodeId(3), NodeId(4)]);
    }

    #[test]
    fn append_document_matches_batch_build() {
        use approxql_xml::parse_document;
        let costs = CostModel::new();
        let xml_a = r#"<cd year="1901"><title>Piano Concerto</title></cd>"#;
        let xml_b = "<cd><composer>Rachmaninov</composer></cd>";

        let mut incremental = {
            let mut b = DataTreeBuilder::new();
            b.add_document(&parse_document(xml_a).unwrap());
            b.build(&costs)
        };
        let span = incremental.append_document(&parse_document(xml_b).unwrap(), &costs);

        let batch = {
            let mut b = DataTreeBuilder::new();
            b.add_document(&parse_document(xml_a).unwrap());
            b.add_document(&parse_document(xml_b).unwrap());
            b.build(&costs)
        };
        assert_eq!(incremental.len(), batch.len());
        assert_eq!(span.bound as usize, batch.len() - 1);
        assert_eq!(incremental.documents(), batch.documents());
        for n in batch.nodes() {
            assert_eq!(incremental.label(n), batch.label(n), "label of {n}");
            assert_eq!(incremental.node_type(n), batch.node_type(n));
            assert_eq!(incremental.parent(n), batch.parent(n));
            assert_eq!(incremental.bound(n), batch.bound(n), "bound of {n}");
            assert_eq!(incremental.inscost(n), batch.inscost(n));
            assert_eq!(
                incremental.pathcost(n),
                batch.pathcost(n),
                "pathcost of {n}"
            );
        }
    }

    #[test]
    fn delete_document_tombstones_the_range() {
        use approxql_xml::parse_document;
        let costs = CostModel::new();
        let mut b = DataTreeBuilder::new();
        b.add_document(&parse_document("<a><x>one</x></a>").unwrap());
        b.add_document(&parse_document("<b>two</b>").unwrap());
        let mut t = b.build(&costs);
        let first = t.documents()[0];
        assert!(t.is_live(NodeId(first.start)));

        let deleted = t.delete_document(NodeId(first.start)).unwrap();
        assert_eq!(deleted.start, first.start);
        assert!(!t.is_live(NodeId(first.start)));
        assert!(!t.is_live(NodeId(first.bound)));
        // Second delete of the same doc is a no-op.
        assert!(t.delete_document(NodeId(first.start)).is_none());
        // Non-root nodes cannot be deleted.
        assert!(t.delete_document(NodeId(first.start + 1)).is_none());

        // The surviving document keeps its ids and the root skips the gap.
        let kids: Vec<_> = t
            .children(t.root())
            .map(|c| t.label(c).to_owned())
            .collect();
        assert_eq!(kids, vec!["b"]);
        let stats = t.stats();
        assert_eq!(stats.node_count, 1 + 2); // root + <b> + "two"
        assert_eq!(
            t.subtree_element(NodeId(first.start)),
            Err(TreeError::InvalidNode(NodeId(first.start)))
        );
        let live: Vec<_> = t.live_nodes().collect();
        assert_eq!(live.len(), t.live_node_count());
        assert!(live.iter().all(|&n| t.is_live(n)));
    }

    #[test]
    fn append_after_delete_leaves_the_gap() {
        use approxql_xml::parse_document;
        let costs = CostModel::new();
        let mut b = DataTreeBuilder::new();
        b.add_document(&parse_document("<a>one two</a>").unwrap());
        let mut t = b.build(&costs);
        let first = t.documents()[0];
        t.delete_document(NodeId(first.start)).unwrap();
        let span = t.append_document(&parse_document("<c/>").unwrap(), &costs);
        // New ids start after the tombstoned range — never reused.
        assert_eq!(span.start, first.bound + 1);
        assert_eq!(t.bound(t.root()), span.bound);
        let kids: Vec<_> = t
            .children(t.root())
            .map(|c| t.label(c).to_owned())
            .collect();
        assert_eq!(kids, vec!["c"]);
        assert!(t.is_ancestor(t.root(), NodeId(span.start)));
    }
}
