//! Textual cost files.
//!
//! The paper's query generator emits, next to each query, "a file that
//! contains the insert costs, the delete costs, and the renamings of the
//! query selectors". We fix a simple line-oriented format for those files:
//!
//! ```text
//! # comment
//! default insert 1
//! insert name title 3
//! insert term piano 2
//! delete name track 3
//! delete term concerto 6
//! rename name cd dvd 6
//! rename term concerto sonata 3
//! ```
//!
//! Labels containing whitespace are not supported (the data model splits
//! text into single words, and XML names contain no spaces).

use crate::{Cost, CostModel, NodeType};
use std::fmt;

/// Errors raised while parsing a cost file.
#[derive(Debug, PartialEq, Eq)]
pub struct CostFileError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for CostFileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cost file line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for CostFileError {}

fn parse_type(word: &str, line: usize) -> Result<NodeType, CostFileError> {
    match word {
        "name" => Ok(NodeType::Struct),
        "term" => Ok(NodeType::Text),
        other => Err(CostFileError {
            line,
            message: format!("expected `name` or `term`, found `{other}`"),
        }),
    }
}

fn parse_cost(word: &str, line: usize) -> Result<Cost, CostFileError> {
    word.parse::<Cost>().map_err(|_| CostFileError {
        line,
        message: format!("invalid cost `{word}`"),
    })
}

/// Parses a cost file into a [`CostModel`].
pub fn parse_cost_file(text: &str) -> Result<CostModel, CostFileError> {
    let mut builder = CostModel::builder();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let words: Vec<&str> = content.split_ascii_whitespace().collect();
        builder = match words.as_slice() {
            ["default", "insert", cost] => {
                let c = parse_cost(cost, line)?;
                let v = c.value().ok_or_else(|| CostFileError {
                    line,
                    message: "default insert cost must be finite".to_owned(),
                })?;
                builder.insert_default(v)
            }
            ["insert", ty, label, cost] => {
                let c = parse_cost(cost, line)?;
                if !c.is_finite() {
                    return Err(CostFileError {
                        line,
                        message: format!("insert cost for `{label}` must be finite"),
                    });
                }
                builder.insert(parse_type(ty, line)?, label, c)
            }
            ["delete", ty, label, cost] => {
                builder.delete(parse_type(ty, line)?, label, parse_cost(cost, line)?)
            }
            ["rename", ty, from, to, cost] => {
                if from == to {
                    return Err(CostFileError {
                        line,
                        message: format!("rename of `{from}` to itself is not allowed"),
                    });
                }
                builder.rename(parse_type(ty, line)?, from, to, parse_cost(cost, line)?)
            }
            _ => {
                return Err(CostFileError {
                    line,
                    message: format!("unrecognized directive `{content}`"),
                })
            }
        };
    }
    Ok(builder.build())
}

/// Serializes a [`CostModel`] in the cost-file format, deterministically
/// sorted so output is diff-friendly. `parse_cost_file` of the output
/// reproduces the model.
pub fn write_cost_file(model: &CostModel) -> String {
    let mut out = String::new();
    out.push_str(&format!("default insert {}\n", model.insert_default()));
    let mut inserts: Vec<_> = model.listed_inserts().collect();
    inserts.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
    for (ty, label, cost) in inserts {
        out.push_str(&format!("insert {} {} {}\n", ty.keyword(), label, cost));
    }
    let mut deletes: Vec<_> = model.listed_deletes().collect();
    deletes.sort_by(|a, b| (a.0, a.1).cmp(&(b.0, b.1)));
    for (ty, label, cost) in deletes {
        out.push_str(&format!("delete {} {} {}\n", ty.keyword(), label, cost));
    }
    let mut renames: Vec<_> = model.listed_renames().collect();
    renames.sort_by(|a, b| (a.0, a.1, a.2).cmp(&(b.0, b.1, b.2)));
    for (ty, from, to, cost) in renames {
        out.push_str(&format!(
            "rename {} {} {} {}\n",
            ty.keyword(),
            from,
            to,
            cost
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = r#"
# Section 6 example (excerpt)
default insert 1
insert name title 3
insert name cd 2
delete name track 3
delete term concerto 6
rename name cd dvd 6
rename name cd mc 4
rename term concerto sonata 3
"#;

    #[test]
    fn parses_sample() {
        let m = parse_cost_file(SAMPLE).unwrap();
        assert_eq!(m.insert_cost(NodeType::Struct, "title"), Cost::finite(3));
        assert_eq!(m.insert_cost(NodeType::Struct, "other"), Cost::finite(1));
        assert_eq!(m.delete_cost(NodeType::Struct, "track"), Cost::finite(3));
        assert_eq!(m.rename_cost(NodeType::Struct, "cd", "mc"), Cost::finite(4));
        assert_eq!(
            m.rename_cost(NodeType::Text, "concerto", "sonata"),
            Cost::finite(3)
        );
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let m = parse_cost_file("\n  # only comments\n\n").unwrap();
        assert!(m.is_empty());
    }

    #[test]
    fn trailing_comment_on_directive() {
        let m = parse_cost_file("delete name a 5 # why not\n").unwrap();
        assert_eq!(m.delete_cost(NodeType::Struct, "a"), Cost::finite(5));
    }

    #[test]
    fn infinite_delete_is_allowed_explicitly() {
        let m = parse_cost_file("delete name a inf\n").unwrap();
        assert_eq!(m.delete_cost(NodeType::Struct, "a"), Cost::INFINITY);
    }

    #[test]
    fn rejects_infinite_insert() {
        let err = parse_cost_file("insert name a inf\n").unwrap_err();
        assert_eq!(err.line, 1);
    }

    #[test]
    fn rejects_unknown_directive() {
        let err = parse_cost_file("frobnicate name a 1\n").unwrap_err();
        assert!(err.message.contains("unrecognized"));
    }

    #[test]
    fn rejects_bad_type() {
        let err = parse_cost_file("delete widget a 1\n").unwrap_err();
        assert!(err.message.contains("expected `name` or `term`"));
    }

    #[test]
    fn rejects_self_rename() {
        let err = parse_cost_file("rename name a a 1\n").unwrap_err();
        assert!(err.message.contains("itself"));
    }

    #[test]
    fn reports_line_numbers() {
        let err = parse_cost_file("default insert 1\nbogus\n").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn write_then_parse_roundtrips() {
        let m = parse_cost_file(SAMPLE).unwrap();
        let text = write_cost_file(&m);
        let m2 = parse_cost_file(&text).unwrap();
        assert_eq!(write_cost_file(&m2), text);
        assert_eq!(m2.len(), m.len());
        assert_eq!(
            m2.rename_cost(NodeType::Struct, "cd", "dvd"),
            Cost::finite(6)
        );
    }
}
