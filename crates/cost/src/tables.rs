//! Canonical cost tables from the paper, used by tests, examples, and the
//! paper-example integration suite.

use crate::{Cost, CostModel, NodeType};

/// The example cost table of Section 6:
///
/// | insertion | cost | deletion     | cost | renaming              | cost |
/// |-----------|------|--------------|------|-----------------------|------|
/// | category  | 4    | composer     | 7    | cd → dvd              | 6    |
/// | cd        | 2    | "concerto"   | 6    | cd → mc               | 4    |
/// | composer  | 5    | "piano"      | 8    | composer → performer  | 4    |
/// | performer | 5    | title        | 5    | "concerto" → "sonata" | 3    |
/// | title     | 3    | track        | 3    | title → category      | 4    |
///
/// All unlisted delete and rename costs are infinite; all remaining insert
/// costs are 1.
pub fn paper_section6_costs() -> CostModel {
    CostModel::builder()
        .insert_default(1)
        .insert(NodeType::Struct, "category", Cost::finite(4))
        .insert(NodeType::Struct, "cd", Cost::finite(2))
        .insert(NodeType::Struct, "composer", Cost::finite(5))
        .insert(NodeType::Struct, "performer", Cost::finite(5))
        .insert(NodeType::Struct, "title", Cost::finite(3))
        .delete(NodeType::Struct, "composer", Cost::finite(7))
        .delete(NodeType::Text, "concerto", Cost::finite(6))
        .delete(NodeType::Text, "piano", Cost::finite(8))
        .delete(NodeType::Struct, "title", Cost::finite(5))
        .delete(NodeType::Struct, "track", Cost::finite(3))
        .rename(NodeType::Struct, "cd", "dvd", Cost::finite(6))
        .rename(NodeType::Struct, "cd", "mc", Cost::finite(4))
        .rename(NodeType::Struct, "composer", "performer", Cost::finite(4))
        .rename(NodeType::Text, "concerto", "sonata", Cost::finite(3))
        .rename(NodeType::Struct, "title", "category", Cost::finite(4))
        .build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn section6_table_matches_paper() {
        let m = paper_section6_costs();
        assert_eq!(m.insert_cost(NodeType::Struct, "category"), Cost::finite(4));
        assert_eq!(m.insert_cost(NodeType::Struct, "cd"), Cost::finite(2));
        assert_eq!(m.insert_cost(NodeType::Struct, "tracks"), Cost::finite(1));
        assert_eq!(m.delete_cost(NodeType::Struct, "track"), Cost::finite(3));
        assert_eq!(m.delete_cost(NodeType::Text, "piano"), Cost::finite(8));
        assert_eq!(m.delete_cost(NodeType::Struct, "cd"), Cost::INFINITY);
        assert_eq!(
            m.rename_cost(NodeType::Struct, "cd", "dvd"),
            Cost::finite(6)
        );
        assert_eq!(
            m.rename_cost(NodeType::Struct, "title", "category"),
            Cost::finite(4)
        );
        assert_eq!(
            m.rename_cost(NodeType::Text, "concerto", "sonata"),
            Cost::finite(3)
        );
        assert_eq!(m.len(), 15);
    }
}
