#![forbid(unsafe_code)]
//! Cost model for approximate tree-pattern queries.
//!
//! This crate implements Definition 6 of Schlieder (EDBT 2002): every basic
//! query transformation (node insertion, deletion, renaming) has a
//! non-negative cost, and — in the "simplest variant" chosen by the paper —
//! costs are *bound to the labels* of the involved nodes.
//!
//! The defaults mirror Section 6 of the paper:
//!
//! * all unlisted **insert** costs are `1`,
//! * all unlisted **delete** and **rename** costs are *infinite*.
//!
//! [`Cost`] is a saturating integral cost with an explicit infinity, so the
//! bottom-up evaluation algorithms can add costs freely without overflow and
//! can represent "transformation not allowed" uniformly.

mod model;
mod parse;
pub mod tables;

pub use model::{CostModel, CostModelBuilder, CostModelError, NodeType};
pub use parse::{parse_cost_file, write_cost_file, CostFileError};

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// A non-negative transformation or embedding cost with an explicit infinity.
///
/// Internally a `u64` where `u64::MAX` is reserved for [`Cost::INFINITY`].
/// Addition saturates at infinity, which models "a forbidden transformation
/// stays forbidden no matter what is added to it".
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Cost(u64);

impl Cost {
    /// The zero cost (an exact match / the empty transformation sequence).
    pub const ZERO: Cost = Cost(0);
    /// The cost of a forbidden transformation.
    pub const INFINITY: Cost = Cost(u64::MAX);

    /// Creates a finite cost. Panics if `v` equals the infinity sentinel.
    #[inline]
    pub fn finite(v: u64) -> Cost {
        assert!(
            v != u64::MAX,
            "Cost::finite called with the infinity sentinel"
        );
        Cost(v)
    }

    /// Creates a cost from a raw value; `u64::MAX` maps to infinity.
    #[inline]
    pub const fn from_raw(v: u64) -> Cost {
        Cost(v)
    }

    /// Returns `true` unless this is [`Cost::INFINITY`].
    #[inline]
    pub const fn is_finite(self) -> bool {
        self.0 != u64::MAX
    }

    /// Returns the finite value, or `None` for infinity.
    #[inline]
    pub const fn value(self) -> Option<u64> {
        if self.is_finite() {
            Some(self.0)
        } else {
            None
        }
    }

    /// Raw representation (infinity is `u64::MAX`).
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Saturating addition: anything plus infinity is infinity.
    #[inline]
    pub fn saturating_add(self, rhs: Cost) -> Cost {
        if !self.is_finite() || !rhs.is_finite() {
            Cost::INFINITY
        } else {
            match self.0.checked_add(rhs.0) {
                Some(v) if v != u64::MAX => Cost(v),
                _ => Cost::INFINITY,
            }
        }
    }

    /// Checked subtraction between finite costs.
    ///
    /// Used for the `distance` computation of Section 6.2, where
    /// `pathcost(v) - pathcost(u) - inscost(u)` is taken between encoded
    /// nodes on the same root path. Returns `None` if either operand is
    /// infinite or the difference would be negative.
    #[inline]
    pub fn checked_sub(self, rhs: Cost) -> Option<Cost> {
        if self.is_finite() && rhs.is_finite() {
            self.0.checked_sub(rhs.0).map(Cost)
        } else {
            None
        }
    }

    /// The smaller of two costs.
    #[inline]
    pub fn min(self, rhs: Cost) -> Cost {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }
}

impl Add for Cost {
    type Output = Cost;
    #[inline]
    fn add(self, rhs: Cost) -> Cost {
        self.saturating_add(rhs)
    }
}

impl AddAssign for Cost {
    #[inline]
    fn add_assign(&mut self, rhs: Cost) {
        *self = *self + rhs;
    }
}

impl Sum for Cost {
    fn sum<I: Iterator<Item = Cost>>(iter: I) -> Cost {
        iter.fold(Cost::ZERO, Cost::add)
    }
}

impl From<u64> for Cost {
    fn from(v: u64) -> Cost {
        Cost::finite(v)
    }
}

impl fmt::Debug for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl fmt::Display for Cost {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_finite() {
            write!(f, "{}", self.0)
        } else {
            write!(f, "inf")
        }
    }
}

impl std::str::FromStr for Cost {
    type Err = std::num::ParseIntError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        if s.eq_ignore_ascii_case("inf") || s.eq_ignore_ascii_case("infinity") {
            return Ok(Cost::INFINITY);
        }
        s.parse::<u64>().map(Cost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_finite() {
        assert!(Cost::ZERO.is_finite());
        assert_eq!(Cost::ZERO.value(), Some(0));
    }

    #[test]
    fn infinity_is_not_finite() {
        assert!(!Cost::INFINITY.is_finite());
        assert_eq!(Cost::INFINITY.value(), None);
    }

    #[test]
    fn addition_saturates_at_infinity() {
        assert_eq!(Cost::finite(3) + Cost::finite(4), Cost::finite(7));
        assert_eq!(Cost::finite(3) + Cost::INFINITY, Cost::INFINITY);
        assert_eq!(Cost::INFINITY + Cost::finite(3), Cost::INFINITY);
        assert_eq!(Cost::INFINITY + Cost::INFINITY, Cost::INFINITY);
    }

    #[test]
    fn addition_overflow_saturates() {
        let near_max = Cost::finite(u64::MAX - 2);
        assert_eq!(near_max + Cost::finite(100), Cost::INFINITY);
    }

    #[test]
    fn ordering_puts_infinity_last() {
        assert!(Cost::finite(1_000_000) < Cost::INFINITY);
        assert!(Cost::ZERO < Cost::finite(1));
    }

    #[test]
    fn checked_sub_between_finite() {
        assert_eq!(
            Cost::finite(9).checked_sub(Cost::finite(3)),
            Some(Cost::finite(6))
        );
        assert_eq!(Cost::finite(3).checked_sub(Cost::finite(9)), None);
        assert_eq!(Cost::INFINITY.checked_sub(Cost::finite(1)), None);
        assert_eq!(Cost::finite(1).checked_sub(Cost::INFINITY), None);
    }

    #[test]
    fn sum_of_costs() {
        let s: Cost = [1u64, 2, 3].into_iter().map(Cost::finite).sum();
        assert_eq!(s, Cost::finite(6));
        let s: Cost = [Cost::finite(1), Cost::INFINITY].into_iter().sum();
        assert_eq!(s, Cost::INFINITY);
    }

    #[test]
    fn display_and_parse_roundtrip() {
        assert_eq!(format!("{}", Cost::finite(42)), "42");
        assert_eq!(format!("{}", Cost::INFINITY), "inf");
        assert_eq!("42".parse::<Cost>().unwrap(), Cost::finite(42));
        assert_eq!("inf".parse::<Cost>().unwrap(), Cost::INFINITY);
        assert_eq!("Infinity".parse::<Cost>().unwrap(), Cost::INFINITY);
    }

    #[test]
    #[should_panic]
    fn finite_rejects_sentinel() {
        let _ = Cost::finite(u64::MAX);
    }

    #[test]
    fn min_picks_smaller() {
        assert_eq!(Cost::finite(3).min(Cost::finite(5)), Cost::finite(3));
        assert_eq!(Cost::INFINITY.min(Cost::finite(5)), Cost::finite(5));
    }
}
