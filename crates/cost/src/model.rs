//! The label-bound cost model (Definition 6, "simplest variant").

use crate::Cost;
use std::collections::HashMap;
use std::fmt;

/// The two node types of the data model of Section 4.
///
/// `Struct` nodes represent elements and attribute names; `Text` nodes
/// represent single words of element text or attribute values. Queries are
/// typed the same way: name selectors map to `Struct`, text selectors to
/// `Text`. Costs are keyed by `(NodeType, label)` so that an element named
/// `concerto` and the word `"concerto"` can carry different costs.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum NodeType {
    /// An element or attribute-name node.
    Struct,
    /// A single word of text or of an attribute value.
    Text,
}

impl NodeType {
    /// Short lowercase name used in cost files (`name` / `term`).
    pub fn keyword(self) -> &'static str {
        match self {
            NodeType::Struct => "name",
            NodeType::Text => "term",
        }
    }
}

impl fmt::Display for NodeType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// Errors raised while building a [`CostModel`].
#[derive(Debug, PartialEq, Eq)]
pub enum CostModelError {
    /// Insert costs must be finite: they enter `pathcost` sums on every data
    /// node and an infinite value would poison the distance computation.
    InfiniteInsertCost { label: String },
    /// A rename from a label to itself is meaningless (it is the identity).
    SelfRename { label: String },
}

impl fmt::Display for CostModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CostModelError::InfiniteInsertCost { label } => {
                write!(f, "insert cost for label `{label}` must be finite")
            }
            CostModelError::SelfRename { label } => {
                write!(f, "rename of label `{label}` to itself is not allowed")
            }
        }
    }
}

impl std::error::Error for CostModelError {}

type LabelKey = (NodeType, String);

/// Costs of the basic query transformations, bound to labels.
///
/// Lookup semantics follow Section 6 of the paper:
///
/// * [`CostModel::insert_cost`] falls back to a finite default (paper: `1`),
/// * [`CostModel::delete_cost`] and [`CostModel::rename_cost`] fall back to
///   [`Cost::INFINITY`] ("all delete and rename costs not listed in the
///   table are infinite").
#[derive(Clone, Debug, Default)]
pub struct CostModel {
    insert_default: u64,
    insert: HashMap<LabelKey, Cost>,
    delete: HashMap<LabelKey, Cost>,
    /// `(type, from) -> [(to, cost)]`, kept sorted by `to` for determinism.
    rename: HashMap<LabelKey, Vec<(String, Cost)>>,
}

impl CostModel {
    /// An empty model: inserts cost 1, deletes and renames are forbidden.
    pub fn new() -> CostModel {
        CostModel {
            insert_default: 1,
            ..CostModel::default()
        }
    }

    /// Starts building a model.
    pub fn builder() -> CostModelBuilder {
        CostModelBuilder {
            model: CostModel::new(),
        }
    }

    /// The default insert cost applied to unlisted labels.
    pub fn insert_default(&self) -> Cost {
        Cost::finite(self.insert_default)
    }

    /// Cost of inserting a node with this label into a query. Always finite.
    pub fn insert_cost(&self, ty: NodeType, label: &str) -> Cost {
        self.insert
            .get(&(ty, label.to_owned()))
            .copied()
            .unwrap_or(Cost::finite(self.insert_default))
    }

    /// Cost of deleting a query node with this label (infinite if unlisted).
    pub fn delete_cost(&self, ty: NodeType, label: &str) -> Cost {
        self.delete
            .get(&(ty, label.to_owned()))
            .copied()
            .unwrap_or(Cost::INFINITY)
    }

    /// Cost of renaming `from` to `to` (infinite if unlisted).
    pub fn rename_cost(&self, ty: NodeType, from: &str, to: &str) -> Cost {
        if from == to {
            return Cost::ZERO;
        }
        self.rename
            .get(&(ty, from.to_owned()))
            .and_then(|v| v.iter().find(|(t, _)| t == to).map(|&(_, c)| c))
            .unwrap_or(Cost::INFINITY)
    }

    /// All finite renamings of a label, sorted by target label.
    pub fn renamings(&self, ty: NodeType, from: &str) -> &[(String, Cost)] {
        self.rename
            .get(&(ty, from.to_owned()))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Iterates over all explicitly listed insert costs.
    pub fn listed_inserts(&self) -> impl Iterator<Item = (NodeType, &str, Cost)> {
        self.insert.iter().map(|((ty, l), c)| (*ty, l.as_str(), *c))
    }

    /// Iterates over all explicitly listed delete costs.
    pub fn listed_deletes(&self) -> impl Iterator<Item = (NodeType, &str, Cost)> {
        self.delete.iter().map(|((ty, l), c)| (*ty, l.as_str(), *c))
    }

    /// Iterates over all explicitly listed renamings.
    pub fn listed_renames(&self) -> impl Iterator<Item = (NodeType, &str, &str, Cost)> {
        self.rename.iter().flat_map(|((ty, from), v)| {
            v.iter()
                .map(move |(to, c)| (*ty, from.as_str(), to.as_str(), *c))
        })
    }

    /// Number of explicitly listed entries (inserts + deletes + renames).
    pub fn len(&self) -> usize {
        self.insert.len() + self.delete.len() + self.rename.values().map(Vec::len).sum::<usize>()
    }

    /// `true` if no explicit costs are listed.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Builder for [`CostModel`].
#[derive(Clone, Debug)]
pub struct CostModelBuilder {
    model: CostModel,
}

impl CostModelBuilder {
    /// Sets the default insert cost for unlisted labels (paper: `1`).
    pub fn insert_default(mut self, cost: u64) -> Self {
        self.model.insert_default = cost;
        self
    }

    /// Lists an explicit insert cost. The cost must be finite.
    pub fn insert(mut self, ty: NodeType, label: &str, cost: Cost) -> Self {
        assert!(
            cost.is_finite(),
            "insert cost for `{label}` must be finite (it enters pathcost sums)"
        );
        self.model.insert.insert((ty, label.to_owned()), cost);
        self
    }

    /// Lists an explicit delete cost.
    pub fn delete(mut self, ty: NodeType, label: &str, cost: Cost) -> Self {
        self.model.delete.insert((ty, label.to_owned()), cost);
        self
    }

    /// Lists an explicit rename cost. Self-renames are rejected.
    pub fn rename(mut self, ty: NodeType, from: &str, to: &str, cost: Cost) -> Self {
        assert!(from != to, "rename of `{from}` to itself is not allowed");
        let entry = self.model.rename.entry((ty, from.to_owned())).or_default();
        match entry.iter_mut().find(|(t, _)| t == to) {
            Some(slot) => slot.1 = cost,
            None => {
                entry.push((to.to_owned(), cost));
                entry.sort_by(|a, b| a.0.cmp(&b.0));
            }
        }
        self
    }

    /// Finishes the model.
    pub fn build(self) -> CostModel {
        self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CostModel {
        CostModel::builder()
            .insert_default(1)
            .insert(NodeType::Struct, "title", Cost::finite(3))
            .delete(NodeType::Struct, "track", Cost::finite(3))
            .delete(NodeType::Text, "concerto", Cost::finite(6))
            .rename(NodeType::Struct, "cd", "dvd", Cost::finite(6))
            .rename(NodeType::Struct, "cd", "mc", Cost::finite(4))
            .rename(NodeType::Text, "concerto", "sonata", Cost::finite(3))
            .build()
    }

    #[test]
    fn insert_defaults_to_one() {
        let m = sample();
        assert_eq!(m.insert_cost(NodeType::Struct, "unknown"), Cost::finite(1));
        assert_eq!(m.insert_cost(NodeType::Struct, "title"), Cost::finite(3));
    }

    #[test]
    fn delete_defaults_to_infinity() {
        let m = sample();
        assert_eq!(m.delete_cost(NodeType::Struct, "unknown"), Cost::INFINITY);
        assert_eq!(m.delete_cost(NodeType::Struct, "track"), Cost::finite(3));
        assert_eq!(m.delete_cost(NodeType::Text, "concerto"), Cost::finite(6));
    }

    #[test]
    fn deletes_are_typed() {
        let m = sample();
        // `concerto` the *element* is not deletable, only the word is.
        assert_eq!(m.delete_cost(NodeType::Struct, "concerto"), Cost::INFINITY);
    }

    #[test]
    fn rename_defaults_to_infinity() {
        let m = sample();
        assert_eq!(
            m.rename_cost(NodeType::Struct, "cd", "dvd"),
            Cost::finite(6)
        );
        assert_eq!(m.rename_cost(NodeType::Struct, "cd", "vhs"), Cost::INFINITY);
    }

    #[test]
    fn identity_rename_is_free() {
        let m = sample();
        assert_eq!(m.rename_cost(NodeType::Struct, "cd", "cd"), Cost::ZERO);
    }

    #[test]
    fn renamings_are_sorted_by_target() {
        let m = sample();
        let r = m.renamings(NodeType::Struct, "cd");
        assert_eq!(
            r,
            &[
                ("dvd".to_owned(), Cost::finite(6)),
                ("mc".to_owned(), Cost::finite(4))
            ]
        );
        assert!(m.renamings(NodeType::Struct, "title").is_empty());
    }

    #[test]
    fn rename_overwrite_updates_cost() {
        let m = CostModel::builder()
            .rename(NodeType::Struct, "a", "b", Cost::finite(5))
            .rename(NodeType::Struct, "a", "b", Cost::finite(2))
            .build();
        assert_eq!(m.rename_cost(NodeType::Struct, "a", "b"), Cost::finite(2));
        assert_eq!(m.renamings(NodeType::Struct, "a").len(), 1);
    }

    #[test]
    #[should_panic]
    fn self_rename_panics() {
        let _ = CostModel::builder().rename(NodeType::Struct, "a", "a", Cost::finite(1));
    }

    #[test]
    #[should_panic]
    fn infinite_insert_panics() {
        let _ = CostModel::builder().insert(NodeType::Struct, "a", Cost::INFINITY);
    }

    #[test]
    fn len_counts_all_entries() {
        let m = sample();
        assert_eq!(m.len(), 1 + 2 + 3);
        assert!(!m.is_empty());
        assert!(CostModel::new().is_empty());
    }
}
