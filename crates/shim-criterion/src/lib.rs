#![forbid(unsafe_code)]
//! Offline drop-in subset of the `criterion` API.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of criterion its benches use: `Criterion`,
//! `benchmark_group` / `bench_function` / `bench_with_input`,
//! `BenchmarkId`, `Bencher::iter`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is a plain wall-clock loop (warm-up, then timed batches
//! until ~200 ms or 10k iterations) reporting mean ns/iter to stdout —
//! no statistics, plots, or baselines. Good enough to eyeball relative
//! cost; the repo's *regression* story is the deterministic counter
//! tests, not these timings.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Entry point handed to benchmark functions.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// A one-off benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.to_string(), &mut f);
        self
    }
}

/// A named set of benchmarks (prefixes the reported ids).
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim's loop is adaptive.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; throughput is not reported.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&format!("{}/{}", self.name, id), &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id));
        self
    }

    pub fn finish(self) {}
}

/// A benchmark id with an optional parameter (`name/param`).
pub struct BenchmarkId {
    repr: String,
}

impl BenchmarkId {
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            repr: format!("{name}/{parameter}"),
        }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            repr: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.repr)
    }
}

/// Runs and times one routine (`b.iter(|| ...)`).
#[derive(Default)]
pub struct Bencher {
    mean_ns: Option<f64>,
    iters: u64,
}

impl Bencher {
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up.
        for _ in 0..3 {
            black_box(routine());
        }
        let budget = Duration::from_millis(200);
        let start = Instant::now();
        let mut iters = 0u64;
        while start.elapsed() < budget && iters < 10_000 {
            black_box(routine());
            iters += 1;
        }
        let total = start.elapsed();
        self.iters = iters.max(1);
        self.mean_ns = Some(total.as_nanos() as f64 / self.iters as f64);
    }

    fn report(&self, id: &str) {
        match self.mean_ns {
            Some(ns) => println!(
                "{id:<50} time: {:>12} /iter  ({} iterations)",
                format_ns(ns),
                self.iters
            ),
            None => println!("{id:<50} (no measurement)"),
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn run_one<F: FnMut(&mut Bencher)>(id: &str, f: &mut F) {
    let mut bencher = Bencher::default();
    f(&mut bencher);
    bencher.report(id);
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let _ = $config;
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags (e.g. `--bench`); the
            // shim runs everything unconditionally.
            $($group();)+
        }
    };
}
