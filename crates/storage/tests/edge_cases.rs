//! Storage edge cases: maximum-length keys, prefix scans crossing leaf
//! splits, multi-page out-of-line value runs, and torn-header detection.

use approxql_metrics::Metric;
use approxql_storage::{StorageError, Store, MAX_KEY_LEN, PAGE_SIZE};
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("axql-edge-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

#[test]
fn max_key_len_keys_are_stored_and_ordered() {
    let mut s = Store::in_memory().unwrap();
    // Keys of exactly MAX_KEY_LEN bytes round-trip; one byte more errors.
    for i in 0..20u8 {
        let mut k = vec![i; MAX_KEY_LEN];
        *k.last_mut().unwrap() = 19 - i; // distinct tails, reversed order
        s.put(&k, &[i]).unwrap();
    }
    let too_long = vec![0xAB; MAX_KEY_LEN + 1];
    assert!(matches!(
        s.put(&too_long, b"v"),
        Err(StorageError::KeyTooLong(n)) if n == MAX_KEY_LEN + 1
    ));
    assert_eq!(s.get(&too_long).unwrap(), None);
    let all = s.iter_all().unwrap().collect_all().unwrap();
    assert_eq!(all.len(), 20);
    // Key order is byte order, independent of insertion order.
    assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
    for (k, v) in &all {
        assert_eq!(k.len(), MAX_KEY_LEN);
        assert_eq!(k[0], v[0]);
    }
}

#[test]
fn prefix_scan_spans_leaf_splits() {
    let baseline = approxql_metrics::snapshot();
    let mut s = Store::in_memory().unwrap();
    // Interleave three prefixes so the splits happen mid-prefix; enough
    // entries that the shared "b#" range is forced across several leaves.
    for i in 0..1500u32 {
        for p in ["a", "b", "c"] {
            s.put(format!("{p}#{i:06}").as_bytes(), &i.to_le_bytes())
                .unwrap();
        }
    }
    let splits = approxql_metrics::snapshot()
        .diff(&baseline)
        .get(Metric::BtreeNodeSplits);
    assert!(splits > 0, "expected leaf splits, counted {splits}");
    let hits = s.scan_prefix(b"b#").unwrap().collect_all().unwrap();
    assert_eq!(hits.len(), 1500);
    assert!(hits.windows(2).all(|w| w[0].0 < w[1].0));
    assert!(hits.iter().all(|(k, _)| k.starts_with(b"b#")));
    // The scan crossed leaves: count its cursor steps for good measure.
    let before = approxql_metrics::snapshot();
    let again = s.scan_prefix(b"b#").unwrap().collect_all().unwrap();
    let steps = approxql_metrics::snapshot()
        .diff(&before)
        .get(Metric::BtreeScanSteps);
    assert_eq!(again.len(), 1500);
    assert!(steps >= 1500, "scan yielded {steps} steps");
}

#[test]
fn out_of_line_value_runs_survive_reopen() {
    let dir = tmpdir("runs");
    let path = dir.join("runs.db");
    // Values from sub-page to several pages, including exact multiples.
    let sizes = [
        1,
        PAGE_SIZE - 1,
        PAGE_SIZE,
        PAGE_SIZE + 1,
        3 * PAGE_SIZE,
        5 * PAGE_SIZE + 17,
    ];
    {
        let mut s = Store::create_file(&path).unwrap();
        for (i, &sz) in sizes.iter().enumerate() {
            let v: Vec<u8> = (0..sz).map(|j| ((i * 31 + j) % 251) as u8).collect();
            s.put(format!("val{i}").as_bytes(), &v).unwrap();
        }
        s.commit().unwrap();
    }
    {
        let mut s = Store::open_file(&path).unwrap();
        for (i, &sz) in sizes.iter().enumerate() {
            let want: Vec<u8> = (0..sz).map(|j| ((i * 31 + j) % 251) as u8).collect();
            assert_eq!(
                s.get(format!("val{i}").as_bytes()).unwrap(),
                Some(want),
                "value {i} ({sz} bytes) corrupted across reopen"
            );
        }
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_header_write_is_detected_on_reopen() {
    let dir = tmpdir("torn");
    let path = dir.join("torn.db");
    // First commit: small tree, root R1. Second commit: enough inserts to
    // split the root, so the header's root pointer changes to R2.
    let old_header: Vec<u8>;
    {
        let mut s = Store::create_file(&path).unwrap();
        s.put(b"seed", b"v").unwrap();
        s.commit().unwrap();
        old_header = std::fs::read(&path).unwrap()[..PAGE_SIZE].to_vec();
        for i in 0..2000u32 {
            s.put(format!("key{i:06}").as_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        s.commit().unwrap();
    }
    let mut bytes = std::fs::read(&path).unwrap();
    assert_ne!(
        &bytes[12..16],
        &old_header[12..16],
        "test premise: the root pointer must have moved"
    );
    // Simulate a torn header write: the root-pointer word reverted to the
    // pre-commit value while the checksum (written later in the page) is
    // the new one — exactly the partial state a mid-write crash leaves.
    bytes[12..16].copy_from_slice(&old_header[12..16]);
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        Store::open_file(&path),
        Err(StorageError::CorruptHeader)
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}
