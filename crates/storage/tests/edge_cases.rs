//! Storage edge cases: maximum-length keys, prefix scans crossing leaf
//! splits, multi-page out-of-line value runs, and the open-path failure
//! matrix — torn headers, zero-length/truncated files, over-claiming
//! headers, and reopening after compaction. Every bad input must yield a
//! typed error (or a clean rollback), never a panic.

use approxql_metrics::Metric;
use approxql_storage::{StorageError, Store, MAX_KEY_LEN, PAGE_SIZE};
use std::path::PathBuf;

fn tmpdir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!("axql-edge-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&d).unwrap();
    d
}

/// FNV-1a 64 — mirrors the store's checksum so tests can forge
/// validly-checksummed (but hostile) header slots.
fn fnv64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn restamp_trailer(page: &mut [u8]) {
    let sum = fnv64(&page[..PAGE_SIZE - 8]);
    page[PAGE_SIZE - 8..PAGE_SIZE].copy_from_slice(&sum.to_le_bytes());
}

#[test]
fn max_key_len_keys_are_stored_and_ordered() {
    let mut s = Store::in_memory().unwrap();
    // Keys of exactly MAX_KEY_LEN bytes round-trip; one byte more errors.
    for i in 0..20u8 {
        let mut k = vec![i; MAX_KEY_LEN];
        *k.last_mut().unwrap() = 19 - i; // distinct tails, reversed order
        s.put(&k, &[i]).unwrap();
    }
    let too_long = vec![0xAB; MAX_KEY_LEN + 1];
    assert!(matches!(
        s.put(&too_long, b"v"),
        Err(StorageError::KeyTooLong(n)) if n == MAX_KEY_LEN + 1
    ));
    assert_eq!(s.get(&too_long).unwrap(), None);
    let all = s.iter_all().unwrap().collect_all().unwrap();
    assert_eq!(all.len(), 20);
    // Key order is byte order, independent of insertion order.
    assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
    for (k, v) in &all {
        assert_eq!(k.len(), MAX_KEY_LEN);
        assert_eq!(k[0], v[0]);
    }
}

#[test]
fn prefix_scan_spans_leaf_splits() {
    let baseline = approxql_metrics::snapshot();
    let mut s = Store::in_memory().unwrap();
    // Interleave three prefixes so the splits happen mid-prefix; enough
    // entries that the shared "b#" range is forced across several leaves.
    for i in 0..1500u32 {
        for p in ["a", "b", "c"] {
            s.put(format!("{p}#{i:06}").as_bytes(), &i.to_le_bytes())
                .unwrap();
        }
    }
    let splits = approxql_metrics::snapshot()
        .diff(&baseline)
        .get(Metric::BtreeNodeSplits);
    assert!(splits > 0, "expected leaf splits, counted {splits}");
    let hits = s.scan_prefix(b"b#").unwrap().collect_all().unwrap();
    assert_eq!(hits.len(), 1500);
    assert!(hits.windows(2).all(|w| w[0].0 < w[1].0));
    assert!(hits.iter().all(|(k, _)| k.starts_with(b"b#")));
    // The scan crossed leaves: count its cursor steps for good measure.
    let before = approxql_metrics::snapshot();
    let again = s.scan_prefix(b"b#").unwrap().collect_all().unwrap();
    let steps = approxql_metrics::snapshot()
        .diff(&before)
        .get(Metric::BtreeScanSteps);
    assert_eq!(again.len(), 1500);
    assert!(steps >= 1500, "scan yielded {steps} steps");
}

#[test]
fn out_of_line_value_runs_survive_reopen() {
    let dir = tmpdir("runs");
    let path = dir.join("runs.db");
    // Values from sub-page to several pages, including exact multiples.
    let sizes = [
        1,
        PAGE_SIZE - 1,
        PAGE_SIZE,
        PAGE_SIZE + 1,
        3 * PAGE_SIZE,
        5 * PAGE_SIZE + 17,
    ];
    {
        let mut s = Store::create_file(&path).unwrap();
        for (i, &sz) in sizes.iter().enumerate() {
            let v: Vec<u8> = (0..sz).map(|j| ((i * 31 + j) % 251) as u8).collect();
            s.put(format!("val{i}").as_bytes(), &v).unwrap();
        }
        s.commit().unwrap();
    }
    {
        let mut s = Store::open_file(&path).unwrap();
        for (i, &sz) in sizes.iter().enumerate() {
            let want: Vec<u8> = (0..sz).map(|j| ((i * 31 + j) % 251) as u8).collect();
            assert_eq!(
                s.get(format!("val{i}").as_bytes()).unwrap(),
                Some(want),
                "value {i} ({sz} bytes) corrupted across reopen"
            );
        }
        s.check().unwrap();
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn torn_header_write_rolls_back_to_previous_commit() {
    let dir = tmpdir("torn");
    let path = dir.join("torn.db");
    // Commit A: just the seed key. Commit B: enough inserts that the root
    // moves. Then mangle commit B's header slot the way a torn write
    // does: one field reverted, checksum inconsistent.
    {
        let mut s = Store::create_file(&path).unwrap(); // csn 1 -> slot 1
        s.put(b"seed", b"v").unwrap();
        s.commit().unwrap(); // csn 2 -> slot 0
        for i in 0..2000u32 {
            s.put(format!("key{i:06}").as_bytes(), &i.to_le_bytes())
                .unwrap();
        }
        s.commit().unwrap(); // csn 3 -> slot 1 (the newest)
    }
    let mut bytes = std::fs::read(&path).unwrap();
    let newest = PAGE_SIZE..2 * PAGE_SIZE;
    bytes[newest.clone()][12..16].copy_from_slice(&0u32.to_le_bytes());
    std::fs::write(&path, &bytes).unwrap();

    let before = approxql_metrics::snapshot();
    let mut s = Store::open_file(&path).unwrap();
    assert_eq!(
        approxql_metrics::snapshot()
            .diff(&before)
            .get(Metric::StoreRecoveryRollbacks),
        1
    );
    // Recovered to commit A: the seed is there, the 2000 keys are not.
    assert_eq!(s.commit_sequence(), 2);
    assert_eq!(s.get(b"seed").unwrap(), Some(b"v".to_vec()));
    assert_eq!(s.get(b"key000000").unwrap(), None);
    assert_eq!(s.iter_all().unwrap().collect_all().unwrap().len(), 1);
    s.check().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn zero_length_file_is_not_a_store() {
    let dir = tmpdir("zero");
    let path = dir.join("zero.db");
    std::fs::write(&path, b"").unwrap();
    assert!(matches!(
        Store::open_file(&path),
        Err(StorageError::NotAStore)
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn missing_file_is_an_io_error() {
    let dir = tmpdir("missing");
    assert!(matches!(
        Store::open_file(dir.join("nope.db")),
        Err(StorageError::Io(_))
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncation_of_uncommitted_tail_rolls_back() {
    let dir = tmpdir("trunc-tail");
    let path = dir.join("t.db");
    {
        let mut s = Store::create_file(&path).unwrap(); // csn 1, 3 pages
        s.put(b"k", &vec![7u8; PAGE_SIZE * 3]).unwrap();
        s.commit().unwrap(); // csn 2, more pages
    }
    // Chop the file back to the extent of commit 1 (both header slots plus
    // the original empty root): commit 2's slot now over-claims, so open
    // must fall back to commit 1.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..3 * PAGE_SIZE]).unwrap();
    let mut s = Store::open_file(&path).unwrap();
    assert_eq!(s.commit_sequence(), 1);
    assert_eq!(s.get(b"k").unwrap(), None);
    assert_eq!(s.iter_all().unwrap().collect_all().unwrap().len(), 0);
    s.check().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn truncation_below_every_commit_is_a_typed_error() {
    let dir = tmpdir("trunc-hard");
    let path = dir.join("t.db");
    {
        let mut s = Store::create_file(&path).unwrap();
        s.put(b"k", &vec![7u8; PAGE_SIZE * 4]).unwrap();
        s.commit().unwrap();
    }
    // Two pages left: both slots survive, but each claims more pages than
    // the file holds — mid-page-run truncation with no commit to fall
    // back to.
    let bytes = std::fs::read(&path).unwrap();
    std::fs::write(&path, &bytes[..2 * PAGE_SIZE]).unwrap();
    match Store::open_file(&path) {
        Err(StorageError::Truncated {
            claimed_pages,
            actual_pages,
        }) => {
            assert_eq!(actual_pages, 2);
            assert!(claimed_pages > actual_pages);
        }
        Err(other) => panic!("expected Truncated, got {other:?}"),
        Ok(_) => panic!("expected Truncated, but the store opened"),
    }
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn header_claiming_more_pages_than_the_file_holds() {
    let dir = tmpdir("overclaim");
    let path = dir.join("o.db");
    {
        let mut s = Store::create_file(&path).unwrap();
        s.put(b"k", b"v").unwrap();
        s.commit().unwrap(); // csn 2 -> slot 0 is now the newest
    }
    // Forge slot 0 to claim a giant extent, with a *valid* checksum, so
    // only the page-count sanity check can reject it. Recovery must fall
    // back to slot 1 (commit 1: the empty store).
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[24..28].copy_from_slice(&u32::MAX.to_le_bytes());
    restamp_trailer(&mut bytes[..PAGE_SIZE]);
    std::fs::write(&path, &bytes).unwrap();
    let mut s = Store::open_file(&path).unwrap();
    assert_eq!(s.commit_sequence(), 1);
    assert_eq!(s.get(b"k").unwrap(), None);
    s.check().unwrap();

    // Forge both slots the same way: now there is nothing to fall back
    // to, and the error must name the truncation.
    let mut bytes = std::fs::read(&path).unwrap();
    bytes[PAGE_SIZE..][24..28].copy_from_slice(&u32::MAX.to_le_bytes());
    restamp_trailer(&mut bytes[PAGE_SIZE..2 * PAGE_SIZE]);
    std::fs::write(&path, &bytes).unwrap();
    assert!(matches!(
        Store::open_file(&path),
        Err(StorageError::Truncated { .. })
    ));
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn reopen_after_compact_into() {
    let dir = tmpdir("compact");
    let src_path = dir.join("src.db");
    let dst_path = dir.join("dst.db");
    {
        let mut src = Store::create_file(&src_path).unwrap();
        let big = vec![3u8; PAGE_SIZE * 2 + 100];
        for i in 0..50u32 {
            src.put(format!("k{i:02}").as_bytes(), &big).unwrap();
            src.put(format!("k{i:02}").as_bytes(), &[i as u8; 40])
                .unwrap(); // leak the run
        }
        src.commit().unwrap();
        let mut dst = Store::create_file(&dst_path).unwrap();
        src.compact_into(&mut dst).unwrap();
        assert!(dst.page_count() < src.page_count());
    }
    let mut dst = Store::open_file(&dst_path).unwrap();
    let all = dst.iter_all().unwrap().collect_all().unwrap();
    assert_eq!(all.len(), 50);
    for (i, (k, v)) in all.iter().enumerate() {
        assert_eq!(k, format!("k{i:02}").as_bytes());
        assert_eq!(v, &vec![i as u8; 40]);
    }
    let report = dst.check().unwrap();
    assert_eq!(report.entries, 50);
    std::fs::remove_dir_all(&dir).unwrap();
}
