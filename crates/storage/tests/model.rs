//! Model-based property test: the store must behave exactly like a
//! `BTreeMap<Vec<u8>, Vec<u8>>` under arbitrary operation sequences.

use approxql_storage::Store;
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Put(Vec<u8>, Vec<u8>),
    Get(Vec<u8>),
    Delete(Vec<u8>),
    ScanPrefix(Vec<u8>),
    ScanRange(Vec<u8>, Vec<u8>),
}

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    // Small alphabet so operations collide often.
    proptest::collection::vec(
        proptest::sample::select(vec![b'a', b'b', b'c', 0u8, 0xFF]),
        0..6,
    )
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (
            key_strategy(),
            proptest::collection::vec(any::<u8>(), 0..40)
        )
            .prop_map(|(k, v)| Op::Put(k, v)),
        key_strategy().prop_map(Op::Get),
        key_strategy().prop_map(Op::Delete),
        key_strategy().prop_map(Op::ScanPrefix),
        (key_strategy(), key_strategy()).prop_map(|(a, b)| Op::ScanRange(a, b)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn store_matches_btreemap(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut store = Store::in_memory().unwrap();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Put(k, v) => {
                    store.put(&k, &v).unwrap();
                    model.insert(k, v);
                }
                Op::Get(k) => {
                    prop_assert_eq!(store.get(&k).unwrap(), model.get(&k).cloned());
                }
                Op::Delete(k) => {
                    let existed = store.delete(&k).unwrap();
                    prop_assert_eq!(existed, model.remove(&k).is_some());
                }
                Op::ScanPrefix(p) => {
                    let got = store.scan_prefix(&p).unwrap().collect_all().unwrap();
                    let want: Vec<(Vec<u8>, Vec<u8>)> = model
                        .iter()
                        .filter(|(k, _)| k.starts_with(&p))
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect();
                    prop_assert_eq!(got, want);
                }
                Op::ScanRange(a, b) => {
                    let got = store.scan_range(&a, Some(&b)).unwrap().collect_all().unwrap();
                    let want: Vec<(Vec<u8>, Vec<u8>)> = model
                        .range(a.clone()..)
                        .take_while(|(k, _)| k.as_slice() < b.as_slice())
                        .map(|(k, v)| (k.clone(), v.clone()))
                        .collect();
                    prop_assert_eq!(got, want);
                }
            }
        }
        // Final full scan agrees.
        let got = store.iter_all().unwrap().collect_all().unwrap();
        let want: Vec<(Vec<u8>, Vec<u8>)> =
            model.iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        prop_assert_eq!(got, want);
    }

    #[test]
    fn bulk_sorted_and_reverse_loads(n in 1usize..800) {
        let mut store = Store::in_memory().unwrap();
        for i in (0..n).rev() {
            store.put(format!("{i:08}").as_bytes(), &i.to_le_bytes()).unwrap();
        }
        let all = store.iter_all().unwrap().collect_all().unwrap();
        prop_assert_eq!(all.len(), n);
        for (i, (k, v)) in all.into_iter().enumerate() {
            prop_assert_eq!(k, format!("{i:08}").into_bytes());
            prop_assert_eq!(v, i.to_le_bytes().to_vec());
        }
    }
}
