//! Crash torture: replay a multi-commit workload, crash at *every* backend
//! operation index (in every crash mode), reopen, and require the store to
//! equal the oracle of the commit it recovered to — byte for byte, with
//! zero panics.
//!
//! The sweep is seeded and fully deterministic. `APPROXQL_TORTURE_SCALE`
//! multiplies the number of commits (CI runs a larger sweep in release
//! mode).

use approxql_metrics::Metric;
use approxql_storage::{
    CrashMode, FaultBackend, FaultConfig, SharedMemBackend, Store, PAGE_DATA, PAGE_SIZE,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

type Model = BTreeMap<Vec<u8>, Vec<u8>>;

#[derive(Clone)]
enum Op {
    Put(Vec<u8>, Vec<u8>),
    Delete(Vec<u8>),
}

fn scale() -> usize {
    std::env::var("APPROXQL_TORTURE_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// A deterministic workload of `commits` batches mixing fresh keys,
/// overwrites, deletes, and values from empty to multi-page.
fn workload(seed: u64, commits: usize) -> Vec<Vec<Op>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..commits)
        .map(|c| {
            let mut batch = Vec::new();
            for _ in 0..(14 + 4 * c) {
                let key = format!("key{:03}", rng.gen_range(0..80u32)).into_bytes();
                if rng.gen_bool(0.2) {
                    batch.push(Op::Delete(key));
                } else {
                    let len = match rng.gen_range(0..5u32) {
                        0 => 0,
                        1 => rng.gen_range(1..64usize),
                        2 => rng.gen_range(64..900usize),
                        3 => PAGE_DATA, // exactly one payload page
                        _ => rng.gen_range(PAGE_SIZE..3 * PAGE_SIZE),
                    };
                    let fill = rng.gen_range(0..=255u8);
                    let value = (0..len).map(|j| fill.wrapping_add(j as u8)).collect();
                    batch.push(Op::Put(key, value));
                }
            }
            batch
        })
        .collect()
}

fn apply_store(store: &mut Store, batch: &[Op]) -> approxql_storage::Result<()> {
    for op in batch {
        match op {
            Op::Put(k, v) => store.put(k, v)?,
            Op::Delete(k) => {
                store.delete(k)?;
            }
        }
    }
    Ok(())
}

fn apply_model(model: &mut Model, batch: &[Op]) {
    for op in batch {
        match op {
            Op::Put(k, v) => {
                model.insert(k.clone(), v.clone());
            }
            Op::Delete(k) => {
                model.remove(k);
            }
        }
    }
}

/// Runs the workload against a backend that crashes at `crash_at`, reopens
/// from the surviving pages, and verifies recovery. Returns the number of
/// header-slot rollbacks the reopen performed.
fn run_crash_case(batches: &[Vec<Op>], models: &[Model], mode: CrashMode, crash_at: u64) -> u64 {
    let shared = SharedMemBackend::new();
    let fb = FaultBackend::new(
        Box::new(shared.clone()),
        FaultConfig {
            crash_after_ops: Some(crash_at),
            mode,
            fail_sync_at: None,
            seed: crash_at ^ 0x5EED,
        },
    );

    // Replay until the crash; track the highest *acknowledged* commit.
    let mut acked: u64 = 0;
    'run: {
        let mut store = match Store::create(Box::new(fb)) {
            Ok(s) => s,
            Err(_) => break 'run,
        };
        acked = store.commit_sequence();
        for batch in batches {
            if apply_store(&mut store, batch).is_err() {
                break 'run;
            }
            if store.commit().is_err() {
                break 'run;
            }
            acked = store.commit_sequence();
        }
    }

    // "Power back on": reopen from what actually reached the disk.
    let disk = SharedMemBackend::from(shared.snapshot());
    let before = approxql_metrics::snapshot();
    let mut store = match Store::open(Box::new(disk.clone())) {
        Ok(s) => s,
        Err(e) => {
            // Only a store whose very creation was interrupted may fail
            // to open — and then with a typed error, which `match`ing on
            // the Result already proved.
            assert_eq!(acked, 0, "acknowledged commit {acked} lost entirely: {e}");
            return 0;
        }
    };
    let rollbacks = approxql_metrics::snapshot()
        .diff(&before)
        .get(Metric::StoreRecoveryRollbacks);

    // Durability: everything acknowledged must still be there; the
    // recovered commit may at most be the one in flight at the crash.
    let csn = store.commit_sequence();
    assert!(
        csn >= acked,
        "crash@{crash_at} {mode:?}: acknowledged commit {acked} rolled back to {csn}"
    );
    assert!(
        (csn as usize) < models.len(),
        "crash@{crash_at} {mode:?}: recovered to impossible commit {csn}"
    );

    // Exactness: the recovered state equals the oracle of that commit.
    let got: Model = store
        .iter_all()
        .unwrap()
        .collect_all()
        .unwrap()
        .into_iter()
        .collect();
    assert!(
        got == models[csn as usize],
        "crash@{crash_at} {mode:?}: recovered state diverges from the commit-{csn} oracle"
    );

    // Integrity: the full checker passes on every recovered store.
    store
        .check()
        .unwrap_or_else(|e| panic!("crash@{crash_at} {mode:?}: check failed: {e}"));

    // Livability: the recovered store accepts and persists new commits.
    store.put(b"post-recovery", b"back in business").unwrap();
    store.commit().unwrap();
    drop(store);
    let mut store = Store::open(Box::new(disk)).unwrap();
    assert_eq!(
        store.get(b"post-recovery").unwrap(),
        Some(b"back in business".to_vec())
    );
    store.check().unwrap();
    rollbacks
}

#[test]
fn crash_at_every_write_index_recovers_exactly_the_last_commit() {
    let commits = 3 * scale();
    let batches = workload(0xC0FFEE, commits);

    // Clean run: build the per-commit oracle and count backend operations.
    let shared = SharedMemBackend::new();
    let fb = FaultBackend::new(Box::new(shared.clone()), FaultConfig::default());
    let ops_counter = fb.op_counter();
    let mut store = Store::create(Box::new(fb)).unwrap();
    // models[csn] = expected contents after commit `csn`; csn 1 is the
    // empty store committed by create (index 0 is a placeholder).
    let mut models: Vec<Model> = vec![Model::new(), Model::new()];
    let mut model = Model::new();
    for batch in &batches {
        apply_store(&mut store, batch).unwrap();
        apply_model(&mut model, batch);
        store.commit().unwrap();
        models.push(model.clone());
    }
    assert_eq!(store.commit_sequence() as usize, commits + 1);
    drop(store);
    let total_ops = ops_counter.get();
    assert!(
        total_ops > 40,
        "workload too small: {total_ops} backend ops"
    );

    let mut rollbacks = 0u64;
    for mode in [
        CrashMode::AfterWrite,
        CrashMode::TornWrite,
        CrashMode::DropWrite,
    ] {
        for crash_at in 0..total_ops {
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                run_crash_case(&batches, &models, mode, crash_at)
            }));
            match outcome {
                Ok(n) => rollbacks += n,
                Err(_) => panic!("panicked at crash index {crash_at} in mode {mode:?}"),
            }
        }
    }
    // The sweep must have crossed the dual-slot fallback path: crashes
    // during the header-slot write of later commits tear the newest slot.
    assert!(rollbacks > 0, "sweep never exercised a header rollback");
}

#[test]
fn every_data_page_bit_flip_is_caught_by_check() {
    // Build and commit a store with a multi-level tree and value runs.
    let shared = SharedMemBackend::new();
    let mut store = Store::create(Box::new(shared.clone())).unwrap();
    let mut rng = StdRng::seed_from_u64(0xB17F11B);
    for i in 0..400u32 {
        let len = rng.gen_range(0..2 * PAGE_SIZE);
        let v: Vec<u8> = (0..len).map(|j| (i as usize + j) as u8).collect();
        store.put(format!("key{i:04}").as_bytes(), &v).unwrap();
    }
    store.commit().unwrap();
    drop(store);

    let base = shared.snapshot();
    let pages = {
        let mut probe = Store::open(Box::new(base.clone())).unwrap();
        probe.check().unwrap().committed_pages
    };
    assert!(pages > 10);

    // Flip one random bit per trial, anywhere in the data pages (page 2
    // onward — header-slot damage is open()'s job, exercised elsewhere).
    let trials = 60 * scale() as u64;
    for trial in 0..trials {
        let mut rng = StdRng::seed_from_u64(trial.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let page = rng.gen_range(2..pages);
        let bit = rng.gen_range(0..PAGE_SIZE * 8);
        let mut corrupted = base.clone();
        let mut buf = [0u8; PAGE_SIZE];
        use approxql_storage::{Backend, PageId};
        corrupted.read_page(PageId(page), &mut buf).unwrap();
        buf[bit / 8] ^= 1 << (bit % 8);
        corrupted.write_page(PageId(page), &buf).unwrap();
        // Open succeeds (only the header slots are read eagerly) …
        let mut store = Store::open(Box::new(corrupted)).unwrap();
        // … but the checker must spot the flip, wherever it landed.
        assert!(
            store.check().is_err(),
            "flip of page {page} bit {bit} went undetected"
        );
    }
}

#[test]
fn failed_sync_makes_commit_retryable() {
    // An fsync failure mid-commit must leave the store consistent and the
    // commit repeatable — the fsyncgate scenario.
    let shared = SharedMemBackend::new();
    let fb = FaultBackend::new(
        Box::new(shared.clone()),
        FaultConfig {
            // Syncs 0 and 1 belong to create's commit; fail the first sync
            // of the *second* commit (the data-page barrier).
            fail_sync_at: Some(2),
            ..FaultConfig::default()
        },
    );
    let mut store = Store::create(Box::new(fb)).unwrap();
    for i in 0..50u32 {
        store
            .put(format!("k{i:02}").as_bytes(), &[i as u8; 300])
            .unwrap();
    }
    assert!(
        store.commit().is_err(),
        "commit swallowed the fsync failure"
    );
    assert_eq!(store.commit_sequence(), 1, "failed commit advanced the csn");
    // Retry: the pages are still dirty, so this rewrites and re-syncs.
    store.commit().unwrap();
    assert_eq!(store.commit_sequence(), 2);
    drop(store);
    let mut store = Store::open(Box::new(SharedMemBackend::from(shared.snapshot()))).unwrap();
    assert_eq!(store.commit_sequence(), 2);
    for i in 0..50u32 {
        assert_eq!(
            store.get(format!("k{i:02}").as_bytes()).unwrap(),
            Some(vec![i as u8; 300])
        );
    }
    store.check().unwrap();
}
