//! Failure injection: the store must surface backend I/O errors as
//! `Err` values — never panic, never corrupt previously committed state.

use approxql_storage::{Backend, MemBackend, PageId, StorageError, Store, PAGE_SIZE};
use std::cell::Cell;
use std::rc::Rc;

/// A backend that starts failing every operation once the fuse burns.
struct FlakyBackend {
    inner: MemBackend,
    remaining: Rc<Cell<i64>>,
}

impl FlakyBackend {
    fn tick(&self) -> Result<(), StorageError> {
        let left = self.remaining.get();
        if left <= 0 {
            return Err(StorageError::Io(std::io::Error::other("injected failure")));
        }
        self.remaining.set(left - 1);
        Ok(())
    }
}

impl Backend for FlakyBackend {
    fn read_page(&mut self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> Result<(), StorageError> {
        self.tick()?;
        self.inner.read_page(id, buf)
    }

    fn write_page(&mut self, id: PageId, buf: &[u8; PAGE_SIZE]) -> Result<(), StorageError> {
        self.tick()?;
        self.inner.write_page(id, buf)
    }

    fn page_count(&self) -> u32 {
        self.inner.page_count()
    }

    fn sync(&mut self) -> Result<(), StorageError> {
        self.tick()?;
        self.inner.sync()
    }
}

fn flaky(budget: i64) -> (Box<dyn Backend>, Rc<Cell<i64>>) {
    let remaining = Rc::new(Cell::new(budget));
    (
        Box::new(FlakyBackend {
            inner: MemBackend::new(),
            remaining: Rc::clone(&remaining),
        }),
        remaining,
    )
}

#[test]
fn operations_fail_gracefully_once_the_backend_dies() {
    let (backend, fuse) = flaky(i64::MAX);
    let mut store = Store::create(backend).unwrap();
    for i in 0..200u32 {
        store
            .put(format!("key{i:04}").as_bytes(), &i.to_le_bytes())
            .unwrap();
    }
    store.commit().unwrap();

    // Kill the backend; every operation that needs uncached pages must
    // return Err rather than panic.
    fuse.set(0);
    // Reads may still succeed from the page cache; a commit (which syncs)
    // must fail.
    assert!(store.commit().is_err());
    // New value writes allocate fresh pages in cache and only fail at
    // commit time; scan of cached data may succeed. The key property is
    // that *no* operation panics — exercise a mix:
    let _ = store.put(b"late", b"value");
    let _ = store.get(b"key0007");
    let _ = store.delete(b"key0001");
    let _ = store.scan_prefix(b"key").and_then(|it| it.collect_all());
    assert!(store.commit().is_err());
}

#[test]
fn every_failure_point_is_an_error_not_a_panic() {
    // Burn the fuse at every possible point of a fixed workload and check
    // that the store only ever reports errors.
    for budget in 0..60 {
        let (backend, _fuse) = flaky(budget);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut store = match Store::create(backend) {
                Ok(s) => s,
                Err(_) => return,
            };
            for i in 0..20u32 {
                if store.put(format!("k{i}").as_bytes(), &[0u8; 100]).is_err() {
                    return;
                }
            }
            let _ = store.get(b"k3");
            let _ = store.commit();
            let _ = store.scan_prefix(b"k").and_then(|it| it.collect_all());
        }));
        assert!(result.is_ok(), "panicked with failure budget {budget}");
    }
}

#[test]
fn committed_data_survives_partial_later_failures() {
    let (backend, fuse) = flaky(i64::MAX);
    let mut store = Store::create(backend).unwrap();
    store.put(b"stable", b"yes").unwrap();
    store.commit().unwrap();
    // Allow a couple more operations, then fail.
    fuse.set(2);
    let _ = store.put(b"doomed", &[1u8; PAGE_SIZE * 4]);
    // The committed key is still readable (from cache or backend).
    assert_eq!(store.get(b"stable").unwrap(), Some(b"yes".to_vec()));
}
