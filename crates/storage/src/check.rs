//! Offline integrity verification (`approxql check`).
//!
//! [`run_check`] re-establishes every invariant the store relies on:
//!
//! * every page of the committed extent has a valid trailer checksum
//!   (catches silent bit rot in *leaked* pages too, which no tree walk
//!   would visit),
//! * the B+-tree is acyclic, its leaves sit at one uniform depth, keys
//!   are strictly sorted and consistent with every separator on the path,
//!   and no page is reachable twice,
//! * every out-of-line value run lies inside the store and does not
//!   overlap a live tree page, and every value is readable end to end.
//!
//! Header slots are deliberately *not* re-validated beyond what
//! [`Store::open`](crate::Store::open) already did: after a crash the
//! inactive slot legitimately holds the torn remains of the interrupted
//! commit, and a recovered store must still pass `check`.

use crate::btree::{read_node, Node};
use crate::heap::read_value;
use crate::pager::{trailer_ok, PageId, Pager, PAGE_SIZE};
use crate::store::FIRST_DATA_PAGE;
use crate::{Result, StorageError};
use approxql_metrics::Metric;
use std::collections::HashSet;
use std::fmt;

/// Statistics gathered by a successful [`Store::check`](crate::Store::check).
#[derive(Debug, Clone)]
pub struct CheckReport {
    /// Sequence number of the commit that was verified.
    pub commit_sequence: u64,
    /// Pages the committed state spans (including the two header slots).
    pub committed_pages: u32,
    /// Live B+-tree pages.
    pub tree_pages: u32,
    /// Tree levels (1 = a single leaf).
    pub tree_depth: u32,
    /// Live key/value entries.
    pub entries: u64,
    /// Pages occupied by live out-of-line values.
    pub value_pages: u64,
    /// Pages referenced by no live structure (leaked until compaction).
    pub leaked_pages: u64,
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ok: commit #{}, {} entries, depth {}, {} pages ({} tree, {} value, {} leaked)",
            self.commit_sequence,
            self.entries,
            self.tree_depth,
            self.committed_pages,
            self.tree_pages,
            self.value_pages,
            self.leaked_pages,
        )
    }
}

/// Walks the whole store; returns the first violated invariant as a
/// [`StorageError`].
pub(crate) fn run_check(pager: &mut Pager, root: PageId, csn: u64) -> Result<CheckReport> {
    const MAX_DEPTH: usize = 64;
    let total_pages = pager.page_count();
    let extent = pager.committed();
    let corrupt = |p, what| Err(StorageError::CorruptPage(p, what));

    if root.0 < FIRST_DATA_PAGE || root.0 >= total_pages {
        return corrupt(root, "root outside the data extent");
    }

    struct Frame {
        page: PageId,
        depth: usize,
        /// Inclusive lower bound inherited from ancestor separators.
        lo: Option<Vec<u8>>,
        /// Exclusive upper bound inherited from ancestor separators.
        hi: Option<Vec<u8>>,
    }
    let in_bounds = |k: &[u8], lo: &Option<Vec<u8>>, hi: &Option<Vec<u8>>| {
        lo.as_ref().is_none_or(|l| k >= l.as_slice())
            && hi.as_ref().is_none_or(|h| k < h.as_slice())
    };

    let mut visited: HashSet<u32> = HashSet::new();
    let mut leaf_depth: Option<usize> = None;
    let mut entries = 0u64;
    let mut value_pages = 0u64;
    let mut value_runs: Vec<(PageId, u32)> = Vec::new();
    let mut stack = vec![Frame {
        page: root,
        depth: 0,
        lo: None,
        hi: None,
    }];

    while let Some(Frame {
        page,
        depth,
        lo,
        hi,
    }) = stack.pop()
    {
        if depth >= MAX_DEPTH {
            return corrupt(page, "tree deeper than MAX_DEPTH");
        }
        if page.0 < FIRST_DATA_PAGE || page.0 >= total_pages {
            return corrupt(page, "child pointer outside the data extent");
        }
        if !visited.insert(page.0) {
            return corrupt(page, "page reachable via two tree paths");
        }
        match read_node(pager, page)? {
            Node::Internal { keys, children } => {
                if keys.is_empty() {
                    return corrupt(page, "internal node without separators");
                }
                if keys.windows(2).any(|w| w[0] >= w[1]) {
                    return corrupt(page, "separators out of order");
                }
                if keys.iter().any(|k| !in_bounds(k, &lo, &hi)) {
                    return corrupt(page, "separator violates ancestor bounds");
                }
                for (i, &child) in children.iter().enumerate() {
                    stack.push(Frame {
                        page: child,
                        depth: depth + 1,
                        lo: if i == 0 {
                            lo.clone()
                        } else {
                            Some(keys[i - 1].clone())
                        },
                        hi: if i == keys.len() {
                            hi.clone()
                        } else {
                            Some(keys[i].clone())
                        },
                    });
                }
            }
            Node::Leaf { entries: leaf } => {
                match leaf_depth {
                    None => leaf_depth = Some(depth),
                    Some(d) if d != depth => {
                        return corrupt(page, "leaves at unequal depths");
                    }
                    Some(_) => {}
                }
                if leaf.windows(2).any(|w| w[0].0 >= w[1].0) {
                    return corrupt(page, "leaf keys out of order");
                }
                for (key, vref) in &leaf {
                    if !in_bounds(key, &lo, &hi) {
                        return corrupt(page, "leaf key violates ancestor bounds");
                    }
                    entries += 1;
                    if vref.len > 0 {
                        let span = vref.page_span();
                        if vref.first_page.0 < FIRST_DATA_PAGE
                            || vref.first_page.0 as u64 + span as u64 > total_pages as u64
                        {
                            return corrupt(page, "value run outside the data extent");
                        }
                        value_pages += span as u64;
                        value_runs.push((vref.first_page, span));
                    }
                }
                // Reading every value forces trailer verification of the
                // run pages and proves the lengths are honest.
                for (_, vref) in &leaf {
                    if vref.len > 0 {
                        read_value(pager, *vref)?;
                    }
                }
            }
        }
    }

    for (first, span) in &value_runs {
        for i in 0..*span {
            if visited.contains(&(first.0 + i)) {
                return corrupt(PageId(first.0 + i), "value run overlaps a tree page");
            }
        }
    }

    // Full trailer sweep of the committed extent: catches bit rot even in
    // leaked pages that no live structure references.
    let mut buf = [0u8; PAGE_SIZE];
    for i in FIRST_DATA_PAGE..extent {
        pager.read_raw(PageId(i), &mut buf)?;
        if !trailer_ok(&buf) {
            Metric::PagerChecksumFailures.incr();
            return corrupt(PageId(i), "page trailer checksum mismatch");
        }
    }

    let tree_pages = visited.len() as u32;
    Ok(CheckReport {
        commit_sequence: csn,
        committed_pages: extent,
        tree_pages,
        tree_depth: leaf_depth.map_or(0, |d| d as u32 + 1),
        entries,
        value_pages,
        leaked_pages: (total_pages as u64)
            .saturating_sub(FIRST_DATA_PAGE as u64)
            .saturating_sub(tree_pages as u64)
            .saturating_sub(value_pages),
    })
}

#[cfg(test)]
mod tests {
    use crate::Store;

    #[test]
    fn check_passes_on_live_store() {
        let mut s = Store::in_memory().unwrap();
        for i in 0..500u32 {
            s.put(
                format!("k{i:04}").as_bytes(),
                &vec![i as u8; (i % 9000) as usize],
            )
            .unwrap();
        }
        for i in (0..500u32).step_by(7) {
            s.delete(format!("k{i:04}").as_bytes()).unwrap();
        }
        s.commit().unwrap();
        let report = s.check().unwrap();
        assert_eq!(report.entries, 500 - 500u64.div_ceil(7));
        assert!(report.tree_depth >= 2);
        assert!(report.tree_pages > 1);
        assert!(report.value_pages > 0);
        assert_eq!(report.commit_sequence, s.commit_sequence());
        // The report's page partition accounts for every data page.
        assert!(report.to_string().starts_with("ok: commit #"));
    }

    #[test]
    fn check_passes_on_empty_store() {
        let mut s = Store::in_memory().unwrap();
        let report = s.check().unwrap();
        assert_eq!(report.entries, 0);
        assert_eq!(report.tree_depth, 1);
        assert_eq!(report.tree_pages, 1);
    }
}
