//! Page-granular I/O with a write-back cache, per-page trailer checksums,
//! and pluggable backends.
//!
//! Every page that goes through [`Pager::flush`] carries an 8-byte FNV-64
//! checksum trailer over its first [`PAGE_DATA`] bytes. The trailer is
//! stamped when a dirty page is written back and verified on every cache
//! miss, so a torn write or a flipped bit on the backing store surfaces as
//! [`StorageError::CorruptPage`] instead of silently feeding garbage to
//! the B+-tree.
//!
//! The pager also tracks the **committed extent**: the page count recorded
//! by the last successful store commit. Pages below the extent belong to
//! the committed state and are treated as immutable by the layers above
//! (copy-on-write); [`Pager::flush`] asserts that no dirty page ever sits
//! below the extent, which is the invariant that makes header-slot
//! rollback recovery sound.

use crate::{fnv64, Result, StorageError};
use approxql_metrics::Metric;
use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// The fixed page size of the store.
pub const PAGE_SIZE: usize = 4096;

/// Bytes of checksum trailer at the end of every page.
pub const PAGE_TRAILER: usize = 8;

/// Usable payload bytes per page (the trailer is pager-owned).
pub const PAGE_DATA: usize = PAGE_SIZE - PAGE_TRAILER;

/// Writes the FNV-64 checksum of `buf[..PAGE_DATA]` into the trailer.
pub(crate) fn stamp_trailer(buf: &mut [u8; PAGE_SIZE]) {
    let sum = fnv64(&buf[..PAGE_DATA]);
    buf[PAGE_DATA..].copy_from_slice(&sum.to_le_bytes());
}

/// Checks the trailer checksum of a page read from a backend.
pub(crate) fn trailer_ok(buf: &[u8; PAGE_SIZE]) -> bool {
    let stored = u64::from_le_bytes(crate::le_array(&buf[PAGE_DATA..]));
    stored == fnv64(&buf[..PAGE_DATA])
}

/// The cached frame for `id`, which the caller has just ensured is present.
/// A missing frame is an internal invariant failure; the storage layer
/// promises typed errors, never a panic, so it surfaces as a corrupt-page
/// error instead of an `unwrap`. Free function (not a method) so callers
/// keep field-level borrows on the rest of the pager.
fn frame_mut(cache: &mut HashMap<PageId, Frame>, id: PageId) -> Result<&mut Frame> {
    cache.get_mut(&id).ok_or(StorageError::CorruptPage(
        id,
        "page frame missing from cache",
    ))
}

/// A page number within the store file. Pages 0 and 1 are the header slots.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PageId(pub u32);

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Raw page storage: a file or an in-memory vector.
pub trait Backend {
    /// Reads page `id` into `buf` (the page must exist).
    fn read_page(&mut self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> Result<()>;
    /// Writes `buf` to page `id`, growing the backend if needed.
    fn write_page(&mut self, id: PageId, buf: &[u8; PAGE_SIZE]) -> Result<()>;
    /// Number of pages currently stored.
    fn page_count(&self) -> u32;
    /// Flushes any buffered writes to durable storage.
    fn sync(&mut self) -> Result<()>;
}

/// A backend over a real file.
pub struct FileBackend {
    file: File,
    pages: u32,
}

impl FileBackend {
    /// Creates a new (truncated) store file.
    pub fn create(path: &Path) -> Result<FileBackend> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileBackend { file, pages: 0 })
    }

    /// Opens an existing store file.
    pub fn open(path: &Path) -> Result<FileBackend> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(StorageError::NotAStore);
        }
        Ok(FileBackend {
            file,
            pages: (len / PAGE_SIZE as u64) as u32,
        })
    }
}

impl Backend for FileBackend {
    fn read_page(&mut self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> Result<()> {
        self.file
            .seek(SeekFrom::Start(id.0 as u64 * PAGE_SIZE as u64))?;
        self.file.read_exact(buf)?;
        Ok(())
    }

    fn write_page(&mut self, id: PageId, buf: &[u8; PAGE_SIZE]) -> Result<()> {
        self.file
            .seek(SeekFrom::Start(id.0 as u64 * PAGE_SIZE as u64))?;
        self.file.write_all(buf)?;
        if id.0 >= self.pages {
            self.pages = id.0 + 1;
        }
        Ok(())
    }

    fn page_count(&self) -> u32 {
        self.pages
    }

    fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

/// An in-memory backend (tests, ephemeral stores).
#[derive(Default, Clone)]
pub struct MemBackend {
    pages: Vec<Box<[u8; PAGE_SIZE]>>,
}

impl MemBackend {
    /// Creates an empty in-memory backend.
    pub fn new() -> MemBackend {
        MemBackend::default()
    }
}

impl Backend for MemBackend {
    fn read_page(&mut self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> Result<()> {
        match self.pages.get(id.0 as usize) {
            Some(p) => {
                buf.copy_from_slice(&p[..]);
                Ok(())
            }
            None => Err(StorageError::CorruptPage(id, "page does not exist")),
        }
    }

    fn write_page(&mut self, id: PageId, buf: &[u8; PAGE_SIZE]) -> Result<()> {
        let idx = id.0 as usize;
        while self.pages.len() <= idx {
            self.pages.push(Box::new([0u8; PAGE_SIZE]));
        }
        self.pages[idx].copy_from_slice(buf);
        Ok(())
    }

    fn page_count(&self) -> u32 {
        self.pages.len() as u32
    }

    fn sync(&mut self) -> Result<()> {
        Ok(())
    }
}

/// Default cache capacity in pages (16 MiB at the 4 KiB page size) —
/// large enough that index builds and the regression workloads never
/// evict, small enough to bound memory on big stores.
pub const DEFAULT_CACHE_PAGES: usize = 4096;

/// One cached page.
struct Frame {
    buf: Box<[u8; PAGE_SIZE]>,
    dirty: bool,
    /// Second-chance bit: set on access, cleared (once) by the clock hand
    /// before the frame becomes an eviction candidate.
    referenced: bool,
}

/// A write-back page cache in front of a [`Backend`].
///
/// All reads and writes go through the cache; [`Pager::flush`] writes every
/// dirty page back. The cache is *bounded*: when it reaches its capacity, a
/// clock (second-chance) sweep evicts clean pages to make room. Dirty pages
/// are never evicted — they hold unflushed data — so a burst of allocations
/// may temporarily exceed the capacity until the next [`Pager::flush`]
/// makes the pages clean (and thus evictable) again. The `dirty` counter
/// keeps that burst O(1) per touch: when no clean page exists the sweep is
/// skipped entirely instead of scanning the whole (all-dirty) ring on
/// every insertion — without it, one large uncommitted transaction
/// degrades to a quadratic number of futile clock steps.
pub struct Pager {
    backend: Box<dyn Backend>,
    cache: HashMap<PageId, Frame>,
    /// Clock ring over the cached page ids. May contain stale ids (pages
    /// evicted through [`Pager::evict_clean`]); the hand removes them
    /// lazily as it passes.
    ring: Vec<PageId>,
    hand: usize,
    capacity: usize,
    /// Number of cached frames with `dirty == true` (maintained on every
    /// dirty-flag transition; only clean frames are eviction candidates).
    dirty: usize,
    next_page: u32,
    /// Pages `< committed` belong to the last committed state and must
    /// never be rewritten in place (copy-on-write discipline).
    committed: u32,
}

impl Pager {
    /// Creates a pager over `backend` with the default cache capacity.
    pub fn new(backend: Box<dyn Backend>) -> Pager {
        Pager::with_capacity(backend, DEFAULT_CACHE_PAGES)
    }

    /// Creates a pager whose cache holds at most `capacity` clean pages.
    pub fn with_capacity(backend: Box<dyn Backend>, capacity: usize) -> Pager {
        let next_page = backend.page_count();
        Pager {
            backend,
            cache: HashMap::new(),
            ring: Vec::new(),
            hand: 0,
            capacity: capacity.max(1),
            dirty: 0,
            next_page,
            committed: next_page,
        }
    }

    /// The configured cache capacity in pages.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of pages currently held in the cache.
    pub fn cached_pages(&self) -> usize {
        self.cache.len()
    }

    /// Number of pages the raw backend currently holds.
    pub fn backend_pages(&self) -> u32 {
        self.backend.page_count()
    }

    /// The committed extent: pages below it are immutable (copy-on-write).
    pub fn committed(&self) -> u32 {
        self.committed
    }

    /// `true` if `id` is part of the last committed state and must be
    /// relocated (not rewritten in place) on modification.
    pub fn is_committed(&self, id: PageId) -> bool {
        id.0 < self.committed
    }

    /// Advances the committed extent to cover every allocated page. Called
    /// by the store after a commit becomes durable.
    pub fn mark_committed(&mut self) {
        self.committed = self.next_page;
    }

    /// `true` if any cached page holds unflushed data.
    pub fn has_dirty(&self) -> bool {
        self.dirty > 0
    }

    /// Rewinds the allocation cursor to `pages` (recovery rollback: pages
    /// at or beyond the last committed extent are logically discarded and
    /// will be overwritten by future allocations).
    pub fn truncate_to(&mut self, pages: u32) {
        self.next_page = pages;
        self.cache.retain(|id, _| id.0 < pages);
        let cache = &self.cache;
        self.ring.retain(|id| cache.contains_key(id));
        self.hand = 0;
        self.dirty = self.cache.values().filter(|f| f.dirty).count();
    }

    /// Evicts one clean page via the clock sweep. Returns `false` when
    /// nothing is evictable (every cached page is dirty).
    fn evict_one(&mut self) -> bool {
        // At most two passes: the first clears second-chance bits, the
        // second then finds a victim — unless everything is dirty.
        let mut scanned = 0;
        while !self.ring.is_empty() && scanned < 2 * self.ring.len() {
            if self.hand >= self.ring.len() {
                self.hand = 0;
            }
            let id = self.ring[self.hand];
            match self.cache.get_mut(&id) {
                // Stale ring entry (page already gone): drop it in place.
                // `swap_remove` moves the tail here, so the hand stays.
                None => {
                    self.ring.swap_remove(self.hand);
                }
                Some(frame) if frame.dirty => {
                    self.hand += 1;
                    scanned += 1;
                }
                Some(frame) if frame.referenced => {
                    frame.referenced = false;
                    self.hand += 1;
                    scanned += 1;
                }
                Some(_) => {
                    self.cache.remove(&id);
                    self.ring.swap_remove(self.hand);
                    Metric::PagerEvictions.incr();
                    return true;
                }
            }
        }
        false
    }

    /// Inserts a page, evicting first so the new page itself can never be
    /// the victim (callers hand out references to it immediately).
    fn insert_frame(&mut self, id: PageId, frame: Frame) {
        while self.cache.len() >= self.capacity && self.cache.len() > self.dirty && self.evict_one()
        {
        }
        if frame.dirty {
            self.dirty += 1;
        }
        self.cache.insert(id, frame);
        self.ring.push(id);
    }

    /// Shrinks an over-budget cache (e.g. after a flush turned a burst of
    /// dirty allocations clean) back under its capacity.
    fn enforce_budget(&mut self) {
        while self.cache.len() > self.capacity && self.cache.len() > self.dirty && self.evict_one()
        {
        }
    }

    /// Allocates a fresh page (zero-filled) and returns its id.
    pub fn allocate(&mut self) -> PageId {
        Metric::PagerPageAllocs.incr();
        let id = PageId(self.next_page);
        self.next_page += 1;
        self.insert_frame(
            id,
            Frame {
                buf: Box::new([0u8; PAGE_SIZE]),
                dirty: true,
                referenced: false,
            },
        );
        id
    }

    /// Allocates `n` consecutive pages, returning the first id.
    pub fn allocate_run(&mut self, n: u32) -> PageId {
        let first = PageId(self.next_page);
        for _ in 0..n {
            self.allocate();
        }
        first
    }

    /// Total pages (allocated or on the backend).
    pub fn page_count(&self) -> u32 {
        self.next_page
    }

    /// Reads a page from the backend into a fresh frame buffer, verifying
    /// the trailer checksum.
    fn fetch_checked(&mut self, id: PageId) -> Result<Box<[u8; PAGE_SIZE]>> {
        Metric::PagerCacheMisses.incr();
        let mut buf = Box::new([0u8; PAGE_SIZE]);
        self.backend.read_page(id, &mut buf)?;
        if !trailer_ok(&buf) {
            Metric::PagerChecksumFailures.incr();
            return Err(StorageError::CorruptPage(
                id,
                "page trailer checksum mismatch",
            ));
        }
        Ok(buf)
    }

    /// Reads page `id` (through the cache).
    pub fn read(&mut self, id: PageId) -> Result<&[u8; PAGE_SIZE]> {
        Metric::PagerPageReads.incr();
        self.enforce_budget();
        if !self.cache.contains_key(&id) {
            let buf = self.fetch_checked(id)?;
            self.insert_frame(
                id,
                Frame {
                    buf,
                    dirty: false,
                    referenced: false,
                },
            );
        }
        let frame = frame_mut(&mut self.cache, id)?;
        frame.referenced = true;
        Ok(&frame.buf)
    }

    /// Returns a mutable view of page `id`, marking it dirty.
    pub fn write(&mut self, id: PageId) -> Result<&mut [u8; PAGE_SIZE]> {
        Metric::PagerPageWrites.incr();
        self.enforce_budget();
        if !self.cache.contains_key(&id) {
            let buf = if id.0 < self.backend.page_count() {
                self.fetch_checked(id)?
            } else {
                Metric::PagerCacheMisses.incr();
                Box::new([0u8; PAGE_SIZE])
            };
            self.insert_frame(
                id,
                Frame {
                    buf,
                    dirty: false,
                    referenced: false,
                },
            );
        }
        let frame = frame_mut(&mut self.cache, id)?;
        if !frame.dirty {
            self.dirty += 1;
            frame.dirty = true;
        }
        frame.referenced = true;
        Ok(&mut frame.buf)
    }

    /// Writes all dirty pages back (stamping their checksum trailers) and
    /// syncs the backend. Pages are only marked clean after the sync
    /// succeeds: a failed backend write or sync leaves every page of the
    /// batch dirty, so the whole flush is retryable and nothing is lost
    /// from the cache.
    pub fn flush(&mut self) -> Result<()> {
        let mut dirty: Vec<PageId> = self
            .cache
            .iter()
            .filter(|(_, f)| f.dirty)
            .map(|(&id, _)| id)
            .collect();
        dirty.sort();
        Metric::PagerFlushes.incr();
        for &id in &dirty {
            // Copy-on-write invariant: committed pages are immutable, so a
            // crash mid-flush can only tear pages the committed header
            // never references.
            debug_assert!(
                !self.is_committed(id),
                "flush would overwrite committed page {id}"
            );
            let frame = frame_mut(&mut self.cache, id)?;
            stamp_trailer(&mut frame.buf);
            self.backend.write_page(id, &frame.buf)?;
            Metric::PagerBackendWrites.incr();
        }
        self.backend.sync()?;
        for id in dirty {
            frame_mut(&mut self.cache, id)?.dirty = false;
        }
        self.dirty = 0;
        Ok(())
    }

    /// Writes one page straight to the backend, bypassing the write-back
    /// cache (used for the atomic header-slot write of the commit
    /// protocol). Any cached copy of the page is dropped so the cache never
    /// shadows the slot.
    pub fn write_direct(&mut self, id: PageId, buf: &[u8; PAGE_SIZE]) -> Result<()> {
        if self.cache.remove(&id).is_some_and(|f| f.dirty) {
            self.dirty -= 1;
        }
        self.backend.write_page(id, buf)?;
        if id.0 >= self.next_page {
            self.next_page = id.0 + 1;
        }
        Ok(())
    }

    /// Syncs the backend (a durability barrier, no page writes).
    pub fn sync(&mut self) -> Result<()> {
        self.backend.sync()
    }

    /// Reads one page straight from the backend without trailer
    /// verification or caching (header-slot parsing and integrity scans do
    /// their own validation).
    pub fn read_raw(&mut self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> Result<()> {
        self.backend.read_page(id, buf)
    }

    /// Drops the clean cache contents (testing aid to force re-reads).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn evict_clean(&mut self) {
        self.cache.retain(|_, f| f.dirty);
        let cache = &self.cache;
        self.ring.retain(|id| cache.contains_key(id));
        self.hand = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_backend_read_write() {
        let mut b = MemBackend::new();
        let page = [7u8; PAGE_SIZE];
        b.write_page(PageId(2), &page).unwrap();
        assert_eq!(b.page_count(), 3);
        let mut out = [0u8; PAGE_SIZE];
        b.read_page(PageId(2), &mut out).unwrap();
        assert_eq!(out[100], 7);
        // Intermediate pages exist and are zeroed.
        b.read_page(PageId(1), &mut out).unwrap();
        assert_eq!(out[0], 0);
    }

    #[test]
    fn mem_backend_missing_page_errors() {
        let mut b = MemBackend::new();
        let mut out = [0u8; PAGE_SIZE];
        assert!(b.read_page(PageId(0), &mut out).is_err());
    }

    #[test]
    fn pager_allocate_and_rw() {
        let mut p = Pager::new(Box::new(MemBackend::new()));
        let a = p.allocate();
        let b = p.allocate();
        assert_eq!(a, PageId(0));
        assert_eq!(b, PageId(1));
        p.write(a).unwrap()[0] = 42;
        p.write(b).unwrap()[0] = 43;
        assert_eq!(p.read(a).unwrap()[0], 42);
        assert_eq!(p.read(b).unwrap()[0], 43);
    }

    #[test]
    fn pager_flush_persists_to_backend() {
        let mut p = Pager::new(Box::new(MemBackend::new()));
        let a = p.allocate();
        p.write(a).unwrap()[10] = 9;
        p.flush().unwrap();
        p.evict_clean();
        assert_eq!(p.read(a).unwrap()[10], 9);
    }

    #[test]
    fn flushed_pages_carry_valid_trailers() {
        let mut p = Pager::new(Box::new(MemBackend::new()));
        let a = p.allocate();
        p.write(a).unwrap()[0] = 0xAA;
        p.flush().unwrap();
        let mut raw = [0u8; PAGE_SIZE];
        p.read_raw(a, &mut raw).unwrap();
        assert!(trailer_ok(&raw));
        assert_eq!(raw[0], 0xAA);
    }

    #[test]
    fn corrupted_backend_page_fails_checksum_on_read() {
        let mut backend = MemBackend::new();
        // A page that never went through flush has no valid trailer.
        backend.write_page(PageId(0), &[3u8; PAGE_SIZE]).unwrap();
        let mut p = Pager::new(Box::new(backend));
        let before = approxql_metrics::snapshot();
        assert!(matches!(
            p.read(PageId(0)),
            Err(StorageError::CorruptPage(PageId(0), _))
        ));
        let delta = approxql_metrics::snapshot().diff(&before);
        assert_eq!(delta.get(Metric::PagerChecksumFailures), 1);
    }

    #[test]
    fn single_flipped_bit_is_detected() {
        let mut shared = MemBackend::new();
        {
            let mut p = Pager::new(Box::new(shared.clone()));
            let a = p.allocate();
            p.write(a).unwrap()[100] = 5;
            p.flush().unwrap();
            // Pull the flushed page out of the pager's backend.
            let mut raw = [0u8; PAGE_SIZE];
            p.read_raw(a, &mut raw).unwrap();
            shared.write_page(a, &raw).unwrap();
        }
        for &bit in &[0usize, 100 * 8, PAGE_DATA * 8 - 1, PAGE_SIZE * 8 - 1] {
            let mut corrupted = shared.clone();
            let mut raw = [0u8; PAGE_SIZE];
            corrupted.read_page(PageId(0), &mut raw).unwrap();
            raw[bit / 8] ^= 1 << (bit % 8);
            corrupted.write_page(PageId(0), &raw).unwrap();
            let mut p = Pager::new(Box::new(corrupted));
            assert!(
                matches!(p.read(PageId(0)), Err(StorageError::CorruptPage(_, _))),
                "flip of bit {bit} went undetected"
            );
        }
    }

    #[test]
    fn failed_write_leaves_all_pages_dirty_and_retryable() {
        /// Fails the Nth write_page call, then heals.
        struct FailNth {
            inner: MemBackend,
            writes: u32,
            fail_at: Option<u32>,
        }
        impl Backend for FailNth {
            fn read_page(&mut self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> Result<()> {
                self.inner.read_page(id, buf)
            }
            fn write_page(&mut self, id: PageId, buf: &[u8; PAGE_SIZE]) -> Result<()> {
                if self.fail_at == Some(self.writes) {
                    self.fail_at = None;
                    return Err(StorageError::Io(std::io::Error::other("injected")));
                }
                self.writes += 1;
                self.inner.write_page(id, buf)
            }
            fn page_count(&self) -> u32 {
                self.inner.page_count()
            }
            fn sync(&mut self) -> Result<()> {
                Ok(())
            }
        }
        let mut p = Pager::new(Box::new(FailNth {
            inner: MemBackend::new(),
            writes: 0,
            fail_at: Some(2),
        }));
        let ids: Vec<PageId> = (0..4).map(|_| p.allocate()).collect();
        for (i, &id) in ids.iter().enumerate() {
            p.write(id).unwrap()[0] = i as u8 + 1;
        }
        assert!(p.flush().is_err());
        // Every page of the failed batch must still be dirty (retryable),
        // including the ones whose backend write succeeded before the
        // failure: nothing was synced, so nothing may be forgotten.
        assert!(p.has_dirty());
        let dirty_count = ids.iter().filter(|_| true).count();
        assert_eq!(dirty_count, 4);
        p.flush().unwrap();
        assert!(!p.has_dirty());
        p.evict_clean();
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(p.read(id).unwrap()[0], i as u8 + 1);
        }
    }

    #[test]
    fn failed_sync_leaves_pages_dirty() {
        struct FailSync {
            inner: MemBackend,
            fail_next_sync: bool,
        }
        impl Backend for FailSync {
            fn read_page(&mut self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> Result<()> {
                self.inner.read_page(id, buf)
            }
            fn write_page(&mut self, id: PageId, buf: &[u8; PAGE_SIZE]) -> Result<()> {
                self.inner.write_page(id, buf)
            }
            fn page_count(&self) -> u32 {
                self.inner.page_count()
            }
            fn sync(&mut self) -> Result<()> {
                if self.fail_next_sync {
                    self.fail_next_sync = false;
                    return Err(StorageError::Io(std::io::Error::other("fsync lost")));
                }
                Ok(())
            }
        }
        let mut p = Pager::new(Box::new(FailSync {
            inner: MemBackend::new(),
            fail_next_sync: true,
        }));
        let a = p.allocate();
        p.write(a).unwrap()[0] = 7;
        assert!(p.flush().is_err());
        // After a failed fsync the OS may have dropped the write; the page
        // must stay dirty so the retry rewrites it.
        assert!(p.has_dirty());
        p.flush().unwrap();
        assert!(!p.has_dirty());
    }

    #[test]
    fn allocate_run_is_contiguous() {
        let mut p = Pager::new(Box::new(MemBackend::new()));
        let first = p.allocate_run(3);
        assert_eq!(first, PageId(0));
        assert_eq!(p.page_count(), 3);
        let next = p.allocate();
        assert_eq!(next, PageId(3));
    }

    #[test]
    fn scan_larger_than_cache_stays_within_budget() {
        const CAPACITY: usize = 8;
        const PAGES: u32 = 64;
        let mut p = Pager::with_capacity(Box::new(MemBackend::new()), CAPACITY);
        assert_eq!(p.capacity(), CAPACITY);
        for i in 0..PAGES {
            let id = p.allocate();
            p.write(id).unwrap()[0] = i as u8;
        }
        // Unflushed pages are all dirty: the cache must hold every one.
        assert_eq!(p.cached_pages(), PAGES as usize);
        p.flush().unwrap();
        let before = approxql_metrics::snapshot();
        // Two full scans over a store 8x the cache: every page comes back
        // intact and the cache never exceeds its budget.
        for _ in 0..2 {
            for i in 0..PAGES {
                assert_eq!(p.read(PageId(i)).unwrap()[0], i as u8);
                assert!(
                    p.cached_pages() <= CAPACITY,
                    "cache exceeded budget: {} > {CAPACITY}",
                    p.cached_pages()
                );
            }
        }
        let delta = approxql_metrics::snapshot().diff(&before);
        assert!(
            delta.get(Metric::PagerEvictions) >= (PAGES as u64 - CAPACITY as u64),
            "expected clock evictions, got {}",
            delta.get(Metric::PagerEvictions)
        );
        assert!(delta.get(Metric::PagerCacheMisses) > 0);
    }

    #[test]
    fn dirty_pages_survive_cache_pressure() {
        let mut p = Pager::with_capacity(Box::new(MemBackend::new()), 4);
        let ids: Vec<PageId> = (0..16).map(|_| p.allocate()).collect();
        for (i, &id) in ids.iter().enumerate() {
            p.write(id).unwrap()[7] = i as u8 + 1;
        }
        // Nothing has been flushed: every page is dirty and must still be
        // cached (the budget yields rather than lose data).
        assert_eq!(p.cached_pages(), 16);
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(p.read(id).unwrap()[7], i as u8 + 1);
        }
        // After a flush the pages are clean; new traffic shrinks the
        // cache back under its capacity.
        p.flush().unwrap();
        for &id in &ids {
            let _ = p.read(id).unwrap();
            assert!(p.cached_pages() <= 16);
        }
        assert!(p.cached_pages() <= 4 + 1);
    }

    #[test]
    fn dirty_counter_tracks_every_transition() {
        let mut p = Pager::with_capacity(Box::new(MemBackend::new()), 4);
        let ids: Vec<PageId> = (0..16).map(|_| p.allocate()).collect();
        // Re-marking an already-dirty page must not double-count.
        for &id in &ids {
            p.write(id).unwrap()[0] = 1;
        }
        assert!(p.has_dirty());
        assert_eq!(p.cached_pages(), 16);
        p.flush().unwrap();
        assert!(!p.has_dirty());
        // Clean pages are evictable again: the next touch shrinks the
        // over-budget cache.
        let _ = p.read(ids[0]).unwrap();
        assert!(p.cached_pages() <= 4 + 1);
        // `write_direct` drops a dirty cached copy without leaking the
        // counter (the commit header path).
        p.write(ids[1]).unwrap()[0] = 2;
        assert!(p.has_dirty());
        p.write_direct(ids[1], &[0u8; PAGE_SIZE]).unwrap();
        assert!(!p.has_dirty());
        // A recovery rollback recomputes the counter over the survivors.
        p.write(ids[2]).unwrap()[0] = 3;
        assert!(p.has_dirty());
        p.truncate_to(0);
        assert!(!p.has_dirty());
    }

    #[test]
    fn clock_gives_rereferenced_pages_a_second_chance() {
        let mut p = Pager::with_capacity(Box::new(MemBackend::new()), 4);
        for i in 0..6u32 {
            let id = p.allocate();
            p.write(id).unwrap()[0] = i as u8;
        }
        p.flush().unwrap();
        p.evict_clean();
        for i in 0..4u32 {
            let _ = p.read(PageId(i)).unwrap();
        }
        // The first eviction sweeps the reference bits of pages 1..=3.
        let _ = p.read(PageId(4)).unwrap();
        // Re-reference page 1: the next sweep must skip it (second
        // chance) and evict one of the untouched pages instead.
        let _ = p.read(PageId(1)).unwrap();
        let _ = p.read(PageId(5)).unwrap();
        let before = approxql_metrics::snapshot();
        let _ = p.read(PageId(1)).unwrap();
        let delta = approxql_metrics::snapshot().diff(&before);
        assert_eq!(
            delta.get(Metric::PagerCacheMisses),
            0,
            "re-referenced page 1 was evicted despite its second chance"
        );
    }

    #[test]
    fn committed_extent_tracking() {
        let mut p = Pager::new(Box::new(MemBackend::new()));
        let a = p.allocate();
        assert!(!p.is_committed(a));
        p.write(a).unwrap()[0] = 1;
        p.flush().unwrap();
        p.mark_committed();
        assert!(p.is_committed(a));
        let b = p.allocate();
        assert!(!p.is_committed(b));
        // Rollback: the allocation cursor rewinds and the next allocation
        // reuses the discarded page id.
        p.truncate_to(1);
        let c = p.allocate();
        assert_eq!(c, b);
    }

    #[test]
    fn file_backend_roundtrip() {
        let dir = std::env::temp_dir().join(format!("axql-pager-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.db");
        {
            let mut b = FileBackend::create(&path).unwrap();
            let mut page = [0u8; PAGE_SIZE];
            page[0] = 1;
            b.write_page(PageId(0), &page).unwrap();
            page[0] = 2;
            b.write_page(PageId(1), &page).unwrap();
            b.sync().unwrap();
        }
        {
            let mut b = FileBackend::open(&path).unwrap();
            assert_eq!(b.page_count(), 2);
            let mut out = [0u8; PAGE_SIZE];
            b.read_page(PageId(1), &mut out).unwrap();
            assert_eq!(out[0], 2);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_backend_rejects_non_page_aligned_files() {
        let dir = std::env::temp_dir().join(format!("axql-pager2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.db");
        std::fs::write(&path, b"not pages").unwrap();
        assert!(matches!(
            FileBackend::open(&path),
            Err(StorageError::NotAStore)
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
