//! Page-granular I/O with a write-back cache and pluggable backends.

use crate::{Result, StorageError};
use approxql_metrics::Metric;
use std::collections::HashMap;
use std::fmt;
use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

/// The fixed page size of the store.
pub const PAGE_SIZE: usize = 4096;

/// A page number within the store file. Page 0 is the header.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct PageId(pub u32);

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Raw page storage: a file or an in-memory vector.
pub trait Backend {
    /// Reads page `id` into `buf` (the page must exist).
    fn read_page(&mut self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> Result<()>;
    /// Writes `buf` to page `id`, growing the backend if needed.
    fn write_page(&mut self, id: PageId, buf: &[u8; PAGE_SIZE]) -> Result<()>;
    /// Number of pages currently stored.
    fn page_count(&self) -> u32;
    /// Flushes any buffered writes to durable storage.
    fn sync(&mut self) -> Result<()>;
}

/// A backend over a real file.
pub struct FileBackend {
    file: File,
    pages: u32,
}

impl FileBackend {
    /// Creates a new (truncated) store file.
    pub fn create(path: &Path) -> Result<FileBackend> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(FileBackend { file, pages: 0 })
    }

    /// Opens an existing store file.
    pub fn open(path: &Path) -> Result<FileBackend> {
        let file = OpenOptions::new().read(true).write(true).open(path)?;
        let len = file.metadata()?.len();
        if len % PAGE_SIZE as u64 != 0 {
            return Err(StorageError::NotAStore);
        }
        Ok(FileBackend {
            file,
            pages: (len / PAGE_SIZE as u64) as u32,
        })
    }
}

impl Backend for FileBackend {
    fn read_page(&mut self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> Result<()> {
        self.file
            .seek(SeekFrom::Start(id.0 as u64 * PAGE_SIZE as u64))?;
        self.file.read_exact(buf)?;
        Ok(())
    }

    fn write_page(&mut self, id: PageId, buf: &[u8; PAGE_SIZE]) -> Result<()> {
        self.file
            .seek(SeekFrom::Start(id.0 as u64 * PAGE_SIZE as u64))?;
        self.file.write_all(buf)?;
        if id.0 >= self.pages {
            self.pages = id.0 + 1;
        }
        Ok(())
    }

    fn page_count(&self) -> u32 {
        self.pages
    }

    fn sync(&mut self) -> Result<()> {
        self.file.sync_data()?;
        Ok(())
    }
}

/// An in-memory backend (tests, ephemeral stores).
#[derive(Default)]
pub struct MemBackend {
    pages: Vec<Box<[u8; PAGE_SIZE]>>,
}

impl MemBackend {
    /// Creates an empty in-memory backend.
    pub fn new() -> MemBackend {
        MemBackend::default()
    }
}

impl Backend for MemBackend {
    fn read_page(&mut self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> Result<()> {
        match self.pages.get(id.0 as usize) {
            Some(p) => {
                buf.copy_from_slice(&p[..]);
                Ok(())
            }
            None => Err(StorageError::CorruptPage(id, "page does not exist")),
        }
    }

    fn write_page(&mut self, id: PageId, buf: &[u8; PAGE_SIZE]) -> Result<()> {
        let idx = id.0 as usize;
        while self.pages.len() <= idx {
            self.pages.push(Box::new([0u8; PAGE_SIZE]));
        }
        self.pages[idx].copy_from_slice(buf);
        Ok(())
    }

    fn page_count(&self) -> u32 {
        self.pages.len() as u32
    }

    fn sync(&mut self) -> Result<()> {
        Ok(())
    }
}

/// A write-back page cache in front of a [`Backend`].
///
/// All reads and writes go through the cache; [`Pager::flush`] writes every
/// dirty page back. The cache is unbounded — the store's working sets
/// (index postings being built) are expected to fit in memory, and the
/// backend exists for *persistence*, not for out-of-core operation.
pub struct Pager {
    backend: Box<dyn Backend>,
    cache: HashMap<PageId, (Box<[u8; PAGE_SIZE]>, bool)>,
    next_page: u32,
}

impl Pager {
    /// Creates a pager over `backend`.
    pub fn new(backend: Box<dyn Backend>) -> Pager {
        let next_page = backend.page_count();
        Pager {
            backend,
            cache: HashMap::new(),
            next_page,
        }
    }

    /// Allocates a fresh page (zero-filled) and returns its id.
    pub fn allocate(&mut self) -> PageId {
        Metric::PagerPageAllocs.incr();
        let id = PageId(self.next_page);
        self.next_page += 1;
        self.cache.insert(id, (Box::new([0u8; PAGE_SIZE]), true));
        id
    }

    /// Allocates `n` consecutive pages, returning the first id.
    pub fn allocate_run(&mut self, n: u32) -> PageId {
        let first = PageId(self.next_page);
        for _ in 0..n {
            self.allocate();
        }
        first
    }

    /// Total pages (allocated or on the backend).
    pub fn page_count(&self) -> u32 {
        self.next_page
    }

    /// Reads page `id` (through the cache).
    pub fn read(&mut self, id: PageId) -> Result<&[u8; PAGE_SIZE]> {
        Metric::PagerPageReads.incr();
        if !self.cache.contains_key(&id) {
            Metric::PagerCacheMisses.incr();
            let mut buf = Box::new([0u8; PAGE_SIZE]);
            self.backend.read_page(id, &mut buf)?;
            self.cache.insert(id, (buf, false));
        }
        Ok(&self.cache[&id].0)
    }

    /// Returns a mutable view of page `id`, marking it dirty.
    pub fn write(&mut self, id: PageId) -> Result<&mut [u8; PAGE_SIZE]> {
        Metric::PagerPageWrites.incr();
        if !self.cache.contains_key(&id) {
            Metric::PagerCacheMisses.incr();
            let mut buf = Box::new([0u8; PAGE_SIZE]);
            if id.0 < self.backend.page_count() {
                self.backend.read_page(id, &mut buf)?;
            }
            self.cache.insert(id, (buf, false));
        }
        let entry = self.cache.get_mut(&id).unwrap();
        entry.1 = true;
        Ok(&mut entry.0)
    }

    /// Writes all dirty pages back and syncs the backend.
    pub fn flush(&mut self) -> Result<()> {
        let mut dirty: Vec<PageId> = self
            .cache
            .iter()
            .filter(|(_, (_, d))| *d)
            .map(|(&id, _)| id)
            .collect();
        dirty.sort();
        Metric::PagerFlushes.incr();
        Metric::PagerBackendWrites.add(dirty.len() as u64);
        for id in dirty {
            let (buf, d) = self.cache.get_mut(&id).unwrap();
            self.backend.write_page(id, buf)?;
            *d = false;
        }
        self.backend.sync()
    }

    /// Drops the clean cache contents (testing aid to force re-reads).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn evict_clean(&mut self) {
        self.cache.retain(|_, (_, dirty)| *dirty);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_backend_read_write() {
        let mut b = MemBackend::new();
        let page = [7u8; PAGE_SIZE];
        b.write_page(PageId(2), &page).unwrap();
        assert_eq!(b.page_count(), 3);
        let mut out = [0u8; PAGE_SIZE];
        b.read_page(PageId(2), &mut out).unwrap();
        assert_eq!(out[100], 7);
        // Intermediate pages exist and are zeroed.
        b.read_page(PageId(1), &mut out).unwrap();
        assert_eq!(out[0], 0);
    }

    #[test]
    fn mem_backend_missing_page_errors() {
        let mut b = MemBackend::new();
        let mut out = [0u8; PAGE_SIZE];
        assert!(b.read_page(PageId(0), &mut out).is_err());
    }

    #[test]
    fn pager_allocate_and_rw() {
        let mut p = Pager::new(Box::new(MemBackend::new()));
        let a = p.allocate();
        let b = p.allocate();
        assert_eq!(a, PageId(0));
        assert_eq!(b, PageId(1));
        p.write(a).unwrap()[0] = 42;
        p.write(b).unwrap()[0] = 43;
        assert_eq!(p.read(a).unwrap()[0], 42);
        assert_eq!(p.read(b).unwrap()[0], 43);
    }

    #[test]
    fn pager_flush_persists_to_backend() {
        let mut p = Pager::new(Box::new(MemBackend::new()));
        let a = p.allocate();
        p.write(a).unwrap()[10] = 9;
        p.flush().unwrap();
        p.evict_clean();
        assert_eq!(p.read(a).unwrap()[10], 9);
    }

    #[test]
    fn allocate_run_is_contiguous() {
        let mut p = Pager::new(Box::new(MemBackend::new()));
        let first = p.allocate_run(3);
        assert_eq!(first, PageId(0));
        assert_eq!(p.page_count(), 3);
        let next = p.allocate();
        assert_eq!(next, PageId(3));
    }

    #[test]
    fn file_backend_roundtrip() {
        let dir = std::env::temp_dir().join(format!("axql-pager-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.db");
        {
            let mut b = FileBackend::create(&path).unwrap();
            let mut page = [0u8; PAGE_SIZE];
            page[0] = 1;
            b.write_page(PageId(0), &page).unwrap();
            page[0] = 2;
            b.write_page(PageId(1), &page).unwrap();
            b.sync().unwrap();
        }
        {
            let mut b = FileBackend::open(&path).unwrap();
            assert_eq!(b.page_count(), 2);
            let mut out = [0u8; PAGE_SIZE];
            b.read_page(PageId(1), &mut out).unwrap();
            assert_eq!(out[0], 2);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn file_backend_rejects_non_page_aligned_files() {
        let dir = std::env::temp_dir().join(format!("axql-pager2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.db");
        std::fs::write(&path, b"not pages").unwrap();
        assert!(matches!(
            FileBackend::open(&path),
            Err(StorageError::NotAStore)
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
