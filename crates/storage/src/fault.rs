//! Deterministic fault injection for crash-safety tests.
//!
//! [`FaultBackend`] wraps any [`Backend`] and simulates a process kill (or
//! power loss) at an exact backend-operation index, optionally mangling
//! the in-flight write the way real storage does: dropping it, tearing it
//! (a prefix lands, the rest does not), or flipping one bit. It can also
//! fail an `fsync` without crashing, which exercises the retry path.
//!
//! Tests pair it with [`SharedMemBackend`] so the "disk" survives the
//! simulated crash: the backend handed to the store and the handle kept by
//! the test share one page vector, and [`SharedMemBackend::snapshot`]
//! captures what a post-crash reopen would see.

use crate::pager::{Backend, MemBackend, PageId, PAGE_SIZE};
use crate::{Result, StorageError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::{Cell, RefCell};
use std::rc::Rc;

/// What happens to the write at the crash point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CrashMode {
    /// The write is lost entirely (never reached the device).
    DropWrite,
    /// A torn 4 KiB write: a random-length prefix lands over the old page
    /// content, the tail does not.
    TornWrite,
    /// The write lands with a single bit flipped (media corruption that
    /// only checksums can catch).
    BitFlip,
    /// The write lands intact; the crash hits immediately after.
    AfterWrite,
}

/// Configuration for a [`FaultBackend`].
#[derive(Clone, Copy, Debug)]
pub struct FaultConfig {
    /// Crash on the operation with this index (writes and syncs share one
    /// 0-based counter). `None` never crashes.
    pub crash_after_ops: Option<u64>,
    /// How the crashing write is mangled (ignored when the crashing
    /// operation is a sync).
    pub mode: CrashMode,
    /// Fail the Nth sync (0-based, counted separately) with an I/O error
    /// *without* crashing — the backend stays usable, so the caller can
    /// retry. `None` never fails a sync.
    pub fail_sync_at: Option<u64>,
    /// Seed for torn-write lengths and bit-flip positions.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> FaultConfig {
        FaultConfig {
            crash_after_ops: None,
            mode: CrashMode::AfterWrite,
            fail_sync_at: None,
            seed: 0,
        }
    }
}

/// A [`MemBackend`] behind a shared handle, so a test can inspect the
/// "disk" after the store (which owns a clone of the handle) crashed.
#[derive(Clone, Default)]
pub struct SharedMemBackend {
    pages: Rc<RefCell<MemBackend>>,
}

impl SharedMemBackend {
    /// Creates an empty shared backend.
    pub fn new() -> SharedMemBackend {
        SharedMemBackend::default()
    }

    /// A point-in-time copy of the persisted pages — what a reopen after
    /// the crash would read.
    pub fn snapshot(&self) -> MemBackend {
        self.pages.borrow().clone()
    }
}

impl From<MemBackend> for SharedMemBackend {
    /// Wraps an existing page vector (e.g. a [`SharedMemBackend::snapshot`])
    /// so it can be reopened and written again.
    fn from(pages: MemBackend) -> SharedMemBackend {
        SharedMemBackend {
            pages: Rc::new(RefCell::new(pages)),
        }
    }
}

impl Backend for SharedMemBackend {
    fn read_page(&mut self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> Result<()> {
        self.pages.borrow_mut().read_page(id, buf)
    }

    fn write_page(&mut self, id: PageId, buf: &[u8; PAGE_SIZE]) -> Result<()> {
        self.pages.borrow_mut().write_page(id, buf)
    }

    fn page_count(&self) -> u32 {
        self.pages.borrow().page_count()
    }

    fn sync(&mut self) -> Result<()> {
        self.pages.borrow_mut().sync()
    }
}

fn crashed_err() -> StorageError {
    StorageError::Io(std::io::Error::other("simulated crash: device gone"))
}

/// A fault-injecting wrapper around a [`Backend`]. See the module docs.
pub struct FaultBackend {
    inner: Box<dyn Backend>,
    cfg: FaultConfig,
    /// Completed operations (shared so the test can read the count after
    /// the backend moved into a store).
    ops: Rc<Cell<u64>>,
    syncs: u64,
    crashed: bool,
}

impl FaultBackend {
    /// Wraps `inner` with the given fault plan.
    pub fn new(inner: Box<dyn Backend>, cfg: FaultConfig) -> FaultBackend {
        FaultBackend {
            inner,
            cfg,
            ops: Rc::new(Cell::new(0)),
            syncs: 0,
            crashed: false,
        }
    }

    /// Handle to the operation counter (clone it before boxing the backend
    /// into a store).
    pub fn op_counter(&self) -> Rc<Cell<u64>> {
        Rc::clone(&self.ops)
    }

    fn check_alive(&self) -> Result<()> {
        if self.crashed {
            Err(crashed_err())
        } else {
            Ok(())
        }
    }

    fn crash_now(&self) -> bool {
        self.cfg.crash_after_ops == Some(self.ops.get())
    }
}

impl Backend for FaultBackend {
    fn read_page(&mut self, id: PageId, buf: &mut [u8; PAGE_SIZE]) -> Result<()> {
        self.check_alive()?;
        self.inner.read_page(id, buf)
    }

    fn write_page(&mut self, id: PageId, buf: &[u8; PAGE_SIZE]) -> Result<()> {
        self.check_alive()?;
        if self.crash_now() {
            self.crashed = true;
            // Vary the mangling per crash point but keep it reproducible.
            let mut rng =
                StdRng::seed_from_u64(self.cfg.seed ^ self.ops.get().wrapping_mul(0x9E37_79B9));
            match self.cfg.mode {
                CrashMode::DropWrite => {}
                CrashMode::TornWrite => {
                    let mut torn = [0u8; PAGE_SIZE];
                    if id.0 < self.inner.page_count() {
                        self.inner.read_page(id, &mut torn)?;
                    }
                    let keep = rng.gen_range(1..PAGE_SIZE);
                    torn[..keep].copy_from_slice(&buf[..keep]);
                    self.inner.write_page(id, &torn)?;
                }
                CrashMode::BitFlip => {
                    let mut flipped = *buf;
                    let bit = rng.gen_range(0..PAGE_SIZE * 8);
                    flipped[bit / 8] ^= 1 << (bit % 8);
                    self.inner.write_page(id, &flipped)?;
                }
                CrashMode::AfterWrite => {
                    self.inner.write_page(id, buf)?;
                }
            }
            return Err(crashed_err());
        }
        self.inner.write_page(id, buf)?;
        self.ops.set(self.ops.get() + 1);
        Ok(())
    }

    fn page_count(&self) -> u32 {
        self.inner.page_count()
    }

    fn sync(&mut self) -> Result<()> {
        self.check_alive()?;
        if self.cfg.fail_sync_at == Some(self.syncs) {
            self.syncs += 1;
            return Err(StorageError::Io(std::io::Error::other(
                "injected fsync failure",
            )));
        }
        self.syncs += 1;
        if self.crash_now() {
            // A sync has no payload to tear: the crash simply means the
            // barrier never completed.
            self.crashed = true;
            return Err(crashed_err());
        }
        self.inner.sync()?;
        self.ops.set(self.ops.get() + 1);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_ops_without_faults() {
        let mut fb = FaultBackend::new(Box::new(MemBackend::new()), FaultConfig::default());
        let ops = fb.op_counter();
        fb.write_page(PageId(0), &[1u8; PAGE_SIZE]).unwrap();
        fb.sync().unwrap();
        fb.write_page(PageId(1), &[2u8; PAGE_SIZE]).unwrap();
        assert_eq!(ops.get(), 3);
    }

    #[test]
    fn crash_kills_all_later_operations() {
        let mut fb = FaultBackend::new(
            Box::new(MemBackend::new()),
            FaultConfig {
                crash_after_ops: Some(1),
                ..FaultConfig::default()
            },
        );
        fb.write_page(PageId(0), &[1u8; PAGE_SIZE]).unwrap();
        assert!(fb.write_page(PageId(1), &[2u8; PAGE_SIZE]).is_err());
        let mut buf = [0u8; PAGE_SIZE];
        assert!(fb.read_page(PageId(0), &mut buf).is_err());
        assert!(fb.sync().is_err());
        assert!(fb.write_page(PageId(2), &[3u8; PAGE_SIZE]).is_err());
    }

    #[test]
    fn torn_write_keeps_a_prefix_over_old_content() {
        let shared = SharedMemBackend::new();
        let mut seeder = shared.clone();
        seeder.write_page(PageId(0), &[0xAAu8; PAGE_SIZE]).unwrap();
        let mut fb = FaultBackend::new(
            Box::new(shared.clone()),
            FaultConfig {
                crash_after_ops: Some(0),
                mode: CrashMode::TornWrite,
                seed: 7,
                ..FaultConfig::default()
            },
        );
        assert!(fb.write_page(PageId(0), &[0xBBu8; PAGE_SIZE]).is_err());
        let mut snap = shared.snapshot();
        let mut buf = [0u8; PAGE_SIZE];
        snap.read_page(PageId(0), &mut buf).unwrap();
        assert_eq!(buf[0], 0xBB, "no prefix of the new write landed");
        assert_eq!(
            buf[PAGE_SIZE - 1],
            0xAA,
            "the whole write landed — not torn"
        );
    }

    #[test]
    fn bit_flip_changes_exactly_one_bit() {
        let shared = SharedMemBackend::new();
        let mut fb = FaultBackend::new(
            Box::new(shared.clone()),
            FaultConfig {
                crash_after_ops: Some(0),
                mode: CrashMode::BitFlip,
                seed: 3,
                ..FaultConfig::default()
            },
        );
        let page = [0u8; PAGE_SIZE];
        assert!(fb.write_page(PageId(0), &page).is_err());
        let mut snap = shared.snapshot();
        let mut buf = [0u8; PAGE_SIZE];
        snap.read_page(PageId(0), &mut buf).unwrap();
        let ones: u32 = buf.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1);
    }

    #[test]
    fn failed_sync_does_not_crash_the_backend() {
        let mut fb = FaultBackend::new(
            Box::new(MemBackend::new()),
            FaultConfig {
                fail_sync_at: Some(0),
                ..FaultConfig::default()
            },
        );
        fb.write_page(PageId(0), &[1u8; PAGE_SIZE]).unwrap();
        assert!(fb.sync().is_err());
        // Still alive: the retry succeeds.
        fb.sync().unwrap();
        fb.write_page(PageId(1), &[2u8; PAGE_SIZE]).unwrap();
    }
}
