//! Out-of-line value storage in contiguous page runs.
//!
//! A value of `len` bytes is stored as `ceil(len / PAGE_DATA)` consecutive
//! pages (the last 8 bytes of every page belong to the pager's checksum
//! trailer); the B+-tree leaf remembers `(first_page, len)`. Values are
//! immutable once written — overwriting a key writes a fresh run.

use crate::pager::{PageId, Pager, PAGE_DATA};
use crate::{Result, StorageError};

/// Location of a stored value.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ValueRef {
    /// First page of the run; meaningless when `len == 0`.
    pub first_page: PageId,
    /// Value length in bytes.
    pub len: u32,
}

impl ValueRef {
    /// Pages the run occupies.
    pub(crate) fn page_span(&self) -> u32 {
        (self.len as usize).div_ceil(PAGE_DATA) as u32
    }
}

/// Writes `value` into freshly allocated pages.
pub fn write_value(pager: &mut Pager, value: &[u8]) -> Result<ValueRef> {
    let Ok(len) = u32::try_from(value.len()) else {
        return Err(StorageError::ValueTooLarge(value.len()));
    };
    if value.is_empty() {
        return Ok(ValueRef {
            first_page: PageId(0),
            len: 0,
        });
    }
    let npages = value.len().div_ceil(PAGE_DATA) as u32;
    let first = pager.allocate_run(npages);
    for (i, chunk) in value.chunks(PAGE_DATA).enumerate() {
        let page = pager.write(PageId(first.0 + i as u32))?;
        page[..chunk.len()].copy_from_slice(chunk);
    }
    Ok(ValueRef {
        first_page: first,
        len,
    })
}

/// Reads a value previously written with [`write_value`].
pub fn read_value(pager: &mut Pager, vref: ValueRef) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(vref.len as usize);
    let mut remaining = vref.len as usize;
    let mut page = vref.first_page;
    while remaining > 0 {
        let data = pager.read(page)?;
        let take = remaining.min(PAGE_DATA);
        out.extend_from_slice(&data[..take]);
        remaining -= take;
        page = PageId(page.0 + 1);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::MemBackend;

    fn pager() -> Pager {
        let mut p = Pager::new(Box::new(MemBackend::new()));
        p.allocate(); // reserve page 0 like the store header does
        p
    }

    #[test]
    fn empty_value() {
        let mut p = pager();
        let r = write_value(&mut p, b"").unwrap();
        assert_eq!(r.len, 0);
        assert_eq!(read_value(&mut p, r).unwrap(), b"");
    }

    #[test]
    fn small_value_roundtrip() {
        let mut p = pager();
        let r = write_value(&mut p, b"hello world").unwrap();
        assert_eq!(read_value(&mut p, r).unwrap(), b"hello world");
    }

    #[test]
    fn exactly_one_page_of_payload() {
        let mut p = pager();
        let v = [0xAB; PAGE_DATA].to_vec();
        let r = write_value(&mut p, &v).unwrap();
        assert_eq!(read_value(&mut p, r).unwrap(), v);
        assert_eq!(p.page_count(), 2); // header + 1 value page
        assert_eq!(r.page_span(), 1);
    }

    #[test]
    fn one_byte_over_a_page_spills() {
        let mut p = pager();
        let v = vec![0xCD; PAGE_DATA + 1];
        let r = write_value(&mut p, &v).unwrap();
        assert_eq!(read_value(&mut p, r).unwrap(), v);
        assert_eq!(p.page_count(), 3); // header + 2 value pages
        assert_eq!(r.page_span(), 2);
    }

    #[test]
    fn multi_page_value_roundtrip() {
        let mut p = pager();
        let v: Vec<u8> = (0..PAGE_DATA * 3 + 17).map(|i| (i % 251) as u8).collect();
        let r = write_value(&mut p, &v).unwrap();
        assert_eq!(read_value(&mut p, r).unwrap(), v);
        assert_eq!(p.page_count(), 1 + 4);
        assert_eq!(r.page_span(), 4);
    }

    #[test]
    fn values_do_not_clobber_each_other() {
        let mut p = pager();
        let a = write_value(&mut p, &vec![1u8; PAGE_DATA + 1]).unwrap();
        let b = write_value(&mut p, &[2u8; 10]).unwrap();
        assert_eq!(read_value(&mut p, a).unwrap(), vec![1u8; PAGE_DATA + 1]);
        assert_eq!(read_value(&mut p, b).unwrap(), vec![2u8; 10]);
    }
}
