//! The public store facade: header management + B+-tree + value heap.

use crate::btree::{BTree, Cursor};
use crate::heap::{read_value, write_value};
use crate::pager::{Backend, FileBackend, MemBackend, PageId, Pager, PAGE_SIZE};
use crate::{Result, StorageError};
use approxql_metrics::{time, TimerMetric};
use std::path::Path;

const MAGIC: &[u8; 8] = b"AXQLSTOR";
const VERSION: u32 = 1;

fn fnv64(data: &[u8]) -> u64 {
    let mut h = 0xcbf29ce484222325u64;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// An ordered, persistent key/value store. See the crate docs for the
/// durability and space model.
///
/// ```
/// use approxql_storage::Store;
/// let mut s = Store::in_memory().unwrap();
/// s.put(b"title#piano", b"posting bytes").unwrap();
/// assert_eq!(s.get(b"title#piano").unwrap().as_deref(), Some(&b"posting bytes"[..]));
/// ```
pub struct Store {
    pager: Pager,
    tree: BTree,
}

impl Store {
    /// Creates a store over a fresh backend.
    pub fn create(backend: Box<dyn Backend>) -> Result<Store> {
        let mut pager = Pager::new(backend);
        let header = pager.allocate();
        debug_assert_eq!(header, PageId(0));
        let tree = BTree::create(&mut pager)?;
        let mut store = Store { pager, tree };
        store.write_header()?;
        Ok(store)
    }

    /// Opens a store from an existing backend.
    pub fn open(backend: Box<dyn Backend>) -> Result<Store> {
        let mut pager = Pager::new(backend);
        let page = pager.read(PageId(0))?;
        if &page[0..8] != MAGIC {
            return Err(StorageError::NotAStore);
        }
        let version = u32::from_le_bytes(page[8..12].try_into().unwrap());
        if version != VERSION {
            return Err(StorageError::BadVersion(version));
        }
        let root = u32::from_le_bytes(page[12..16].try_into().unwrap());
        let checksum = u64::from_le_bytes(page[16..24].try_into().unwrap());
        if checksum != fnv64(&page[0..16]) {
            return Err(StorageError::CorruptHeader);
        }
        let tree = BTree::open(PageId(root));
        Ok(Store { pager, tree })
    }

    /// Creates a store file at `path` (truncating any existing file).
    pub fn create_file(path: impl AsRef<Path>) -> Result<Store> {
        Store::create(Box::new(FileBackend::create(path.as_ref())?))
    }

    /// Opens an existing store file.
    pub fn open_file(path: impl AsRef<Path>) -> Result<Store> {
        Store::open(Box::new(FileBackend::open(path.as_ref())?))
    }

    /// Creates an ephemeral in-memory store.
    pub fn in_memory() -> Result<Store> {
        Store::create(Box::new(MemBackend::new()))
    }

    fn write_header(&mut self) -> Result<()> {
        let root = self.tree.root.0;
        let page = self.pager.write(PageId(0))?;
        page[0..8].copy_from_slice(MAGIC);
        page[8..12].copy_from_slice(&VERSION.to_le_bytes());
        page[12..16].copy_from_slice(&root.to_le_bytes());
        let checksum = fnv64(&page[0..16]);
        page[16..24].copy_from_slice(&checksum.to_le_bytes());
        Ok(())
    }

    /// Inserts or replaces `key`. The old value's pages (if any) are
    /// leaked until [`Store::compact_into`].
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        let vref = write_value(&mut self.pager, value)?;
        self.tree.insert(&mut self.pager, key, vref)
    }

    /// Looks up `key`.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        match self.tree.get(&mut self.pager, key)? {
            Some(vref) => Ok(Some(read_value(&mut self.pager, vref)?)),
            None => Ok(None),
        }
    }

    /// `true` if `key` is present (no value read).
    pub fn contains(&mut self, key: &[u8]) -> Result<bool> {
        Ok(self.tree.get(&mut self.pager, key)?.is_some())
    }

    /// Removes `key`; returns whether it existed.
    pub fn delete(&mut self, key: &[u8]) -> Result<bool> {
        self.tree.delete(&mut self.pager, key)
    }

    /// Iterates over all entries with keys in `[start, end)` (unbounded
    /// above when `end` is `None`).
    pub fn scan_range(&mut self, start: &[u8], end: Option<&[u8]>) -> Result<StoreIter<'_>> {
        let cursor = self.tree.seek(&mut self.pager, start)?;
        Ok(StoreIter {
            store: self,
            cursor,
            end: end.map(<[u8]>::to_vec),
        })
    }

    /// Iterates over all entries whose key starts with `prefix`.
    pub fn scan_prefix(&mut self, prefix: &[u8]) -> Result<StoreIter<'_>> {
        // The exclusive upper bound is the prefix with its last byte
        // incremented (carrying); a prefix of all-0xFF bytes has no upper
        // bound.
        let mut end = prefix.to_vec();
        let mut bounded = false;
        while let Some(last) = end.last_mut() {
            if *last < 0xFF {
                *last += 1;
                bounded = true;
                break;
            }
            end.pop();
        }
        let cursor = self.tree.seek(&mut self.pager, prefix)?;
        Ok(StoreIter {
            store: self,
            cursor,
            end: bounded.then_some(end),
        })
    }

    /// Iterates over the whole store in key order.
    pub fn iter_all(&mut self) -> Result<StoreIter<'_>> {
        self.scan_range(b"", None)
    }

    /// Flushes dirty pages and durably records the current tree root.
    pub fn commit(&mut self) -> Result<()> {
        let _timer = time(TimerMetric::StoreCommit);
        self.write_header()?;
        self.pager.flush()
    }

    /// Total pages in the store (a size/fragmentation metric).
    pub fn page_count(&self) -> u32 {
        self.pager.page_count()
    }

    /// Copies every live entry into `target`, dropping leaked pages.
    pub fn compact_into(&mut self, target: &mut Store) -> Result<()> {
        let mut entries = Vec::new();
        {
            let mut it = self.iter_all()?;
            while let Some((k, v)) = it.next_entry()? {
                entries.push((k, v));
            }
        }
        for (k, v) in entries {
            target.put(&k, &v)?;
        }
        target.commit()
    }
}

/// A forward iterator over store entries. Call
/// [`StoreIter::next_entry`] until it yields `None`.
pub struct StoreIter<'a> {
    store: &'a mut Store,
    cursor: Cursor,
    end: Option<Vec<u8>>,
}

impl StoreIter<'_> {
    /// Returns the next `(key, value)` pair in key order.
    pub fn next_entry(&mut self) -> Result<Option<(Vec<u8>, Vec<u8>)>> {
        match self.cursor.next(&mut self.store.pager)? {
            None => Ok(None),
            Some((key, vref)) => {
                if let Some(end) = &self.end {
                    if key.as_slice() >= end.as_slice() {
                        return Ok(None);
                    }
                }
                let value = read_value(&mut self.store.pager, vref)?;
                Ok(Some((key, value)))
            }
        }
    }

    /// Collects the remaining entries (convenience for tests/examples).
    pub fn collect_all(mut self) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut out = Vec::new();
        while let Some(e) = self.next_entry()? {
            out.push(e);
        }
        Ok(out)
    }
}

// Keep PAGE_SIZE referenced so the doc link in lib.rs stays valid even if
// unused here.
const _: () = assert!(PAGE_SIZE >= 1024);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn put_get_delete() {
        let mut s = Store::in_memory().unwrap();
        s.put(b"a", b"1").unwrap();
        s.put(b"b", b"2").unwrap();
        assert_eq!(s.get(b"a").unwrap(), Some(b"1".to_vec()));
        assert!(s.contains(b"b").unwrap());
        assert!(s.delete(b"a").unwrap());
        assert_eq!(s.get(b"a").unwrap(), None);
        assert!(!s.delete(b"a").unwrap());
    }

    #[test]
    fn empty_and_large_values() {
        let mut s = Store::in_memory().unwrap();
        s.put(b"empty", b"").unwrap();
        let big: Vec<u8> = (0..100_000).map(|i| (i % 256) as u8).collect();
        s.put(b"big", &big).unwrap();
        assert_eq!(s.get(b"empty").unwrap(), Some(Vec::new()));
        assert_eq!(s.get(b"big").unwrap(), Some(big));
    }

    #[test]
    fn scan_prefix_selects_only_prefix() {
        let mut s = Store::in_memory().unwrap();
        for k in ["a#1", "a#2", "b#1", "aa#1", "a\u{7f}x"] {
            s.put(k.as_bytes(), k.as_bytes()).unwrap();
        }
        let keys: Vec<String> = s
            .scan_prefix(b"a#")
            .unwrap()
            .collect_all()
            .unwrap()
            .into_iter()
            .map(|(k, _)| String::from_utf8(k).unwrap())
            .collect();
        assert_eq!(keys, vec!["a#1", "a#2"]);
    }

    #[test]
    fn scan_prefix_with_trailing_0xff() {
        let mut s = Store::in_memory().unwrap();
        s.put(&[0xFF, 0xFF, 1], b"x").unwrap();
        s.put(&[0xFF, 0xFF], b"y").unwrap();
        let got = s.scan_prefix(&[0xFF, 0xFF]).unwrap().collect_all().unwrap();
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn scan_range_is_half_open() {
        let mut s = Store::in_memory().unwrap();
        for k in ["a", "b", "c", "d"] {
            s.put(k.as_bytes(), b"").unwrap();
        }
        let keys: Vec<Vec<u8>> = s
            .scan_range(b"b", Some(b"d"))
            .unwrap()
            .collect_all()
            .unwrap()
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(keys, vec![b"b".to_vec(), b"c".to_vec()]);
    }

    #[test]
    fn commit_and_reopen_file() {
        let dir = std::env::temp_dir().join(format!("axql-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.db");
        {
            let mut s = Store::create_file(&path).unwrap();
            for i in 0..2000u32 {
                s.put(format!("key{i:05}").as_bytes(), &i.to_le_bytes())
                    .unwrap();
            }
            s.commit().unwrap();
        }
        {
            let mut s = Store::open_file(&path).unwrap();
            assert_eq!(
                s.get(b"key01234").unwrap(),
                Some(1234u32.to_le_bytes().to_vec())
            );
            assert_eq!(s.iter_all().unwrap().collect_all().unwrap().len(), 2000);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_garbage() {
        let dir = std::env::temp_dir().join(format!("axql-store2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.db");
        std::fs::write(&path, vec![0u8; PAGE_SIZE]).unwrap();
        assert!(matches!(
            Store::open_file(&path),
            Err(StorageError::NotAStore)
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_header_detected() {
        let dir = std::env::temp_dir().join(format!("axql-store3-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.db");
        {
            let mut s = Store::create_file(&path).unwrap();
            s.put(b"k", b"v").unwrap();
            s.commit().unwrap();
        }
        // Flip a bit inside the checksummed header region.
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[13] ^= 0xFF;
        std::fs::write(&path, bytes).unwrap();
        assert!(matches!(
            Store::open_file(&path),
            Err(StorageError::CorruptHeader)
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_drops_leaked_pages() {
        let mut s = Store::in_memory().unwrap();
        let big = vec![1u8; PAGE_SIZE * 4];
        for _ in 0..10 {
            s.put(b"k", &big).unwrap(); // 9 leaked runs
        }
        let before = s.page_count();
        let mut t = Store::in_memory().unwrap();
        s.compact_into(&mut t).unwrap();
        assert!(t.page_count() < before);
        assert_eq!(t.get(b"k").unwrap(), Some(big));
    }

    #[test]
    fn uncommitted_changes_are_lost_on_reopen() {
        let dir = std::env::temp_dir().join(format!("axql-store4-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("u.db");
        {
            let mut s = Store::create_file(&path).unwrap();
            s.put(b"committed", b"1").unwrap();
            s.commit().unwrap();
            s.put(b"uncommitted", b"2").unwrap();
            // no commit
        }
        {
            let mut s = Store::open_file(&path).unwrap();
            assert_eq!(s.get(b"committed").unwrap(), Some(b"1".to_vec()));
            // The uncommitted key may or may not be visible depending on
            // which pages reached the file, but the store must open and
            // stay internally consistent.
            let _ = s.get(b"uncommitted").unwrap();
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
