//! The public store facade: dual-slot header management + B+-tree +
//! value heap.
//!
//! ## Header slots
//!
//! Pages 0 and 1 each hold one header slot (separate pages, so a single
//! torn 4 KiB write can never destroy both):
//!
//! ```text
//! offset  size  field
//!      0     8  magic "AXQLSTOR"
//!      8     4  format version (little-endian u32, currently 2)
//!     12     4  B+-tree root page
//!     16     8  commit sequence number (monotone, starts at 1)
//!     24     4  committed page count (the extent the commit spans)
//!     28     …  zero padding
//!   4088     8  FNV-64 checksum of bytes [0, 4088)
//! ```
//!
//! Commit `n` writes slot `n % 2`, so the previous commit's slot is never
//! overwritten. [`Store::open`] takes the valid slot with the highest
//! sequence number; a torn newest slot therefore rolls back to the
//! previous commit instead of erroring.

use crate::btree::{BTree, Cursor};
use crate::check::CheckReport;
use crate::heap::{read_value, write_value};
use crate::pager::PAGE_SIZE;
use crate::pager::{stamp_trailer, trailer_ok, Backend, FileBackend, MemBackend, PageId, Pager};
use crate::{Result, StorageError};
use approxql_metrics::{time, Metric, TimerMetric};
use std::path::Path;

const MAGIC: &[u8; 8] = b"AXQLSTOR";

/// On-disk format version. Version 2 added page-trailer checksums and
/// dual-slot crash-safe commits; version-1 files are rejected with
/// [`StorageError::BadVersion`].
pub const FORMAT_VERSION: u32 = 2;

/// First page a B+-tree node or value run may occupy (0 and 1 are the
/// header slots).
pub(crate) const FIRST_DATA_PAGE: u32 = 2;

/// A decoded, validated header slot.
#[derive(Clone, Copy, Debug)]
struct Header {
    root: u32,
    csn: u64,
    pages: u32,
}

/// Classification of one header slot during recovery.
enum SlotState {
    /// The page is beyond the end of the file.
    Missing,
    /// No store magic — this was never a header.
    BadMagic,
    /// Magic present but a different format version.
    WrongVersion(u32),
    /// A version-2 slot whose checksum or fields do not validate (torn
    /// write or corruption).
    Corrupt,
    /// A validly checksummed slot claiming more pages than the file holds.
    Truncated {
        claimed: u32,
    },
    Valid(Header),
}

fn read_slot(pager: &mut Pager, index: u32, backend_pages: u32) -> Result<SlotState> {
    if index >= backend_pages {
        return Ok(SlotState::Missing);
    }
    let mut buf = [0u8; PAGE_SIZE];
    pager.read_raw(PageId(index), &mut buf)?;
    if &buf[0..8] != MAGIC {
        return Ok(SlotState::BadMagic);
    }
    let version = u32::from_le_bytes(crate::le_array(&buf[8..12]));
    if version != FORMAT_VERSION {
        return Ok(SlotState::WrongVersion(version));
    }
    if !trailer_ok(&buf) {
        return Ok(SlotState::Corrupt);
    }
    let root = u32::from_le_bytes(crate::le_array(&buf[12..16]));
    let csn = u64::from_le_bytes(crate::le_array(&buf[16..24]));
    let pages = u32::from_le_bytes(crate::le_array(&buf[24..28]));
    if pages > backend_pages {
        return Ok(SlotState::Truncated { claimed: pages });
    }
    if pages < FIRST_DATA_PAGE + 1 || root < FIRST_DATA_PAGE || root >= pages || csn == 0 {
        return Ok(SlotState::Corrupt);
    }
    Ok(SlotState::Valid(Header { root, csn, pages }))
}

/// An ordered, persistent key/value store. See the crate docs for the
/// durability and space model.
///
/// ```
/// use approxql_storage::Store;
/// let mut s = Store::in_memory().unwrap();
/// s.put(b"title#piano", b"posting bytes").unwrap();
/// assert_eq!(s.get(b"title#piano").unwrap().as_deref(), Some(&b"posting bytes"[..]));
/// ```
pub struct Store {
    pub(crate) pager: Pager,
    pub(crate) tree: BTree,
    csn: u64,
}

impl Store {
    /// Creates a store over a fresh backend (and commits the empty state,
    /// so a crash right after creation still leaves an openable file).
    pub fn create(backend: Box<dyn Backend>) -> Result<Store> {
        let mut pager = Pager::new(backend);
        let slot0 = pager.allocate();
        let slot1 = pager.allocate();
        debug_assert_eq!((slot0, slot1), (PageId(0), PageId(1)));
        let tree = BTree::create(&mut pager)?;
        let mut store = Store {
            pager,
            tree,
            csn: 0,
        };
        store.commit()?;
        Ok(store)
    }

    /// Opens a store from an existing backend, recovering to the newest
    /// commit whose header slot validates.
    pub fn open(backend: Box<dyn Backend>) -> Result<Store> {
        let mut pager = Pager::new(backend);
        let backend_pages = pager.backend_pages();
        let slot0 = read_slot(&mut pager, 0, backend_pages)?;
        if let SlotState::WrongVersion(v) = slot0 {
            // A version-1 file carries its (only) header at page 0.
            return Err(StorageError::BadVersion(v));
        }
        let slot1 = read_slot(&mut pager, 1, backend_pages)?;

        let mut best: Option<Header> = None;
        let mut rejected_real_slot = false;
        let mut truncated_claim: Option<u32> = None;
        for state in [&slot0, &slot1] {
            match state {
                SlotState::Valid(h) => {
                    if best.is_none_or(|b| h.csn > b.csn) {
                        best = Some(*h);
                    }
                }
                SlotState::Truncated { claimed } => {
                    rejected_real_slot = true;
                    truncated_claim = Some(*claimed);
                }
                SlotState::Corrupt | SlotState::WrongVersion(_) => rejected_real_slot = true,
                SlotState::Missing | SlotState::BadMagic => {}
            }
        }

        let header = match best {
            Some(h) => {
                if rejected_real_slot {
                    // The newer commit attempt was torn or damaged: we are
                    // falling back to the previous durable commit.
                    Metric::StoreRecoveryRollbacks.incr();
                }
                h
            }
            None => {
                return Err(match truncated_claim {
                    Some(claimed) => StorageError::Truncated {
                        claimed_pages: claimed,
                        actual_pages: backend_pages,
                    },
                    None if rejected_real_slot => StorageError::CorruptHeader,
                    None => StorageError::NotAStore,
                });
            }
        };

        // Discard everything past the committed extent (pages written by
        // a commit that never completed) and freeze the extent.
        pager.truncate_to(header.pages);
        pager.mark_committed();
        Ok(Store {
            pager,
            tree: BTree::open(PageId(header.root)),
            csn: header.csn,
        })
    }

    /// Creates a store file at `path` (truncating any existing file).
    pub fn create_file(path: impl AsRef<Path>) -> Result<Store> {
        Store::create(Box::new(FileBackend::create(path.as_ref())?))
    }

    /// Opens an existing store file.
    pub fn open_file(path: impl AsRef<Path>) -> Result<Store> {
        Store::open(Box::new(FileBackend::open(path.as_ref())?))
    }

    /// Creates an ephemeral in-memory store.
    pub fn in_memory() -> Result<Store> {
        Store::create(Box::new(MemBackend::new()))
    }

    /// Inserts or replaces `key`. The old value's pages (if any) are
    /// leaked until [`Store::compact_into`].
    pub fn put(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        let vref = write_value(&mut self.pager, value)?;
        self.tree.insert(&mut self.pager, key, vref)
    }

    /// Looks up `key`.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        match self.tree.get(&mut self.pager, key)? {
            Some(vref) => Ok(Some(read_value(&mut self.pager, vref)?)),
            None => Ok(None),
        }
    }

    /// `true` if `key` is present (no value read).
    pub fn contains(&mut self, key: &[u8]) -> Result<bool> {
        Ok(self.tree.get(&mut self.pager, key)?.is_some())
    }

    /// Removes `key`; returns whether it existed.
    pub fn delete(&mut self, key: &[u8]) -> Result<bool> {
        self.tree.delete(&mut self.pager, key)
    }

    /// Iterates over all entries with keys in `[start, end)` (unbounded
    /// above when `end` is `None`).
    pub fn scan_range(&mut self, start: &[u8], end: Option<&[u8]>) -> Result<StoreIter<'_>> {
        let cursor = self.tree.seek(&mut self.pager, start)?;
        Ok(StoreIter {
            store: self,
            cursor,
            end: end.map(<[u8]>::to_vec),
        })
    }

    /// Iterates over all entries whose key starts with `prefix`.
    pub fn scan_prefix(&mut self, prefix: &[u8]) -> Result<StoreIter<'_>> {
        // The exclusive upper bound is the prefix with its last byte
        // incremented (carrying); a prefix of all-0xFF bytes has no upper
        // bound.
        let mut end = prefix.to_vec();
        let mut bounded = false;
        while let Some(last) = end.last_mut() {
            if *last < 0xFF {
                *last += 1;
                bounded = true;
                break;
            }
            end.pop();
        }
        let cursor = self.tree.seek(&mut self.pager, prefix)?;
        Ok(StoreIter {
            store: self,
            cursor,
            end: bounded.then_some(end),
        })
    }

    /// Iterates over the whole store in key order.
    pub fn iter_all(&mut self) -> Result<StoreIter<'_>> {
        self.scan_range(b"", None)
    }

    /// Durably commits the current state.
    ///
    /// Ordering: flush dirty data pages → sync → write the alternate
    /// header slot with the next commit sequence number → sync. The slot
    /// write is the commit point; the previous commit's slot is left
    /// untouched, so a crash anywhere in this sequence recovers to either
    /// the previous or (once the slot is durable) the new commit — never
    /// a mixture. A failed commit leaves the store retryable: dirty pages
    /// stay dirty and the sequence number does not advance.
    pub fn commit(&mut self) -> Result<()> {
        let _timer = time(TimerMetric::StoreCommit);
        self.pager.flush()?;
        let next_csn = self.csn + 1;
        let mut buf = [0u8; PAGE_SIZE];
        buf[0..8].copy_from_slice(MAGIC);
        buf[8..12].copy_from_slice(&FORMAT_VERSION.to_le_bytes());
        buf[12..16].copy_from_slice(&self.tree.root.0.to_le_bytes());
        buf[16..24].copy_from_slice(&next_csn.to_le_bytes());
        buf[24..28].copy_from_slice(&self.pager.page_count().to_le_bytes());
        stamp_trailer(&mut buf);
        let slot = PageId((next_csn % 2) as u32);
        self.pager.write_direct(slot, &buf)?;
        self.pager.sync()?;
        self.csn = next_csn;
        self.pager.mark_committed();
        Metric::StoreCommits.incr();
        Ok(())
    }

    /// The sequence number of the last durable commit (starts at 1 for a
    /// freshly created store).
    pub fn commit_sequence(&self) -> u64 {
        self.csn
    }

    /// Total pages in the store (a size/fragmentation metric).
    pub fn page_count(&self) -> u32 {
        self.pager.page_count()
    }

    /// Verifies the integrity of the committed state: every page checksum,
    /// every B+-tree invariant, every out-of-line value run. See
    /// [`CheckReport`].
    pub fn check(&mut self) -> Result<CheckReport> {
        crate::check::run_check(&mut self.pager, self.tree.root, self.csn)
    }

    /// Copies every live entry into `target`, dropping leaked pages.
    pub fn compact_into(&mut self, target: &mut Store) -> Result<()> {
        let mut entries = Vec::new();
        {
            let mut it = self.iter_all()?;
            while let Some((k, v)) = it.next_entry()? {
                entries.push((k, v));
            }
        }
        for (k, v) in entries {
            target.put(&k, &v)?;
        }
        target.commit()
    }
}

/// A forward iterator over store entries. Call
/// [`StoreIter::next_entry`] until it yields `None`.
pub struct StoreIter<'a> {
    store: &'a mut Store,
    cursor: Cursor,
    end: Option<Vec<u8>>,
}

impl StoreIter<'_> {
    /// Returns the next `(key, value)` pair in key order.
    pub fn next_entry(&mut self) -> Result<Option<(Vec<u8>, Vec<u8>)>> {
        match self.cursor.next(&mut self.store.pager)? {
            None => Ok(None),
            Some((key, vref)) => {
                if let Some(end) = &self.end {
                    if key.as_slice() >= end.as_slice() {
                        return Ok(None);
                    }
                }
                let value = read_value(&mut self.store.pager, vref)?;
                Ok(Some((key, value)))
            }
        }
    }

    /// Collects the remaining entries (convenience for tests/examples).
    pub fn collect_all(mut self) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        let mut out = Vec::new();
        while let Some(e) = self.next_entry()? {
            out.push(e);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fnv64;

    #[test]
    fn put_get_delete() {
        let mut s = Store::in_memory().unwrap();
        s.put(b"a", b"1").unwrap();
        s.put(b"b", b"2").unwrap();
        assert_eq!(s.get(b"a").unwrap(), Some(b"1".to_vec()));
        assert!(s.contains(b"b").unwrap());
        assert!(s.delete(b"a").unwrap());
        assert_eq!(s.get(b"a").unwrap(), None);
        assert!(!s.delete(b"a").unwrap());
    }

    #[test]
    fn empty_and_large_values() {
        let mut s = Store::in_memory().unwrap();
        s.put(b"empty", b"").unwrap();
        let big: Vec<u8> = (0..100_000).map(|i| (i % 256) as u8).collect();
        s.put(b"big", &big).unwrap();
        assert_eq!(s.get(b"empty").unwrap(), Some(Vec::new()));
        assert_eq!(s.get(b"big").unwrap(), Some(big));
    }

    #[test]
    fn scan_prefix_selects_only_prefix() {
        let mut s = Store::in_memory().unwrap();
        for k in ["a#1", "a#2", "b#1", "aa#1", "a\u{7f}x"] {
            s.put(k.as_bytes(), k.as_bytes()).unwrap();
        }
        let keys: Vec<String> = s
            .scan_prefix(b"a#")
            .unwrap()
            .collect_all()
            .unwrap()
            .into_iter()
            .map(|(k, _)| String::from_utf8(k).unwrap())
            .collect();
        assert_eq!(keys, vec!["a#1", "a#2"]);
    }

    #[test]
    fn scan_prefix_with_trailing_0xff() {
        let mut s = Store::in_memory().unwrap();
        s.put(&[0xFF, 0xFF, 1], b"x").unwrap();
        s.put(&[0xFF, 0xFF], b"y").unwrap();
        let got = s.scan_prefix(&[0xFF, 0xFF]).unwrap().collect_all().unwrap();
        assert_eq!(got.len(), 2);
    }

    #[test]
    fn scan_range_is_half_open() {
        let mut s = Store::in_memory().unwrap();
        for k in ["a", "b", "c", "d"] {
            s.put(k.as_bytes(), b"").unwrap();
        }
        let keys: Vec<Vec<u8>> = s
            .scan_range(b"b", Some(b"d"))
            .unwrap()
            .collect_all()
            .unwrap()
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        assert_eq!(keys, vec![b"b".to_vec(), b"c".to_vec()]);
    }

    #[test]
    fn commit_and_reopen_file() {
        let dir = std::env::temp_dir().join(format!("axql-store-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("s.db");
        {
            let mut s = Store::create_file(&path).unwrap();
            for i in 0..2000u32 {
                s.put(format!("key{i:05}").as_bytes(), &i.to_le_bytes())
                    .unwrap();
            }
            s.commit().unwrap();
            assert_eq!(s.commit_sequence(), 2); // create + this commit
        }
        {
            let mut s = Store::open_file(&path).unwrap();
            assert_eq!(s.commit_sequence(), 2);
            assert_eq!(
                s.get(b"key01234").unwrap(),
                Some(1234u32.to_le_bytes().to_vec())
            );
            assert_eq!(s.iter_all().unwrap().collect_all().unwrap().len(), 2000);
            s.check().unwrap();
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_garbage() {
        let dir = std::env::temp_dir().join(format!("axql-store2-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.db");
        std::fs::write(&path, vec![0u8; PAGE_SIZE * 2]).unwrap();
        assert!(matches!(
            Store::open_file(&path),
            Err(StorageError::NotAStore)
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_rejects_version_1_files() {
        let dir = std::env::temp_dir().join(format!("axql-store5-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("v1.db");
        // A faithful version-1 header: magic, version, root, then an
        // FNV-64 checksum of the first 16 bytes.
        let mut bytes = vec![0u8; PAGE_SIZE * 2];
        bytes[0..8].copy_from_slice(MAGIC);
        bytes[8..12].copy_from_slice(&1u32.to_le_bytes());
        bytes[12..16].copy_from_slice(&1u32.to_le_bytes());
        let sum = fnv64(&bytes[0..16]);
        bytes[16..24].copy_from_slice(&sum.to_le_bytes());
        std::fs::write(&path, bytes).unwrap();
        assert!(matches!(
            Store::open_file(&path),
            Err(StorageError::BadVersion(1))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_header_in_both_slots_detected() {
        let dir = std::env::temp_dir().join(format!("axql-store3-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("c.db");
        {
            let mut s = Store::create_file(&path).unwrap();
            s.put(b"k", b"v").unwrap();
            s.commit().unwrap();
        }
        // Damage both header slots (flip a checksummed byte in each).
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[13] ^= 0xFF;
        bytes[PAGE_SIZE + 13] ^= 0xFF;
        std::fs::write(&path, bytes).unwrap();
        assert!(matches!(
            Store::open_file(&path),
            Err(StorageError::CorruptHeader)
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_newest_slot_rolls_back_to_previous_commit() {
        let dir = std::env::temp_dir().join(format!("axql-store6-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("r.db");
        {
            let mut s = Store::create_file(&path).unwrap();
            s.put(b"old", b"1").unwrap();
            s.commit().unwrap(); // csn 2 -> slot 0
            s.put(b"new", b"2").unwrap();
            s.commit().unwrap(); // csn 3 -> slot 1
        }
        // Tear the newest slot (slot 1).
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[PAGE_SIZE + 20] ^= 0x5A;
        std::fs::write(&path, bytes).unwrap();
        let before = approxql_metrics::snapshot();
        let mut s = Store::open_file(&path).unwrap();
        let delta = approxql_metrics::snapshot().diff(&before);
        assert_eq!(delta.get(Metric::StoreRecoveryRollbacks), 1);
        assert_eq!(s.commit_sequence(), 2);
        assert_eq!(s.get(b"old").unwrap(), Some(b"1".to_vec()));
        assert_eq!(s.get(b"new").unwrap(), None, "rolled-back key visible");
        s.check().unwrap();
        // The recovered store must be writable again.
        s.put(b"after", b"3").unwrap();
        s.commit().unwrap();
        drop(s);
        let mut s = Store::open_file(&path).unwrap();
        assert_eq!(s.get(b"after").unwrap(), Some(b"3".to_vec()));
        s.check().unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_drops_leaked_pages() {
        let mut s = Store::in_memory().unwrap();
        let big = vec![1u8; PAGE_SIZE * 4];
        for _ in 0..10 {
            s.put(b"k", &big).unwrap(); // 9 leaked runs
        }
        let before = s.page_count();
        let mut t = Store::in_memory().unwrap();
        s.compact_into(&mut t).unwrap();
        assert!(t.page_count() < before);
        assert_eq!(t.get(b"k").unwrap(), Some(big));
        t.check().unwrap();
    }

    #[test]
    fn uncommitted_changes_are_lost_on_reopen() {
        let dir = std::env::temp_dir().join(format!("axql-store4-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("u.db");
        {
            let mut s = Store::create_file(&path).unwrap();
            s.put(b"committed", b"1").unwrap();
            s.commit().unwrap();
            s.put(b"uncommitted", b"2").unwrap();
            // no commit
        }
        {
            let mut s = Store::open_file(&path).unwrap();
            assert_eq!(s.get(b"committed").unwrap(), Some(b"1".to_vec()));
            // Recovery is exact: the uncommitted key must be invisible.
            assert_eq!(s.get(b"uncommitted").unwrap(), None);
            s.check().unwrap();
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
