//! The B+-tree over pages: variable-length keys, values out of line.
//!
//! Leaves are chained left-to-right for range scans. Deletion removes the
//! entry from its leaf without rebalancing (empty leaves simply stay in the
//! chain) — adequate for the reproduction's bulk-build-then-read workload
//! and documented in the crate docs.

use crate::heap::ValueRef;
use crate::pager::{PageId, Pager, PAGE_SIZE};
use crate::{Result, StorageError, MAX_KEY_LEN};
use approxql_metrics::Metric;

const TAG_INTERNAL: u8 = 1;
const TAG_LEAF: u8 = 2;
/// Sentinel "no next leaf".
const NO_PAGE: u32 = u32::MAX;

/// Parsed form of a tree page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Routing node: `children.len() == keys.len() + 1`; keys separate the
    /// children (`< key` goes left of it, `>= key` right).
    Internal {
        keys: Vec<Vec<u8>>,
        children: Vec<PageId>,
    },
    /// Data node: sorted `(key, value)` entries plus a right-sibling link.
    Leaf {
        entries: Vec<(Vec<u8>, ValueRef)>,
        next: Option<PageId>,
    },
}

impl Node {
    fn serialized_size(&self) -> usize {
        match self {
            Node::Internal { keys, .. } => {
                1 + 2 + 4 + keys.iter().map(|k| 2 + k.len() + 4).sum::<usize>()
            }
            Node::Leaf { entries, .. } => {
                1 + 2 + 4 + entries.iter().map(|(k, _)| 2 + k.len() + 8).sum::<usize>()
            }
        }
    }

    fn write_page(&self, buf: &mut [u8; PAGE_SIZE]) {
        debug_assert!(self.serialized_size() <= PAGE_SIZE);
        buf.fill(0);
        let mut pos = 0;
        let mut put = |bytes: &[u8], pos: &mut usize| {
            buf[*pos..*pos + bytes.len()].copy_from_slice(bytes);
            *pos += bytes.len();
        };
        match self {
            Node::Internal { keys, children } => {
                put(&[TAG_INTERNAL], &mut pos);
                put(&(keys.len() as u16).to_le_bytes(), &mut pos);
                put(&children[0].0.to_le_bytes(), &mut pos);
                for (k, c) in keys.iter().zip(&children[1..]) {
                    put(&(k.len() as u16).to_le_bytes(), &mut pos);
                    put(k, &mut pos);
                    put(&c.0.to_le_bytes(), &mut pos);
                }
            }
            Node::Leaf { entries, next } => {
                put(&[TAG_LEAF], &mut pos);
                put(&(entries.len() as u16).to_le_bytes(), &mut pos);
                put(
                    &next.map(|p| p.0).unwrap_or(NO_PAGE).to_le_bytes(),
                    &mut pos,
                );
                for (k, v) in entries {
                    put(&(k.len() as u16).to_le_bytes(), &mut pos);
                    put(k, &mut pos);
                    put(&v.first_page.0.to_le_bytes(), &mut pos);
                    put(&v.len.to_le_bytes(), &mut pos);
                }
            }
        }
    }

    fn parse(id: PageId, buf: &[u8; PAGE_SIZE]) -> Result<Node> {
        let corrupt = |what| StorageError::CorruptPage(id, what);
        let mut pos = 0usize;
        let take = |n: usize, pos: &mut usize| -> Result<&[u8]> {
            if *pos + n > PAGE_SIZE {
                return Err(StorageError::CorruptPage(id, "page overrun"));
            }
            let s = &buf[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        let tag = take(1, &mut pos)?[0];
        let n = u16::from_le_bytes(take(2, &mut pos)?.try_into().unwrap()) as usize;
        match tag {
            TAG_INTERNAL => {
                let mut children = vec![PageId(u32::from_le_bytes(
                    take(4, &mut pos)?.try_into().unwrap(),
                ))];
                let mut keys = Vec::with_capacity(n);
                for _ in 0..n {
                    let klen = u16::from_le_bytes(take(2, &mut pos)?.try_into().unwrap()) as usize;
                    if klen > MAX_KEY_LEN {
                        return Err(corrupt("key too long"));
                    }
                    keys.push(take(klen, &mut pos)?.to_vec());
                    children.push(PageId(u32::from_le_bytes(
                        take(4, &mut pos)?.try_into().unwrap(),
                    )));
                }
                Ok(Node::Internal { keys, children })
            }
            TAG_LEAF => {
                let next_raw = u32::from_le_bytes(take(4, &mut pos)?.try_into().unwrap());
                let next = (next_raw != NO_PAGE).then_some(PageId(next_raw));
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let klen = u16::from_le_bytes(take(2, &mut pos)?.try_into().unwrap()) as usize;
                    if klen > MAX_KEY_LEN {
                        return Err(corrupt("key too long"));
                    }
                    let key = take(klen, &mut pos)?.to_vec();
                    let first = u32::from_le_bytes(take(4, &mut pos)?.try_into().unwrap());
                    let len = u32::from_le_bytes(take(4, &mut pos)?.try_into().unwrap());
                    entries.push((
                        key,
                        ValueRef {
                            first_page: PageId(first),
                            len,
                        },
                    ));
                }
                Ok(Node::Leaf { entries, next })
            }
            _ => Err(corrupt("unknown node tag")),
        }
    }
}

fn read_node(pager: &mut Pager, id: PageId) -> Result<Node> {
    Metric::BtreeNodeReads.incr();
    Node::parse(id, pager.read(id)?)
}

fn write_node(pager: &mut Pager, id: PageId, node: &Node) -> Result<()> {
    node.write_page(pager.write(id)?);
    Ok(())
}

/// The B+-tree handle; the root page id lives in the store header.
pub struct BTree {
    /// Current root page.
    pub root: PageId,
}

enum InsertResult {
    Done,
    /// The child split: `sep` separates it from the new right sibling.
    Split {
        sep: Vec<u8>,
        right: PageId,
    },
}

impl BTree {
    /// Creates an empty tree (a single empty leaf).
    pub fn create(pager: &mut Pager) -> Result<BTree> {
        let root = pager.allocate();
        write_node(
            pager,
            root,
            &Node::Leaf {
                entries: Vec::new(),
                next: None,
            },
        )?;
        Ok(BTree { root })
    }

    /// Opens a tree whose root is `root`.
    pub fn open(root: PageId) -> BTree {
        BTree { root }
    }

    /// Looks up `key`.
    pub fn get(&self, pager: &mut Pager, key: &[u8]) -> Result<Option<ValueRef>> {
        Metric::BtreeGets.incr();
        let mut page = self.root;
        loop {
            match read_node(pager, page)? {
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| k.as_slice() <= key);
                    page = children[idx];
                }
                Node::Leaf { entries, .. } => {
                    return Ok(entries
                        .binary_search_by(|(k, _)| k.as_slice().cmp(key))
                        .ok()
                        .map(|i| entries[i].1));
                }
            }
        }
    }

    /// Inserts or replaces `key`.
    pub fn insert(&mut self, pager: &mut Pager, key: &[u8], value: ValueRef) -> Result<()> {
        if key.len() > MAX_KEY_LEN {
            return Err(StorageError::KeyTooLong(key.len()));
        }
        Metric::BtreeInserts.incr();
        match self.insert_rec(pager, self.root, key, value)? {
            InsertResult::Done => Ok(()),
            InsertResult::Split { sep, right } => {
                let old_root = self.root;
                let new_root = pager.allocate();
                write_node(
                    pager,
                    new_root,
                    &Node::Internal {
                        keys: vec![sep],
                        children: vec![old_root, right],
                    },
                )?;
                self.root = new_root;
                Ok(())
            }
        }
    }

    fn insert_rec(
        &mut self,
        pager: &mut Pager,
        page: PageId,
        key: &[u8],
        value: ValueRef,
    ) -> Result<InsertResult> {
        match read_node(pager, page)? {
            Node::Leaf { mut entries, next } => {
                match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(i) => entries[i].1 = value,
                    Err(i) => entries.insert(i, (key.to_vec(), value)),
                }
                let node = Node::Leaf { entries, next };
                if node.serialized_size() <= PAGE_SIZE {
                    write_node(pager, page, &node)?;
                    return Ok(InsertResult::Done);
                }
                // Split: move the upper half to a fresh right sibling.
                Metric::BtreeNodeSplits.incr();
                let (mut entries, next) = match node {
                    Node::Leaf { entries, next } => (entries, next),
                    _ => unreachable!(),
                };
                let mid = entries.len() / 2;
                let right_entries = entries.split_off(mid);
                let sep = right_entries[0].0.clone();
                let right_page = pager.allocate();
                write_node(
                    pager,
                    right_page,
                    &Node::Leaf {
                        entries: right_entries,
                        next,
                    },
                )?;
                write_node(
                    pager,
                    page,
                    &Node::Leaf {
                        entries,
                        next: Some(right_page),
                    },
                )?;
                Ok(InsertResult::Split {
                    sep,
                    right: right_page,
                })
            }
            Node::Internal {
                mut keys,
                mut children,
            } => {
                let idx = keys.partition_point(|k| k.as_slice() <= key);
                match self.insert_rec(pager, children[idx], key, value)? {
                    InsertResult::Done => Ok(InsertResult::Done),
                    InsertResult::Split { sep, right } => {
                        keys.insert(idx, sep);
                        children.insert(idx + 1, right);
                        let node = Node::Internal { keys, children };
                        if node.serialized_size() <= PAGE_SIZE {
                            write_node(pager, page, &node)?;
                            return Ok(InsertResult::Done);
                        }
                        Metric::BtreeNodeSplits.incr();
                        let (mut keys, mut children) = match node {
                            Node::Internal { keys, children } => (keys, children),
                            _ => unreachable!(),
                        };
                        // Push up the middle key; right sibling takes the
                        // upper halves.
                        let mid = keys.len() / 2;
                        let up = keys[mid].clone();
                        let right_keys = keys.split_off(mid + 1);
                        keys.pop(); // `up` moves to the parent
                        let right_children = children.split_off(mid + 1);
                        let right_page = pager.allocate();
                        write_node(
                            pager,
                            right_page,
                            &Node::Internal {
                                keys: right_keys,
                                children: right_children,
                            },
                        )?;
                        write_node(pager, page, &Node::Internal { keys, children })?;
                        Ok(InsertResult::Split {
                            sep: up,
                            right: right_page,
                        })
                    }
                }
            }
        }
    }

    /// Removes `key`, returning whether it was present. Leaves are not
    /// rebalanced.
    pub fn delete(&mut self, pager: &mut Pager, key: &[u8]) -> Result<bool> {
        Metric::BtreeDeletes.incr();
        let mut page = self.root;
        loop {
            match read_node(pager, page)? {
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| k.as_slice() <= key);
                    page = children[idx];
                }
                Node::Leaf { mut entries, next } => {
                    match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                        Ok(i) => {
                            entries.remove(i);
                            write_node(pager, page, &Node::Leaf { entries, next })?;
                            return Ok(true);
                        }
                        Err(_) => return Ok(false),
                    }
                }
            }
        }
    }

    /// Positions a cursor at the first entry with key `>= start`.
    pub fn seek(&self, pager: &mut Pager, start: &[u8]) -> Result<Cursor> {
        let mut page = self.root;
        loop {
            match read_node(pager, page)? {
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| k.as_slice() <= start);
                    page = children[idx];
                }
                Node::Leaf { entries, .. } => {
                    let idx = entries.partition_point(|(k, _)| k.as_slice() < start);
                    return Ok(Cursor { leaf: page, idx });
                }
            }
        }
    }
}

/// A forward cursor over leaf entries.
pub struct Cursor {
    leaf: PageId,
    idx: usize,
}

impl Cursor {
    /// Returns the next entry, advancing the cursor.
    pub fn next(&mut self, pager: &mut Pager) -> Result<Option<(Vec<u8>, ValueRef)>> {
        loop {
            let node = read_node(pager, self.leaf)?;
            match node {
                Node::Leaf { entries, next } => {
                    if self.idx < entries.len() {
                        Metric::BtreeScanSteps.incr();
                        let out = entries[self.idx].clone();
                        self.idx += 1;
                        return Ok(Some(out));
                    }
                    match next {
                        Some(n) => {
                            self.leaf = n;
                            self.idx = 0;
                        }
                        None => return Ok(None),
                    }
                }
                Node::Internal { .. } => {
                    return Err(StorageError::CorruptPage(
                        self.leaf,
                        "cursor on internal page",
                    ))
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::MemBackend;

    fn setup() -> (Pager, BTree) {
        let mut pager = Pager::new(Box::new(MemBackend::new()));
        pager.allocate(); // fake header page
        let tree = BTree::create(&mut pager).unwrap();
        (pager, tree)
    }

    fn vr(n: u32) -> ValueRef {
        ValueRef {
            first_page: PageId(n),
            len: n,
        }
    }

    #[test]
    fn empty_tree_has_no_entries() {
        let (mut p, t) = setup();
        assert_eq!(t.get(&mut p, b"x").unwrap(), None);
        let mut c = t.seek(&mut p, b"").unwrap();
        assert_eq!(c.next(&mut p).unwrap(), None);
    }

    #[test]
    fn insert_get_roundtrip() {
        let (mut p, mut t) = setup();
        t.insert(&mut p, b"beta", vr(2)).unwrap();
        t.insert(&mut p, b"alpha", vr(1)).unwrap();
        assert_eq!(t.get(&mut p, b"alpha").unwrap(), Some(vr(1)));
        assert_eq!(t.get(&mut p, b"beta").unwrap(), Some(vr(2)));
        assert_eq!(t.get(&mut p, b"gamma").unwrap(), None);
    }

    #[test]
    fn overwrite_replaces() {
        let (mut p, mut t) = setup();
        t.insert(&mut p, b"k", vr(1)).unwrap();
        t.insert(&mut p, b"k", vr(9)).unwrap();
        assert_eq!(t.get(&mut p, b"k").unwrap(), Some(vr(9)));
    }

    #[test]
    fn delete_removes() {
        let (mut p, mut t) = setup();
        t.insert(&mut p, b"k", vr(1)).unwrap();
        assert!(t.delete(&mut p, b"k").unwrap());
        assert!(!t.delete(&mut p, b"k").unwrap());
        assert_eq!(t.get(&mut p, b"k").unwrap(), None);
    }

    #[test]
    fn many_inserts_force_splits_and_stay_sorted() {
        let (mut p, mut t) = setup();
        let n = 5000u32;
        for i in 0..n {
            // interleaved order
            let k = format!("key{:06}", (i.wrapping_mul(2654435761_u32)) % n);
            t.insert(&mut p, k.as_bytes(), vr(i)).unwrap();
        }
        // The root must have split at least once.
        assert_ne!(t.root, PageId(1));
        // All keys retrievable.
        for i in 0..n {
            let k = format!("key{:06}", (i.wrapping_mul(2654435761_u32)) % n);
            assert!(t.get(&mut p, k.as_bytes()).unwrap().is_some(), "lost {k}");
        }
        // Full scan yields sorted unique keys.
        let mut c = t.seek(&mut p, b"").unwrap();
        let mut prev: Option<Vec<u8>> = None;
        let mut count = 0;
        while let Some((k, _)) = c.next(&mut p).unwrap() {
            if let Some(pv) = &prev {
                assert!(pv < &k, "scan out of order");
            }
            prev = Some(k);
            count += 1;
        }
        // The multiplier is odd and n divides 2^32, so i -> i*m % n is a
        // bijection for n a power of two; it is not here, so dedupe happens.
        let distinct: std::collections::HashSet<u32> = (0..n)
            .map(|i| (i.wrapping_mul(2654435761_u32)) % n)
            .collect();
        assert_eq!(count, distinct.len());
    }

    #[test]
    fn seek_starts_mid_range() {
        let (mut p, mut t) = setup();
        for i in 0..100u32 {
            t.insert(&mut p, format!("k{i:03}").as_bytes(), vr(i))
                .unwrap();
        }
        let mut c = t.seek(&mut p, b"k050").unwrap();
        let (k, v) = c.next(&mut p).unwrap().unwrap();
        assert_eq!(k, b"k050");
        assert_eq!(v, vr(50));
        let (k, _) = c.next(&mut p).unwrap().unwrap();
        assert_eq!(k, b"k051");
    }

    #[test]
    fn seek_between_keys_lands_on_next() {
        let (mut p, mut t) = setup();
        t.insert(&mut p, b"a", vr(1)).unwrap();
        t.insert(&mut p, b"c", vr(3)).unwrap();
        let mut cur = t.seek(&mut p, b"b").unwrap();
        assert_eq!(cur.next(&mut p).unwrap().unwrap().0, b"c");
    }

    #[test]
    fn rejects_oversized_keys() {
        let (mut p, mut t) = setup();
        let k = vec![b'x'; MAX_KEY_LEN + 1];
        assert!(matches!(
            t.insert(&mut p, &k, vr(0)),
            Err(StorageError::KeyTooLong(_))
        ));
    }

    #[test]
    fn max_len_keys_work() {
        let (mut p, mut t) = setup();
        for i in 0..50u8 {
            let mut k = vec![i; MAX_KEY_LEN];
            k[0] = i;
            t.insert(&mut p, &k, vr(i as u32)).unwrap();
        }
        for i in 0..50u8 {
            let k = vec![i; MAX_KEY_LEN];
            assert_eq!(t.get(&mut p, &k).unwrap(), Some(vr(i as u32)));
        }
    }

    #[test]
    fn node_page_roundtrip() {
        let internal = Node::Internal {
            keys: vec![b"m".to_vec()],
            children: vec![PageId(3), PageId(4)],
        };
        let mut buf = [0u8; PAGE_SIZE];
        internal.write_page(&mut buf);
        assert_eq!(Node::parse(PageId(9), &buf).unwrap(), internal);

        let leaf = Node::Leaf {
            entries: vec![(b"a".to_vec(), vr(7))],
            next: Some(PageId(11)),
        };
        leaf.write_page(&mut buf);
        assert_eq!(Node::parse(PageId(9), &buf).unwrap(), leaf);
    }

    #[test]
    fn parse_rejects_unknown_tag() {
        let buf = [9u8; PAGE_SIZE];
        assert!(Node::parse(PageId(0), &buf).is_err());
    }
}
