//! The B+-tree over pages: variable-length keys, values out of line,
//! copy-on-write node updates.
//!
//! Pages covered by the last commit are immutable (see the crate-level
//! durability model): modifying a committed node writes the new version to
//! a freshly allocated page and the new id propagates up to the root. This
//! is why leaves carry **no** sibling links — a relocated leaf could not
//! update the `next` pointer of its left neighbour without rewriting it
//! too. Range scans instead use a [`Cursor`] that keeps the path from the
//! root on a stack and ascends/descends between leaves.
//!
//! Deletion removes the entry from its leaf without rebalancing (empty
//! leaves simply stay in the tree) — adequate for the reproduction's
//! bulk-build-then-read workload and documented in the crate docs.

use crate::heap::ValueRef;
use crate::pager::{PageId, Pager, PAGE_DATA, PAGE_SIZE};
use crate::{Result, StorageError, MAX_KEY_LEN};
use approxql_metrics::Metric;

const TAG_INTERNAL: u8 = 1;
const TAG_LEAF: u8 = 2;

/// Upper bound on tree depth; a descent deeper than this can only mean a
/// page cycle in a corrupt file, so it errors instead of looping forever.
const MAX_DEPTH: usize = 64;

/// Parsed form of a tree page.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Routing node: `children.len() == keys.len() + 1`; keys separate the
    /// children (`< key` goes left of it, `>= key` right).
    Internal {
        keys: Vec<Vec<u8>>,
        children: Vec<PageId>,
    },
    /// Data node: sorted `(key, value)` entries.
    Leaf { entries: Vec<(Vec<u8>, ValueRef)> },
}

impl Node {
    fn serialized_size(&self) -> usize {
        match self {
            Node::Internal { keys, .. } => {
                1 + 2 + 4 + keys.iter().map(|k| 2 + k.len() + 4).sum::<usize>()
            }
            Node::Leaf { entries } => {
                1 + 2 + entries.iter().map(|(k, _)| 2 + k.len() + 8).sum::<usize>()
            }
        }
    }

    fn serialize_into(&self, buf: &mut [u8; PAGE_SIZE]) {
        debug_assert!(self.serialized_size() <= PAGE_DATA);
        buf.fill(0);
        let mut pos = 0;
        let mut put = |bytes: &[u8], pos: &mut usize| {
            buf[*pos..*pos + bytes.len()].copy_from_slice(bytes);
            *pos += bytes.len();
        };
        match self {
            Node::Internal { keys, children } => {
                put(&[TAG_INTERNAL], &mut pos);
                put(&(keys.len() as u16).to_le_bytes(), &mut pos);
                put(&children[0].0.to_le_bytes(), &mut pos);
                for (k, c) in keys.iter().zip(&children[1..]) {
                    put(&(k.len() as u16).to_le_bytes(), &mut pos);
                    put(k, &mut pos);
                    put(&c.0.to_le_bytes(), &mut pos);
                }
            }
            Node::Leaf { entries } => {
                put(&[TAG_LEAF], &mut pos);
                put(&(entries.len() as u16).to_le_bytes(), &mut pos);
                for (k, v) in entries {
                    put(&(k.len() as u16).to_le_bytes(), &mut pos);
                    put(k, &mut pos);
                    put(&v.first_page.0.to_le_bytes(), &mut pos);
                    put(&v.len.to_le_bytes(), &mut pos);
                }
            }
        }
    }

    pub(crate) fn parse(id: PageId, buf: &[u8; PAGE_SIZE]) -> Result<Node> {
        let corrupt = |what| StorageError::CorruptPage(id, what);
        let mut pos = 0usize;
        let take = |n: usize, pos: &mut usize| -> Result<&[u8]> {
            if *pos + n > PAGE_DATA {
                return Err(StorageError::CorruptPage(id, "page overrun"));
            }
            let s = &buf[*pos..*pos + n];
            *pos += n;
            Ok(s)
        };
        let tag = take(1, &mut pos)?[0];
        let n = u16::from_le_bytes(crate::le_array(take(2, &mut pos)?)) as usize;
        match tag {
            TAG_INTERNAL => {
                let mut children = vec![PageId(u32::from_le_bytes(crate::le_array(take(
                    4, &mut pos,
                )?)))];
                let mut keys = Vec::with_capacity(n);
                for _ in 0..n {
                    let klen = u16::from_le_bytes(crate::le_array(take(2, &mut pos)?)) as usize;
                    if klen > MAX_KEY_LEN {
                        return Err(corrupt("key too long"));
                    }
                    keys.push(take(klen, &mut pos)?.to_vec());
                    children.push(PageId(u32::from_le_bytes(crate::le_array(take(
                        4, &mut pos,
                    )?))));
                }
                Ok(Node::Internal { keys, children })
            }
            TAG_LEAF => {
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let klen = u16::from_le_bytes(crate::le_array(take(2, &mut pos)?)) as usize;
                    if klen > MAX_KEY_LEN {
                        return Err(corrupt("key too long"));
                    }
                    let key = take(klen, &mut pos)?.to_vec();
                    let first = u32::from_le_bytes(crate::le_array(take(4, &mut pos)?));
                    let len = u32::from_le_bytes(crate::le_array(take(4, &mut pos)?));
                    entries.push((
                        key,
                        ValueRef {
                            first_page: PageId(first),
                            len,
                        },
                    ));
                }
                Ok(Node::Leaf { entries })
            }
            _ => Err(corrupt("unknown node tag")),
        }
    }
}

pub(crate) fn read_node(pager: &mut Pager, id: PageId) -> Result<Node> {
    Metric::BtreeNodeReads.incr();
    Node::parse(id, pager.read(id)?)
}

fn write_node(pager: &mut Pager, id: PageId, node: &Node) -> Result<()> {
    node.serialize_into(pager.write(id)?);
    Ok(())
}

/// Writes `node` copy-on-write: in place when `id` is uncommitted,
/// otherwise to a freshly allocated page. Returns the id that now holds
/// the node.
fn write_node_cow(pager: &mut Pager, id: PageId, node: &Node) -> Result<PageId> {
    if pager.is_committed(id) {
        let fresh = pager.allocate();
        write_node(pager, fresh, node)?;
        Ok(fresh)
    } else {
        write_node(pager, id, node)?;
        Ok(id)
    }
}

/// The B+-tree handle; the root page id lives in the store header.
pub struct BTree {
    /// Current root page.
    pub root: PageId,
}

enum InsertResult {
    /// The subtree now lives at `id` (unchanged unless relocated).
    Done { id: PageId },
    /// The child split: `sep` separates `id` from the new right sibling.
    Split {
        id: PageId,
        sep: Vec<u8>,
        right: PageId,
    },
}

impl BTree {
    /// Creates an empty tree (a single empty leaf).
    pub fn create(pager: &mut Pager) -> Result<BTree> {
        let root = pager.allocate();
        write_node(
            pager,
            root,
            &Node::Leaf {
                entries: Vec::new(),
            },
        )?;
        Ok(BTree { root })
    }

    /// Opens a tree whose root is `root`.
    pub fn open(root: PageId) -> BTree {
        BTree { root }
    }

    /// Looks up `key`.
    pub fn get(&self, pager: &mut Pager, key: &[u8]) -> Result<Option<ValueRef>> {
        Metric::BtreeGets.incr();
        let mut page = self.root;
        for _ in 0..MAX_DEPTH {
            match read_node(pager, page)? {
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| k.as_slice() <= key);
                    page = children[idx];
                }
                Node::Leaf { entries } => {
                    return Ok(entries
                        .binary_search_by(|(k, _)| k.as_slice().cmp(key))
                        .ok()
                        .map(|i| entries[i].1));
                }
            }
        }
        Err(StorageError::CorruptPage(
            page,
            "tree deeper than MAX_DEPTH",
        ))
    }

    /// Inserts or replaces `key`.
    pub fn insert(&mut self, pager: &mut Pager, key: &[u8], value: ValueRef) -> Result<()> {
        if key.len() > MAX_KEY_LEN {
            return Err(StorageError::KeyTooLong(key.len()));
        }
        Metric::BtreeInserts.incr();
        match self.insert_rec(pager, self.root, key, value, 0)? {
            InsertResult::Done { id } => {
                self.root = id;
                Ok(())
            }
            InsertResult::Split { id, sep, right } => {
                let new_root = pager.allocate();
                write_node(
                    pager,
                    new_root,
                    &Node::Internal {
                        keys: vec![sep],
                        children: vec![id, right],
                    },
                )?;
                self.root = new_root;
                Ok(())
            }
        }
    }

    fn insert_rec(
        &mut self,
        pager: &mut Pager,
        page: PageId,
        key: &[u8],
        value: ValueRef,
        depth: usize,
    ) -> Result<InsertResult> {
        if depth >= MAX_DEPTH {
            return Err(StorageError::CorruptPage(
                page,
                "tree deeper than MAX_DEPTH",
            ));
        }
        match read_node(pager, page)? {
            Node::Leaf { mut entries } => {
                match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(i) => entries[i].1 = value,
                    Err(i) => entries.insert(i, (key.to_vec(), value)),
                }
                let node = Node::Leaf { entries };
                if node.serialized_size() <= PAGE_DATA {
                    let id = write_node_cow(pager, page, &node)?;
                    return Ok(InsertResult::Done { id });
                }
                // Split: move the upper half to a fresh right sibling.
                Metric::BtreeNodeSplits.incr();
                let Node::Leaf { mut entries } = node else {
                    return Err(StorageError::CorruptPage(
                        page,
                        "leaf changed shape in split",
                    ));
                };
                let mid = entries.len() / 2;
                let right_entries = entries.split_off(mid);
                let sep = right_entries[0].0.clone();
                let right_page = pager.allocate();
                write_node(
                    pager,
                    right_page,
                    &Node::Leaf {
                        entries: right_entries,
                    },
                )?;
                let id = write_node_cow(pager, page, &Node::Leaf { entries })?;
                Ok(InsertResult::Split {
                    id,
                    sep,
                    right: right_page,
                })
            }
            Node::Internal {
                mut keys,
                mut children,
            } => {
                let idx = keys.partition_point(|k| k.as_slice() <= key);
                match self.insert_rec(pager, children[idx], key, value, depth + 1)? {
                    InsertResult::Done { id } => {
                        if id == children[idx] {
                            // Child updated in place: this node is untouched.
                            return Ok(InsertResult::Done { id: page });
                        }
                        children[idx] = id;
                        let new_id =
                            write_node_cow(pager, page, &Node::Internal { keys, children })?;
                        Ok(InsertResult::Done { id: new_id })
                    }
                    InsertResult::Split { id, sep, right } => {
                        children[idx] = id;
                        keys.insert(idx, sep);
                        children.insert(idx + 1, right);
                        let node = Node::Internal { keys, children };
                        if node.serialized_size() <= PAGE_DATA {
                            let new_id = write_node_cow(pager, page, &node)?;
                            return Ok(InsertResult::Done { id: new_id });
                        }
                        Metric::BtreeNodeSplits.incr();
                        let Node::Internal {
                            mut keys,
                            mut children,
                        } = node
                        else {
                            return Err(StorageError::CorruptPage(
                                page,
                                "internal node changed shape in split",
                            ));
                        };
                        // Push up the middle key; right sibling takes the
                        // upper halves.
                        let mid = keys.len() / 2;
                        let up = keys[mid].clone();
                        let right_keys = keys.split_off(mid + 1);
                        keys.pop(); // `up` moves to the parent
                        let right_children = children.split_off(mid + 1);
                        let right_page = pager.allocate();
                        write_node(
                            pager,
                            right_page,
                            &Node::Internal {
                                keys: right_keys,
                                children: right_children,
                            },
                        )?;
                        let new_id =
                            write_node_cow(pager, page, &Node::Internal { keys, children })?;
                        Ok(InsertResult::Split {
                            id: new_id,
                            sep: up,
                            right: right_page,
                        })
                    }
                }
            }
        }
    }

    /// Removes `key`, returning whether it was present. Leaves are not
    /// rebalanced.
    pub fn delete(&mut self, pager: &mut Pager, key: &[u8]) -> Result<bool> {
        Metric::BtreeDeletes.incr();
        let (existed, new_root) = self.delete_rec(pager, self.root, key, 0)?;
        if let Some(id) = new_root {
            self.root = id;
        }
        Ok(existed)
    }

    /// Returns `(key_existed, Some(new_page_id) if the node relocated)`.
    fn delete_rec(
        &self,
        pager: &mut Pager,
        page: PageId,
        key: &[u8],
        depth: usize,
    ) -> Result<(bool, Option<PageId>)> {
        if depth >= MAX_DEPTH {
            return Err(StorageError::CorruptPage(
                page,
                "tree deeper than MAX_DEPTH",
            ));
        }
        match read_node(pager, page)? {
            Node::Leaf { mut entries } => {
                match entries.binary_search_by(|(k, _)| k.as_slice().cmp(key)) {
                    Ok(i) => {
                        entries.remove(i);
                        let id = write_node_cow(pager, page, &Node::Leaf { entries })?;
                        Ok((true, (id != page).then_some(id)))
                    }
                    Err(_) => Ok((false, None)),
                }
            }
            Node::Internal { keys, mut children } => {
                let idx = keys.partition_point(|k| k.as_slice() <= key);
                let (existed, relocated) = self.delete_rec(pager, children[idx], key, depth + 1)?;
                match relocated {
                    None => Ok((existed, None)),
                    Some(child) => {
                        children[idx] = child;
                        let id = write_node_cow(pager, page, &Node::Internal { keys, children })?;
                        Ok((existed, (id != page).then_some(id)))
                    }
                }
            }
        }
    }

    /// Positions a cursor at the first entry with key `>= start`.
    pub fn seek(&self, pager: &mut Pager, start: &[u8]) -> Result<Cursor> {
        let mut stack = Vec::new();
        let mut page = self.root;
        loop {
            if stack.len() >= MAX_DEPTH {
                return Err(StorageError::CorruptPage(
                    page,
                    "tree deeper than MAX_DEPTH",
                ));
            }
            match read_node(pager, page)? {
                Node::Internal { keys, children } => {
                    let idx = keys.partition_point(|k| k.as_slice() <= start);
                    stack.push((page, idx));
                    page = children[idx];
                }
                Node::Leaf { entries } => {
                    let idx = entries.partition_point(|(k, _)| k.as_slice() < start);
                    stack.push((page, idx));
                    return Ok(Cursor { stack });
                }
            }
        }
    }
}

/// A forward cursor over leaf entries.
///
/// Holds the root-to-leaf path as `(page, index)` pairs: the index is the
/// next entry to yield (leaf) or the child currently descended into
/// (internal). When a leaf runs out the cursor ascends to the nearest
/// ancestor with an unvisited child and descends to its leftmost leaf.
pub struct Cursor {
    stack: Vec<(PageId, usize)>,
}

impl Cursor {
    /// Returns the next entry, advancing the cursor.
    pub fn next(&mut self, pager: &mut Pager) -> Result<Option<(Vec<u8>, ValueRef)>> {
        loop {
            let Some(&(page, idx)) = self.stack.last() else {
                return Ok(None);
            };
            match read_node(pager, page)? {
                Node::Leaf { entries } => {
                    if idx < entries.len() {
                        Metric::BtreeScanSteps.incr();
                        if let Some(top) = self.stack.last_mut() {
                            top.1 += 1;
                        }
                        return Ok(Some(entries[idx].clone()));
                    }
                    // Leaf exhausted (possibly empty after deletions):
                    // move to the next leaf in key order.
                    self.stack.pop();
                    self.advance(pager)?;
                }
                Node::Internal { .. } => {
                    return Err(StorageError::CorruptPage(page, "cursor on internal page"));
                }
            }
        }
    }

    /// Pops ancestors whose children are exhausted, then descends into the
    /// next unvisited subtree down to its leftmost leaf. Leaves the stack
    /// empty when the scan is complete.
    fn advance(&mut self, pager: &mut Pager) -> Result<()> {
        while let Some(&(page, idx)) = self.stack.last() {
            match read_node(pager, page)? {
                Node::Internal { children, .. } => {
                    if idx + 1 < children.len() {
                        if let Some(top) = self.stack.last_mut() {
                            top.1 = idx + 1;
                        }
                        return self.descend_first(pager, children[idx + 1]);
                    }
                    self.stack.pop();
                }
                Node::Leaf { .. } => {
                    return Err(StorageError::CorruptPage(page, "leaf as cursor ancestor"));
                }
            }
        }
        Ok(())
    }

    /// Pushes the path to the leftmost leaf under `page`.
    fn descend_first(&mut self, pager: &mut Pager, mut page: PageId) -> Result<()> {
        loop {
            if self.stack.len() >= MAX_DEPTH {
                return Err(StorageError::CorruptPage(
                    page,
                    "tree deeper than MAX_DEPTH",
                ));
            }
            match read_node(pager, page)? {
                Node::Internal { children, .. } => {
                    self.stack.push((page, 0));
                    page = children[0];
                }
                Node::Leaf { .. } => {
                    self.stack.push((page, 0));
                    return Ok(());
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pager::MemBackend;

    fn setup() -> (Pager, BTree) {
        let mut pager = Pager::new(Box::new(MemBackend::new()));
        pager.allocate(); // stand-in for header slot 0
        pager.allocate(); // stand-in for header slot 1
        let tree = BTree::create(&mut pager).unwrap();
        (pager, tree)
    }

    fn vr(n: u32) -> ValueRef {
        ValueRef {
            first_page: PageId(n),
            len: n,
        }
    }

    #[test]
    fn empty_tree_has_no_entries() {
        let (mut p, t) = setup();
        assert_eq!(t.get(&mut p, b"x").unwrap(), None);
        let mut c = t.seek(&mut p, b"").unwrap();
        assert_eq!(c.next(&mut p).unwrap(), None);
    }

    #[test]
    fn insert_get_roundtrip() {
        let (mut p, mut t) = setup();
        t.insert(&mut p, b"beta", vr(2)).unwrap();
        t.insert(&mut p, b"alpha", vr(1)).unwrap();
        assert_eq!(t.get(&mut p, b"alpha").unwrap(), Some(vr(1)));
        assert_eq!(t.get(&mut p, b"beta").unwrap(), Some(vr(2)));
        assert_eq!(t.get(&mut p, b"gamma").unwrap(), None);
    }

    #[test]
    fn overwrite_replaces() {
        let (mut p, mut t) = setup();
        t.insert(&mut p, b"k", vr(1)).unwrap();
        t.insert(&mut p, b"k", vr(9)).unwrap();
        assert_eq!(t.get(&mut p, b"k").unwrap(), Some(vr(9)));
    }

    #[test]
    fn delete_removes() {
        let (mut p, mut t) = setup();
        t.insert(&mut p, b"k", vr(1)).unwrap();
        assert!(t.delete(&mut p, b"k").unwrap());
        assert!(!t.delete(&mut p, b"k").unwrap());
        assert_eq!(t.get(&mut p, b"k").unwrap(), None);
    }

    #[test]
    fn many_inserts_force_splits_and_stay_sorted() {
        let (mut p, mut t) = setup();
        let n = 5000u32;
        for i in 0..n {
            // interleaved order
            let k = format!("key{:06}", (i.wrapping_mul(2654435761_u32)) % n);
            t.insert(&mut p, k.as_bytes(), vr(i)).unwrap();
        }
        // The root must have split at least once.
        assert_ne!(t.root, PageId(2));
        // All keys retrievable.
        for i in 0..n {
            let k = format!("key{:06}", (i.wrapping_mul(2654435761_u32)) % n);
            assert!(t.get(&mut p, k.as_bytes()).unwrap().is_some(), "lost {k}");
        }
        // Full scan yields sorted unique keys.
        let mut c = t.seek(&mut p, b"").unwrap();
        let mut prev: Option<Vec<u8>> = None;
        let mut count = 0;
        while let Some((k, _)) = c.next(&mut p).unwrap() {
            if let Some(pv) = &prev {
                assert!(pv < &k, "scan out of order");
            }
            prev = Some(k);
            count += 1;
        }
        // The multiplier is odd and n divides 2^32, so i -> i*m % n is a
        // bijection for n a power of two; it is not here, so dedupe happens.
        let distinct: std::collections::HashSet<u32> = (0..n)
            .map(|i| (i.wrapping_mul(2654435761_u32)) % n)
            .collect();
        assert_eq!(count, distinct.len());
    }

    #[test]
    fn cow_relocates_committed_pages() {
        let (mut p, mut t) = setup();
        for i in 0..200u32 {
            t.insert(&mut p, format!("k{i:04}").as_bytes(), vr(i))
                .unwrap();
        }
        p.flush().unwrap();
        p.mark_committed();
        let committed_root = t.root;
        let extent = p.committed();
        // Modifying the committed tree must not dirty any committed page.
        t.insert(&mut p, b"k0100", vr(9999)).unwrap();
        assert_ne!(t.root, committed_root, "root not relocated by CoW");
        assert!(
            t.root.0 >= extent,
            "CoW root landed inside the committed extent"
        );
        // The old tree is still fully intact under its old root.
        let old = BTree::open(committed_root);
        assert_eq!(old.get(&mut p, b"k0100").unwrap(), Some(vr(100)));
        assert_eq!(t.get(&mut p, b"k0100").unwrap(), Some(vr(9999)));
        // Deletes relocate too.
        let root_before = t.root;
        p.flush().unwrap();
        p.mark_committed();
        assert!(t.delete(&mut p, b"k0000").unwrap());
        assert_ne!(t.root, root_before);
        assert_eq!(old.get(&mut p, b"k0000").unwrap(), Some(vr(0)));
    }

    #[test]
    fn scan_spans_leaves_after_cow_relocation() {
        let (mut p, mut t) = setup();
        for i in 0..1000u32 {
            t.insert(&mut p, format!("k{i:04}").as_bytes(), vr(i))
                .unwrap();
        }
        p.flush().unwrap();
        p.mark_committed();
        // Relocate a handful of leaves via overwrites.
        for i in (0..1000u32).step_by(97) {
            t.insert(&mut p, format!("k{i:04}").as_bytes(), vr(i + 10_000))
                .unwrap();
        }
        let mut c = t.seek(&mut p, b"").unwrap();
        let mut count = 0u32;
        let mut prev: Option<Vec<u8>> = None;
        while let Some((k, v)) = c.next(&mut p).unwrap() {
            if let Some(pv) = &prev {
                assert!(pv < &k);
            }
            let i: u32 = String::from_utf8_lossy(&k[1..]).parse().unwrap();
            let expect = if i.is_multiple_of(97) { i + 10_000 } else { i };
            assert_eq!(v, vr(expect), "wrong value at {i}");
            prev = Some(k);
            count += 1;
        }
        assert_eq!(count, 1000);
    }

    #[test]
    fn seek_starts_mid_range() {
        let (mut p, mut t) = setup();
        for i in 0..100u32 {
            t.insert(&mut p, format!("k{i:03}").as_bytes(), vr(i))
                .unwrap();
        }
        let mut c = t.seek(&mut p, b"k050").unwrap();
        let (k, v) = c.next(&mut p).unwrap().unwrap();
        assert_eq!(k, b"k050");
        assert_eq!(v, vr(50));
        let (k, _) = c.next(&mut p).unwrap().unwrap();
        assert_eq!(k, b"k051");
    }

    #[test]
    fn seek_between_keys_lands_on_next() {
        let (mut p, mut t) = setup();
        t.insert(&mut p, b"a", vr(1)).unwrap();
        t.insert(&mut p, b"c", vr(3)).unwrap();
        let mut cur = t.seek(&mut p, b"b").unwrap();
        assert_eq!(cur.next(&mut p).unwrap().unwrap().0, b"c");
    }

    #[test]
    fn scan_skips_leaves_emptied_by_deletes() {
        let (mut p, mut t) = setup();
        for i in 0..2000u32 {
            t.insert(&mut p, format!("k{i:04}").as_bytes(), vr(i))
                .unwrap();
        }
        // Empty out a contiguous stretch of keys (several whole leaves).
        for i in 400..1200u32 {
            assert!(t.delete(&mut p, format!("k{i:04}").as_bytes()).unwrap());
        }
        let mut c = t.seek(&mut p, b"k0399").unwrap();
        assert_eq!(c.next(&mut p).unwrap().unwrap().0, b"k0399");
        assert_eq!(c.next(&mut p).unwrap().unwrap().0, b"k1200");
    }

    #[test]
    fn rejects_oversized_keys() {
        let (mut p, mut t) = setup();
        let k = vec![b'x'; MAX_KEY_LEN + 1];
        assert!(matches!(
            t.insert(&mut p, &k, vr(0)),
            Err(StorageError::KeyTooLong(_))
        ));
    }

    #[test]
    fn max_len_keys_work() {
        let (mut p, mut t) = setup();
        for i in 0..50u8 {
            let mut k = vec![i; MAX_KEY_LEN];
            k[0] = i;
            t.insert(&mut p, &k, vr(i as u32)).unwrap();
        }
        for i in 0..50u8 {
            let k = vec![i; MAX_KEY_LEN];
            assert_eq!(t.get(&mut p, &k).unwrap(), Some(vr(i as u32)));
        }
    }

    #[test]
    fn node_page_roundtrip() {
        let internal = Node::Internal {
            keys: vec![b"m".to_vec()],
            children: vec![PageId(3), PageId(4)],
        };
        let mut buf = [0u8; PAGE_SIZE];
        internal.serialize_into(&mut buf);
        assert_eq!(Node::parse(PageId(9), &buf).unwrap(), internal);

        let leaf = Node::Leaf {
            entries: vec![(b"a".to_vec(), vr(7))],
        };
        leaf.serialize_into(&mut buf);
        assert_eq!(Node::parse(PageId(9), &buf).unwrap(), leaf);
    }

    #[test]
    fn parse_rejects_unknown_tag() {
        let buf = [9u8; PAGE_SIZE];
        assert!(Node::parse(PageId(0), &buf).is_err());
    }

    #[test]
    fn cyclic_tree_errors_instead_of_looping() {
        // A root that points at itself must surface as CorruptPage.
        let mut p = Pager::new(Box::new(MemBackend::new()));
        let root = p.allocate();
        let node = Node::Internal {
            keys: vec![b"m".to_vec()],
            children: vec![root, root],
        };
        write_node(&mut p, root, &node).unwrap();
        let t = BTree::open(root);
        assert!(matches!(
            t.get(&mut p, b"q"),
            Err(StorageError::CorruptPage(_, "tree deeper than MAX_DEPTH"))
        ));
        let err = t.seek(&mut p, b"");
        assert!(matches!(err, Err(StorageError::CorruptPage(_, _))));
    }
}
