#![forbid(unsafe_code)]
//! A small single-file key/value store with ordered range scans and
//! crash-safe commits.
//!
//! The paper's system was "implemented in C++ on top of the Berkeley DB"
//! (Section 8.1), which it used as a persistent store for its index
//! postings. This crate is the reproduction's stand-in substrate: a
//! page-based **B+-tree** over a single file, with
//!
//! * arbitrary byte-string keys (≤ [`MAX_KEY_LEN`] bytes) mapping to
//!   arbitrary byte-string values,
//! * ordered iteration (`scan_prefix`, `scan_range`) — the operation the
//!   indexes actually need,
//! * values stored out-of-line in contiguous page runs, so multi-megabyte
//!   posting lists are fine,
//! * a pluggable [`Backend`]: a real file or an in-memory page vector
//!   (useful for tests and ephemeral databases).
//!
//! ## Durability model
//!
//! The store is crash-safe at commit granularity (format version 2):
//! reopening a store after a crash — at *any* backend write — yields
//! exactly the state of the last durable [`Store::commit`], never a torn
//! mixture. Three mechanisms cooperate:
//!
//! * **Page-trailer checksums.** Every page reserves its last 8 bytes
//!   ([`PAGE_SIZE`] − [`PAGE_DATA`]) for an FNV-64 checksum of the
//!   preceding payload, stamped when the page is flushed and verified on
//!   every cache miss. A torn 4 KiB write or a flipped bit surfaces as
//!   [`StorageError::CorruptPage`] (and a `pager.checksum_failures`
//!   metric), never as silently wrong query results.
//!
//! * **Copy-on-write pages.** Pages covered by the last commit are
//!   immutable; modifying one relocates it to a freshly allocated page,
//!   and the new id propagates up the B+-tree. A commit therefore only
//!   ever *appends* pages the previous commit's header does not
//!   reference, so no crash can damage committed state.
//!
//! * **Dual header slots.** Pages 0 and 1 each hold a checksummed header
//!   (root page, committed page count, monotone commit sequence number).
//!   [`Store::commit`] orders: flush data pages → sync → write the
//!   *alternate* slot with the next sequence number → sync. [`Store::open`]
//!   picks the newest slot that validates and rolls back to the other —
//!   counting a `store.recovery_rollbacks` metric — when the newest write
//!   was torn. The commit point is thus a single page write that never
//!   overwrites the previous commit's slot.
//!
//! A failed flush or sync leaves the affected pages dirty in the cache, so
//! a commit that returned an error can simply be retried. Integrity of an
//! existing file can be audited offline with [`Store::check`] (exposed as
//! `approxql check <db>`), which re-walks every B+-tree invariant, value
//! run, and page checksum. Deterministic crash and corruption scenarios
//! are injectable via [`FaultBackend`]. Full write-ahead logging remains
//! out of scope — commits are coarse (one per bulk build), so shadow
//! paging is the better fit.
//!
//! ## Space model
//!
//! Pages are never reclaimed (there is no free list); deleting or
//! overwriting keys leaks the old value pages until the file is rewritten
//! with [`Store::compact_into`]. Copy-on-write relocation adds to the
//! leak, which matches the access pattern of the reproduction: indexes are
//! bulk-built once and then read.

mod btree;
mod check;
mod fault;
mod heap;
mod pager;
mod store;

pub use check::CheckReport;
pub use fault::{CrashMode, FaultBackend, FaultConfig, SharedMemBackend};
pub use pager::{
    Backend, FileBackend, MemBackend, PageId, Pager, DEFAULT_CACHE_PAGES, PAGE_DATA, PAGE_SIZE,
};
pub use store::{Store, StoreIter, FORMAT_VERSION};

use std::fmt;

/// Maximum key length in bytes (keys must fit several times into a page).
pub const MAX_KEY_LEN: usize = 512;

/// FNV-1a 64-bit hash — the checksum used for page trailers and header
/// slots. Not cryptographic; it only needs to catch torn writes and media
/// bit rot.
pub(crate) fn fnv64(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Errors raised by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying I/O error.
    Io(std::io::Error),
    /// The file is not a store created by this crate.
    NotAStore,
    /// Unsupported on-disk format version.
    BadVersion(u32),
    /// No header slot validates (both torn or corrupt).
    CorruptHeader,
    /// A page contains inconsistent data.
    CorruptPage(PageId, &'static str),
    /// The newest valid header claims more pages than the file holds.
    Truncated {
        /// Pages the header says the committed state spans.
        claimed_pages: u32,
        /// Pages actually present in the file.
        actual_pages: u32,
    },
    /// The key exceeds [`MAX_KEY_LEN`].
    KeyTooLong(usize),
    /// The value exceeds the format's 4 GiB-per-value limit.
    ValueTooLarge(usize),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::NotAStore => write!(f, "not an approxql store file"),
            StorageError::BadVersion(v) => write!(f, "unsupported store version {v}"),
            StorageError::CorruptHeader => write!(f, "store header is corrupt in both slots"),
            StorageError::CorruptPage(p, what) => write!(f, "page {p} is corrupt: {what}"),
            StorageError::Truncated {
                claimed_pages,
                actual_pages,
            } => write!(
                f,
                "store file is truncated: header claims {claimed_pages} pages but only \
                 {actual_pages} are present"
            ),
            StorageError::KeyTooLong(n) => {
                write!(f, "key of {n} bytes exceeds the {MAX_KEY_LEN}-byte limit")
            }
            StorageError::ValueTooLarge(n) => {
                write!(f, "value of {n} bytes exceeds the 4 GiB per-value limit")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Shorthand result type.
pub type Result<T> = std::result::Result<T, StorageError>;

/// Copies the first `N` bytes of `s` into a fixed array, zero-padding when
/// `s` is shorter. Deserialization callers always pass exactly `N` bytes
/// (their `take(N)` already bounds-checked); this helper just expresses
/// that without a panicking `try_into().unwrap()`.
pub(crate) fn le_array<const N: usize>(s: &[u8]) -> [u8; N] {
    let mut a = [0u8; N];
    for (d, b) in a.iter_mut().zip(s) {
        *d = *b;
    }
    a
}
