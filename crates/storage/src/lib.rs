//! A small single-file key/value store with ordered range scans.
//!
//! The paper's system was "implemented in C++ on top of the Berkeley DB"
//! (Section 8.1), which it used as a persistent store for its index
//! postings. This crate is the reproduction's stand-in substrate: a
//! page-based **B+-tree** over a single file, with
//!
//! * arbitrary byte-string keys (≤ [`MAX_KEY_LEN`] bytes) mapping to
//!   arbitrary byte-string values,
//! * ordered iteration (`scan_prefix`, `scan_range`) — the operation the
//!   indexes actually need,
//! * values stored out-of-line in contiguous page runs, so multi-megabyte
//!   posting lists are fine,
//! * a pluggable [`Backend`]: a real file or an in-memory page vector
//!   (useful for tests and ephemeral databases).
//!
//! ## Durability model
//!
//! [`Store::commit`] flushes all dirty pages and then rewrites the header
//! page (which points at the B+-tree root). A crash *between* commits can
//! lose uncommitted work; a torn header write is detected by a checksum.
//! Full write-ahead logging is out of scope — the reproduction only needs
//! a persistent, ordered store, not transactional recovery.
//!
//! ## Space model
//!
//! Pages are never reclaimed (there is no free list); deleting or
//! overwriting keys leaks the old value pages until the file is rewritten
//! with [`Store::compact_into`]. This matches the access pattern of the
//! reproduction: indexes are bulk-built once and then read.

mod btree;
mod heap;
mod pager;
mod store;

pub use pager::{Backend, FileBackend, MemBackend, PageId, Pager, DEFAULT_CACHE_PAGES, PAGE_SIZE};
pub use store::{Store, StoreIter};

use std::fmt;

/// Maximum key length in bytes (keys must fit several times into a page).
pub const MAX_KEY_LEN: usize = 512;

/// Errors raised by the storage layer.
#[derive(Debug)]
pub enum StorageError {
    /// An underlying I/O error.
    Io(std::io::Error),
    /// The file is not a store created by this crate.
    NotAStore,
    /// Unsupported on-disk format version.
    BadVersion(u32),
    /// The header checksum does not match (torn write or corruption).
    CorruptHeader,
    /// A page contains inconsistent data.
    CorruptPage(PageId, &'static str),
    /// The key exceeds [`MAX_KEY_LEN`].
    KeyTooLong(usize),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::NotAStore => write!(f, "not an approxql store file"),
            StorageError::BadVersion(v) => write!(f, "unsupported store version {v}"),
            StorageError::CorruptHeader => write!(f, "store header is corrupt"),
            StorageError::CorruptPage(p, what) => write!(f, "page {p} is corrupt: {what}"),
            StorageError::KeyTooLong(n) => {
                write!(f, "key of {n} bytes exceeds the {MAX_KEY_LEN}-byte limit")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Shorthand result type.
pub type Result<T> = std::result::Result<T, StorageError>;
