//! untrusted-length negatives: the two sanctioned allocation shapes.

/// A dominating guardish branch (`claim`) bounds `n` before the
/// allocation.
pub fn decode_frame(cur: &mut Cursor) -> Result<Vec<Posting>, DecodeError> {
    let n = cur.read_varint()? as usize;
    cur.claim(n, POSTING_FLOOR)?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(cur.posting()?);
    }
    Ok(out)
}

/// A clamped capacity needs no dominating branch.
pub fn prefetch(data: &[u8], sink: &mut Vec<u32>) {
    let n = u32::from_le_bytes(first4(data)) as usize;
    sink.reserve(n.min(MAX_PREFETCH));
}
