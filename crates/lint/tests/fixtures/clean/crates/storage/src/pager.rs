//! commit-protocol negative: the ordering the pass re-proves.

pub struct Pager;

impl Pager {
    /// Data pages flushed, header slot written, backend synced — in that
    /// order on every success path.
    pub fn commit(&mut self, root: u64) -> Result<(), IoError> {
        self.flush()?;
        self.write_direct(HEADER_SLOT, &encode(root))?;
        self.backend.sync_all()?;
        Ok(())
    }
}
