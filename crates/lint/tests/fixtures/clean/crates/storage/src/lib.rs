#![forbid(unsafe_code)]
pub fn read(x: Option<u8>) -> Result<u8, ()> {
    x.ok_or(())
}

// error-swallow negatives: a propagated error is not a swallow, and a
// justified best-effort drop carries its allow.
pub fn shutdown(file: &mut Backend) -> Result<(), ()> {
    file.flush()?;
    // Best-effort advisory; failure only costs a later re-read.
    let _ = file.advise_done(); // lint:allow(error-swallow)
    Ok(())
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        super::read(Some(1)).unwrap();
    }
}
