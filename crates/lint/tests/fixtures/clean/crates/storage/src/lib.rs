#![forbid(unsafe_code)]
pub fn read(x: Option<u8>) -> Result<u8, ()> {
    x.ok_or(())
}

#[cfg(test)]
mod tests {
    #[test]
    fn t() {
        super::read(Some(1)).unwrap();
    }
}
