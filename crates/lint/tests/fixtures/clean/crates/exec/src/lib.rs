#![forbid(unsafe_code)]
// lock-across-spawn negative: the guard is provably dead (dropped on
// every path) by the time the pool fans out.
pub fn fan_out(scope: &Scope, m: &Mutex, items: Items) {
    let g = m.lock();
    let seed = g.seed();
    drop(g);
    scope.map(items, work(seed));
}
