#![forbid(unsafe_code)]
metrics! {
    Good => (Pager, "pager.good", "the one counter"),
}
