fn pin() {
    record(Metric::Good);
}
