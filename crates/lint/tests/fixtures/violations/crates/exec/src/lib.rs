#![forbid(unsafe_code)]
pub fn fan_out(scope: &Scope, m: &Mutex, items: Items) {
    let guard = m.lock();
    scope.map(items, work);
}

// Guard-liveness positive the old line-window heuristic could not model:
// the guard is dropped on one branch only, so it MAY still be held at the
// spawn on the other path.
pub fn fan_out_racy(scope: &Scope, m: &Mutex, items: Items, hot: bool) {
    let g = m.lock();
    if hot {
        drop(g);
    }
    scope.map(items, work);
}
