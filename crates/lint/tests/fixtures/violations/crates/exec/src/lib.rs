#![forbid(unsafe_code)]
pub fn fan_out(scope: &Scope, m: &Mutex, items: Items) {
    let guard = m.lock();
    scope.map(items, work);
}
