#![forbid(unsafe_code)]
pub fn share(v: u8) -> std::rc::Rc<u8> {
    std::rc::Rc::new(v)
}
