fn main() {
    let _ = std::fs::write("out.txt", b"x");
}
