//! error-swallow positives: storage-layer results dropped without a
//! justification.

pub fn shutdown(file: &mut Backend) {
    let _ = file.flush();
    file.advise_done().ok();
}
