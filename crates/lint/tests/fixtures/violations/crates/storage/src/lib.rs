#![forbid(unsafe_code)]
pub fn torn(x: Option<u8>) -> u8 {
    x.unwrap()
}
