//! commit-protocol positives: both halves of the torn-commit window.

pub struct Pager;

impl Pager {
    /// The PR 3 bug shape: the header slot hits the backend before the
    /// data pages are flushed, so a crash can leave the header pointing
    /// at pages that were never written.
    pub fn commit_header_first(&mut self, root: u64) -> Result<(), IoError> {
        self.write_direct(HEADER_SLOT, &encode(root))?;
        self.flush()?;
        self.backend.sync_all()?;
        Ok(())
    }

    /// Flushes in order but never makes the header durable.
    pub fn commit_without_sync(&mut self, root: u64) -> Result<(), IoError> {
        self.flush()?;
        self.write_direct(HEADER_SLOT, &encode(root))?;
        Ok(())
    }
}
