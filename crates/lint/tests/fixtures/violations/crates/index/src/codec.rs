//! untrusted-length positives: allocation sized straight from decoded
//! bytes with no dominating bound check.

pub fn decode_frame(cur: &mut Cursor) -> Result<Vec<Posting>, DecodeError> {
    let n = cur.read_varint()? as usize;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(cur.posting()?);
    }
    Ok(out)
}

pub fn prefetch(data: &[u8], sink: &mut Vec<u32>) {
    sink.reserve(u32::from_le_bytes(first4(data)) as usize);
}
