#![forbid(unsafe_code)]
metrics! {
    Good => (Pager, "pager.good", "documented and pinned"),
    Bad => (Pager, "pager.bad", "neither documented nor pinned"),
}
