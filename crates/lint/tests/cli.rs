//! End-to-end tests of the `approxql-lint` binary: exit codes, finding
//! counts per rule, and the self-check that the real workspace is clean
//! under its committed baseline.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_approxql-lint"))
        .args(args)
        .output()
        .expect("spawn approxql-lint")
}

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("exit code")
}

#[test]
fn clean_fixture_exits_zero() {
    let root = fixture("clean");
    let out = lint(&["--workspace", "--root", root.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(code(&out), 0, "stdout: {stdout}");
    assert!(stdout.contains("approxql-lint: clean"), "{stdout}");
}

#[test]
fn violations_fixture_fires_every_rule() {
    let root = fixture("violations");
    let out = lint(&["--workspace", "--root", root.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(code(&out), 3, "stdout: {stdout}");

    let count_of = |rule: &str| {
        stdout
            .lines()
            .filter(|l| l.contains(&format!("[{rule}]")))
            .count()
    };
    assert_eq!(count_of("no-panic"), 1, "{stdout}");
    assert_eq!(count_of("forbid-unsafe"), 1, "{stdout}");
    assert_eq!(count_of("no-rc"), 2, "{stdout}");
    assert_eq!(count_of("metric-coverage"), 3, "{stdout}");
    assert_eq!(count_of("fs-outside-pager"), 1, "{stdout}");
    assert_eq!(count_of("lock-across-spawn"), 2, "{stdout}");
    assert_eq!(count_of("untrusted-length"), 2, "{stdout}");
    assert_eq!(count_of("error-swallow"), 2, "{stdout}");
    assert_eq!(count_of("commit-protocol"), 2, "{stdout}");
    assert!(
        stdout.contains("approxql-lint: 16 finding(s) not in baseline"),
        "{stdout}"
    );

    // The specific sites, not just the counts.
    assert!(
        stdout.contains("crates/storage/src/lib.rs:3: [no-panic]"),
        "{stdout}"
    );
    assert!(
        stdout.contains("crates/cli/src/main.rs:1: [forbid-unsafe]"),
        "{stdout}"
    );
    assert!(
        stdout.contains("crates/cli/src/main.rs:2: [fs-outside-pager]"),
        "{stdout}"
    );
    assert!(
        stdout.contains("crates/exec/src/lib.rs:4: [lock-across-spawn]"),
        "{stdout}"
    );
    assert!(stdout.contains("`pager.bad` is not documented"), "{stdout}");
    assert!(stdout.contains("is not pinned"), "{stdout}");
    assert!(
        stdout.contains("`pager.phantom_ctr` is documented but not registered"),
        "{stdout}"
    );

    // The dataflow rules: each fixture case pins its diagnosis site.
    assert!(
        stdout.contains("crates/exec/src/lib.rs:15: [lock-across-spawn]")
            && stdout.contains("guard `g` (bound on line 11)"),
        "{stdout}"
    );
    assert!(
        stdout.contains("crates/index/src/codec.rs:6: [untrusted-length]")
            && stdout.contains("untrusted decoded value `n`"),
        "{stdout}"
    );
    assert!(
        stdout.contains("crates/index/src/codec.rs:14: [untrusted-length]")
            && stdout.contains("a freshly decoded integer"),
        "{stdout}"
    );
    assert!(
        stdout.contains("crates/storage/src/io.rs:5: [error-swallow]")
            && stdout.contains("crates/storage/src/io.rs:6: [error-swallow]"),
        "{stdout}"
    );
    // The PR 3 header-before-flush bug, statically rediscovered…
    assert!(
        stdout.contains("crates/storage/src/pager.rs:10: [commit-protocol]")
            && stdout.contains("not dominated by a flush"),
        "{stdout}"
    );
    // …and its dual: a flush-ordered commit that never syncs.
    assert!(
        stdout.contains("crates/storage/src/pager.rs:19: [commit-protocol]")
            && stdout.contains("not followed by a sync"),
        "{stdout}"
    );
}

#[test]
fn json_format_parses_and_mirrors_the_findings() {
    let root = fixture("violations");
    let out = lint(&[
        "--workspace",
        "--root",
        root.to_str().unwrap(),
        "--format",
        "json",
    ]);
    assert_eq!(code(&out), 3);
    let stdout = String::from_utf8_lossy(&out.stdout);
    // The findings list and summary move to machine/stderr layers.
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("16 finding(s)"),
        "summary should be on stderr"
    );
    let parsed = approxql_eval::json::parse(&stdout).expect("--format json output must parse");
    let arr = parsed.as_arr().expect("top level is an array");
    assert_eq!(arr.len(), 16, "{stdout}");
    for f in arr {
        for key in ["rule", "path", "line", "snippet", "message"] {
            assert!(f.get(key).is_some(), "missing {key} in {stdout}");
        }
    }
    // Spot-check one finding end to end.
    let commit = arr
        .iter()
        .find(|f| {
            f.get("rule").and_then(|v| v.as_str()) == Some("commit-protocol")
                && f.get("line").and_then(|v| v.as_uint()) == Some(10)
        })
        .expect("commit-protocol finding at pager.rs:10");
    assert_eq!(
        commit.get("path").and_then(|v| v.as_str()),
        Some("crates/storage/src/pager.rs")
    );
    assert_eq!(
        commit.get("snippet").and_then(|v| v.as_str()),
        Some("self.write_direct(HEADER_SLOT, &encode(root))?;")
    );
}

#[test]
fn json_format_on_a_clean_tree_is_an_empty_array() {
    let root = fixture("clean");
    let out = lint(&[
        "--workspace",
        "--root",
        root.to_str().unwrap(),
        "--format",
        "json",
    ]);
    assert_eq!(code(&out), 0);
    let parsed = approxql_eval::json::parse(&String::from_utf8_lossy(&out.stdout))
        .expect("clean JSON output must parse");
    assert_eq!(parsed.as_arr().map(<[_]>::len), Some(0));
}

#[test]
fn violations_are_absorbed_by_a_matching_baseline() {
    // --update-baseline, then a second run against the written file, must
    // be clean: the baseline grandfathers exactly the current findings.
    let root = fixture("violations");
    let dir = std::env::temp_dir().join(format!("axql-lint-baseline-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let baseline = dir.join("baseline.txt");
    let out = lint(&[
        "--workspace",
        "--root",
        root.to_str().unwrap(),
        "--baseline",
        baseline.to_str().unwrap(),
        "--update-baseline",
    ]);
    assert_eq!(code(&out), 0);
    let out = lint(&[
        "--workspace",
        "--root",
        root.to_str().unwrap(),
        "--baseline",
        baseline.to_str().unwrap(),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    std::fs::remove_dir_all(&dir).unwrap();
    assert_eq!(code(&out), 0, "stdout: {stdout}");
    assert!(stdout.contains("16 grandfathered"), "{stdout}");
}

#[test]
fn usage_errors_exit_two() {
    // No --workspace.
    assert_eq!(code(&lint(&[])), 2);
    // Unknown flag.
    assert_eq!(code(&lint(&["--workspace", "--bogus"])), 2);
    // Missing flag value.
    assert_eq!(code(&lint(&["--workspace", "--root"])), 2);
    // Unknown --format value.
    assert_eq!(code(&lint(&["--workspace", "--format", "xml"])), 2);
}

#[test]
fn list_rules_names_all_nine() {
    let out = lint(&["--list-rules"]);
    assert_eq!(code(&out), 0);
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "no-panic",
        "forbid-unsafe",
        "no-rc",
        "metric-coverage",
        "fs-outside-pager",
        "lock-across-spawn",
        "untrusted-length",
        "error-swallow",
        "commit-protocol",
    ] {
        assert!(stdout.contains(rule), "missing {rule} in {stdout}");
    }
}

#[test]
fn real_workspace_is_clean_under_committed_baseline() {
    // The repo root is two levels above this crate.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap();
    let out = lint(&["--workspace", "--root", root.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(code(&out), 0, "stdout: {stdout}\nstderr: {stderr}");
    // The committed baseline must be fully live: no stale entries.
    assert!(
        !stderr.contains("unused baseline entry"),
        "stale baseline entries:\n{stderr}"
    );
}
