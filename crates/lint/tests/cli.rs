//! End-to-end tests of the `approxql-lint` binary: exit codes, finding
//! counts per rule, and the self-check that the real workspace is clean
//! under its committed baseline.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn lint(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_approxql-lint"))
        .args(args)
        .output()
        .expect("spawn approxql-lint")
}

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("exit code")
}

#[test]
fn clean_fixture_exits_zero() {
    let root = fixture("clean");
    let out = lint(&["--workspace", "--root", root.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(code(&out), 0, "stdout: {stdout}");
    assert!(stdout.contains("approxql-lint: clean"), "{stdout}");
}

#[test]
fn violations_fixture_fires_every_rule() {
    let root = fixture("violations");
    let out = lint(&["--workspace", "--root", root.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(code(&out), 3, "stdout: {stdout}");

    let count_of = |rule: &str| {
        stdout
            .lines()
            .filter(|l| l.contains(&format!("[{rule}]")))
            .count()
    };
    assert_eq!(count_of("no-panic"), 1, "{stdout}");
    assert_eq!(count_of("forbid-unsafe"), 1, "{stdout}");
    assert_eq!(count_of("no-rc"), 2, "{stdout}");
    assert_eq!(count_of("metric-coverage"), 3, "{stdout}");
    assert_eq!(count_of("fs-outside-pager"), 1, "{stdout}");
    assert_eq!(count_of("lock-across-spawn"), 1, "{stdout}");
    assert!(
        stdout.contains("approxql-lint: 9 finding(s) not in baseline"),
        "{stdout}"
    );

    // The specific sites, not just the counts.
    assert!(
        stdout.contains("crates/storage/src/lib.rs:3: [no-panic]"),
        "{stdout}"
    );
    assert!(
        stdout.contains("crates/cli/src/main.rs:1: [forbid-unsafe]"),
        "{stdout}"
    );
    assert!(
        stdout.contains("crates/cli/src/main.rs:2: [fs-outside-pager]"),
        "{stdout}"
    );
    assert!(
        stdout.contains("crates/exec/src/lib.rs:4: [lock-across-spawn]"),
        "{stdout}"
    );
    assert!(stdout.contains("`pager.bad` is not documented"), "{stdout}");
    assert!(stdout.contains("is not pinned"), "{stdout}");
    assert!(
        stdout.contains("`pager.phantom_ctr` is documented but not registered"),
        "{stdout}"
    );
}

#[test]
fn violations_are_absorbed_by_a_matching_baseline() {
    // --update-baseline, then a second run against the written file, must
    // be clean: the baseline grandfathers exactly the current findings.
    let root = fixture("violations");
    let dir = std::env::temp_dir().join(format!("axql-lint-baseline-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let baseline = dir.join("baseline.txt");
    let out = lint(&[
        "--workspace",
        "--root",
        root.to_str().unwrap(),
        "--baseline",
        baseline.to_str().unwrap(),
        "--update-baseline",
    ]);
    assert_eq!(code(&out), 0);
    let out = lint(&[
        "--workspace",
        "--root",
        root.to_str().unwrap(),
        "--baseline",
        baseline.to_str().unwrap(),
    ]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    std::fs::remove_dir_all(&dir).unwrap();
    assert_eq!(code(&out), 0, "stdout: {stdout}");
    assert!(stdout.contains("9 grandfathered"), "{stdout}");
}

#[test]
fn usage_errors_exit_two() {
    // No --workspace.
    assert_eq!(code(&lint(&[])), 2);
    // Unknown flag.
    assert_eq!(code(&lint(&["--workspace", "--bogus"])), 2);
    // Missing flag value.
    assert_eq!(code(&lint(&["--workspace", "--root"])), 2);
}

#[test]
fn list_rules_names_all_six() {
    let out = lint(&["--list-rules"]);
    assert_eq!(code(&out), 0);
    let stdout = String::from_utf8_lossy(&out.stdout);
    for rule in [
        "no-panic",
        "forbid-unsafe",
        "no-rc",
        "metric-coverage",
        "fs-outside-pager",
        "lock-across-spawn",
    ] {
        assert!(stdout.contains(rule), "missing {rule} in {stdout}");
    }
}

#[test]
fn real_workspace_is_clean_under_committed_baseline() {
    // The repo root is two levels above this crate.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .unwrap();
    let out = lint(&["--workspace", "--root", root.to_str().unwrap()]);
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert_eq!(code(&out), 0, "stdout: {stdout}\nstderr: {stderr}");
    // The committed baseline must be fully live: no stale entries.
    assert!(
        !stderr.contains("unused baseline entry"),
        "stale baseline entries:\n{stderr}"
    );
}
