//! The committed baseline of grandfathered findings.
//!
//! A baseline entry identifies a finding by `(rule, path, key)`, where the
//! key is the offending source line with whitespace collapsed
//! ([`crate::normalize_line`]) — so unrelated edits that shift line numbers
//! do not invalidate the baseline, while any change to the offending line
//! itself (including deleting it) surfaces immediately.
//!
//! File format, one entry per line, tab-separated:
//!
//! ```text
//! # comment / per-entry justification
//! rule-id<TAB>path<TAB>normalized source line
//! ```
//!
//! Matching is multiset-aware: each entry absorbs exactly one finding, so a
//! *second* identical violation on another line of the same file is a new
//! finding, not silently covered by the first one's entry.

use crate::Finding;

/// One grandfathered finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    pub rule: String,
    pub path: String,
    pub key: String,
}

/// A parsed baseline file.
#[derive(Debug, Default)]
pub struct Baseline {
    pub entries: Vec<BaselineEntry>,
}

/// Result of filtering findings through a baseline.
#[derive(Debug)]
pub struct BaselineResult {
    /// Findings not covered by any entry — these fail the run.
    pub new_findings: Vec<Finding>,
    /// Entries that matched no finding — fixed or stale; reported as
    /// warnings so the baseline gets burned down, but they never fail CI.
    pub unused: Vec<BaselineEntry>,
}

impl Baseline {
    /// Parses the baseline file format. Lines that are empty or start with
    /// `#` are comments. Malformed lines are an error (a truncated baseline
    /// must not silently un-grandfather everything).
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let mut entries = Vec::new();
        for (idx, line) in text.lines().enumerate() {
            let line = line.trim_end();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.splitn(3, '\t');
            match (parts.next(), parts.next(), parts.next()) {
                (Some(rule), Some(path), Some(key)) if !rule.is_empty() && !path.is_empty() => {
                    entries.push(BaselineEntry {
                        rule: rule.to_string(),
                        path: path.to_string(),
                        key: key.to_string(),
                    });
                }
                _ => {
                    return Err(format!(
                        "baseline line {}: expected `rule<TAB>path<TAB>key`, got {line:?}",
                        idx + 1
                    ));
                }
            }
        }
        Ok(Baseline { entries })
    }

    /// Splits `findings` into new findings and unused entries.
    pub fn filter(&self, findings: Vec<Finding>) -> BaselineResult {
        let mut spent = vec![false; self.entries.len()];
        let mut new_findings = Vec::new();
        for f in findings {
            let slot = self.entries.iter().enumerate().find(|(i, e)| {
                !spent[*i] && e.rule == f.rule && e.path == f.path && e.key == f.key
            });
            match slot {
                Some((i, _)) => spent[i] = true,
                None => new_findings.push(f),
            }
        }
        let unused = self
            .entries
            .iter()
            .zip(&spent)
            .filter(|(_, s)| !**s)
            .map(|(e, _)| e.clone())
            .collect();
        BaselineResult {
            new_findings,
            unused,
        }
    }

    /// Renders findings as a fresh baseline file body (for
    /// `--update-baseline`). Justification comments are the maintainer's
    /// job; a template line is emitted above each entry.
    pub fn render(findings: &[Finding]) -> String {
        let mut out = String::from(
            "# approxql-lint baseline: grandfathered findings, one per line.\n\
             # Format: rule<TAB>path<TAB>whitespace-normalized source line.\n\
             # Every entry needs a one-line justification comment above it.\n",
        );
        for f in findings {
            out.push_str(&format!(
                "# JUSTIFY: {}:{} {}\n{}\t{}\t{}\n",
                f.path, f.line, f.message, f.rule, f.path, f.key
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, key: &str) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line: 1,
            message: String::new(),
            key: key.to_string(),
        }
    }

    #[test]
    fn parse_skips_comments_and_rejects_malformed() {
        let b = Baseline::parse("# c\n\nno-panic\ta.rs\tx.unwrap();\n").unwrap();
        assert_eq!(b.entries.len(), 1);
        assert_eq!(b.entries[0].rule, "no-panic");
        assert!(Baseline::parse("no-panic only-two-fields\n").is_err());
    }

    #[test]
    fn filter_is_multiset_aware() {
        let b = Baseline::parse("no-panic\ta.rs\tx.unwrap();\n").unwrap();
        // Two identical findings, one entry: second one is NEW.
        let r = b.filter(vec![
            finding("no-panic", "a.rs", "x.unwrap();"),
            finding("no-panic", "a.rs", "x.unwrap();"),
        ]);
        assert_eq!(r.new_findings.len(), 1);
        assert!(r.unused.is_empty());
    }

    #[test]
    fn unused_entries_are_reported() {
        let b = Baseline::parse("no-panic\ta.rs\tgone();\nno-rc\tb.rs\tRc<u8>\n").unwrap();
        let r = b.filter(vec![finding("no-rc", "b.rs", "Rc<u8>")]);
        assert!(r.new_findings.is_empty());
        assert_eq!(r.unused.len(), 1);
        assert_eq!(r.unused[0].rule, "no-panic");
    }

    #[test]
    fn render_round_trips_through_parse() {
        let fs = vec![finding("no-panic", "a.rs", "x.unwrap();")];
        let text = Baseline::render(&fs);
        let b = Baseline::parse(&text).unwrap();
        assert!(b.filter(fs).new_findings.is_empty());
    }
}
