//! The rule catalogue: each project invariant from PRs 1–3, encoded as a
//! token-level check over the lexed workspace.
//!
//! Every rule has a stable kebab-case id (used in `lint:allow(...)`
//! directives and baseline entries), a one-line summary, and a `run`
//! function. Rules are path-scoped: the scopes and the small number of
//! allowlisted files are part of the rule definition itself, so the
//! invariant reads off this file.

use crate::lexer::{Token, TokenKind};
use crate::{Finding, SourceFile, Workspace};

/// One registered rule.
pub struct Rule {
    /// Stable identifier (baseline entries and `lint:allow` use this).
    pub id: &'static str,
    /// One-line description for `--list-rules` and DESIGN.md §11.
    pub summary: &'static str,
    pub run: fn(&Workspace, &mut Vec<Finding>),
}

/// The full catalogue, in documentation order.
pub const RULES: &[Rule] = &[
    Rule {
        id: "no-panic",
        summary: "no unwrap/expect/panic!/unreachable!/todo! in non-test code of \
                  crates/storage, crates/core, crates/cli, and crates/gen \
                  (typed error paths and documented exit codes only)",
        run: no_panic,
    },
    Rule {
        id: "forbid-unsafe",
        summary: "every crate root (lib.rs, main.rs, src/bin/*.rs) carries \
                  #![forbid(unsafe_code)]",
        run: forbid_unsafe,
    },
    Rule {
        id: "no-rc",
        summary: "no Rc in crates that run under the exec pool \
                  (core, exec, query, schema) — Arc only",
        run: no_rc,
    },
    Rule {
        id: "metric-coverage",
        summary: "every registered metric name is documented in DESIGN.md and pinned \
                  in tests/metrics_regression.rs, and vice versa (no phantom names)",
        run: metric_coverage,
    },
    Rule {
        id: "fs-outside-pager",
        summary: "no direct std::fs / File / backend writes outside \
                  crates/storage/src/pager.rs and fault.rs (and the lint tool itself)",
        run: fs_outside_pager,
    },
    Rule {
        id: "lock-across-spawn",
        summary: "no Mutex guard bound across a Scope::map/map_deferred/spawn call \
                  (line-window heuristic)",
        run: lock_across_spawn,
    },
];

/// Looks up a rule by id.
pub fn rule(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

fn in_any(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p))
}

// ---------------------------------------------------------------------------
// no-panic
// ---------------------------------------------------------------------------

/// Crates whose non-test code must stay panic-free: the storage layer
/// promises typed [`StorageError`]s on every path (PR 3), `core` runs
/// inside the executor where a panic poisons the whole scope, and the
/// `cli`/`gen` binaries promise their documented exit codes — a panic
/// would bypass them (PR 8).
const PANIC_SCOPE: &[&str] = &[
    "crates/storage/src/",
    "crates/core/src/",
    "crates/cli/src/",
    "crates/gen/src/",
];

fn no_panic(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in &ws.files {
        if !in_any(&f.rel_path, PANIC_SCOPE) {
            continue;
        }
        let toks = &f.tokens;
        for i in 0..toks.len() {
            let Some(id) = toks[i].ident() else { continue };
            let line = toks[i].line;
            if f.is_test_line(line) {
                continue;
            }
            let hit = match id {
                // Method calls only: `.unwrap()` / `.expect(`, not
                // identifiers like `unwrap_or` (a distinct token).
                "unwrap" | "expect" => {
                    i > 0
                        && toks[i - 1].is_punct('.')
                        && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                }
                "panic" | "unreachable" | "todo" | "unimplemented" => {
                    toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
                }
                _ => false,
            };
            if hit {
                let what = match id {
                    "unwrap" | "expect" => format!(".{id}()"),
                    _ => format!("{id}!"),
                };
                f.finding(
                    "no-panic",
                    line,
                    format!("`{what}` in non-test code; return a typed error instead"),
                    out,
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// forbid-unsafe
// ---------------------------------------------------------------------------

/// `true` for files that are crate roots (where the attribute must live).
fn is_crate_root(rel: &str) -> bool {
    rel == "src/lib.rs"
        || rel == "src/main.rs"
        || rel.ends_with("/src/lib.rs")
        || rel.ends_with("/src/main.rs")
        || rel.contains("/src/bin/")
}

fn forbid_unsafe(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in &ws.files {
        if !is_crate_root(&f.rel_path) {
            continue;
        }
        let has = f.tokens.windows(3).any(|w| {
            w[0].ident() == Some("forbid")
                && w[1].is_punct('(')
                && w[2].ident() == Some("unsafe_code")
        });
        if !has && !f.is_allowed("forbid-unsafe", 1) {
            out.push(Finding {
                rule: "forbid-unsafe",
                path: f.rel_path.clone(),
                line: 1,
                message: "crate root is missing #![forbid(unsafe_code)]".to_string(),
                key: "missing #![forbid(unsafe_code)]".to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// no-rc
// ---------------------------------------------------------------------------

/// Crates whose values cross executor threads: `Rc` is not `Send`, so a
/// refactor that reintroduces it either fails to compile deep in a closure
/// or, worse, pushes someone to unsound workarounds. Catch it at the source.
const RC_SCOPE: &[&str] = &[
    "crates/core/src/",
    "crates/exec/src/",
    "crates/query/src/",
    "crates/schema/src/",
];

fn no_rc(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in &ws.files {
        if !in_any(&f.rel_path, RC_SCOPE) {
            continue;
        }
        let mut last_line = 0u32;
        for t in &f.tokens {
            if t.ident() == Some("Rc") && !f.is_test_line(t.line) && t.line != last_line {
                last_line = t.line;
                f.finding(
                    "no-rc",
                    t.line,
                    "`Rc` in an exec-pool crate; use `Arc` (Rc is not Send)".to_string(),
                    out,
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// metric-coverage
// ---------------------------------------------------------------------------

const METRICS_LIB: &str = "crates/metrics/src/lib.rs";
const METRICS_REGRESSION: &str = "tests/metrics_regression.rs";

/// A metric registered in the `metrics!` / `timer_metrics!` tables.
struct RegisteredMetric {
    variant: String,
    name: String,
    line: u32,
}

/// `true` when `s` looks like a `layer.counter` metric name.
fn is_dotted_name(s: &str) -> bool {
    let mut parts = s.split('.');
    let (Some(a), Some(b), None) = (parts.next(), parts.next(), parts.next()) else {
        return false;
    };
    let seg = |p: &str| {
        !p.is_empty()
            && p.chars().next().is_some_and(|c| c.is_ascii_lowercase())
            && p.chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    };
    seg(a) && seg(b)
}

/// Extracts `Variant => (… "layer.name" …)` rows from the registry source.
/// The macro *definition* also matches the `Ident => (` shape (via the
/// `:ident` fragment specifiers) but contains no string literal, so the
/// dotted-name requirement filters it out.
fn registered_metrics(reg: &SourceFile) -> Vec<RegisteredMetric> {
    let toks = &reg.tokens;
    let mut found = Vec::new();
    let mut i = 0usize;
    while i + 3 < toks.len() {
        let arm = toks[i]
            .ident()
            .filter(|v| v.chars().next().is_some_and(|c| c.is_ascii_uppercase()))
            .filter(|_| {
                toks[i + 1].is_punct('=') && toks[i + 2].is_punct('>') && toks[i + 3].is_punct('(')
            });
        let Some(variant) = arm else {
            i += 1;
            continue;
        };
        if reg.is_test_line(toks[i].line) {
            i += 1;
            continue;
        }
        // First string literal inside the parenthesized group.
        let mut depth = 1usize;
        let mut j = i + 4;
        let mut name: Option<(String, u32)> = None;
        while j < toks.len() && depth > 0 {
            match &toks[j].kind {
                TokenKind::Punct('(') => depth += 1,
                TokenKind::Punct(')') => depth -= 1,
                TokenKind::Str(s) if name.is_none() && is_dotted_name(s) => {
                    name = Some((s.clone(), toks[j].line));
                }
                _ => {}
            }
            j += 1;
        }
        if let Some((name, line)) = name {
            found.push(RegisteredMetric {
                variant: variant.to_string(),
                name,
                line,
            });
        }
        i = j;
    }
    found
}

/// All `Metric::X` / `TimerMetric::X` variant references in a file.
fn metric_paths(f: &SourceFile) -> Vec<(String, u32)> {
    f.tokens
        .windows(4)
        .filter_map(|w| {
            let root = w[0].ident()?;
            if (root != "Metric" && root != "TimerMetric")
                || !w[1].is_punct(':')
                || !w[2].is_punct(':')
            {
                return None;
            }
            let v = w[3].ident()?;
            // Skip associated consts/functions (ALL, name, …): variants are
            // CamelCase — uppercase start with at least one lowercase char.
            if v.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                && v.chars().any(|c| c.is_ascii_lowercase())
            {
                Some((v.to_string(), w[3].line))
            } else {
                None
            }
        })
        .collect()
}

/// Backtick-quoted code spans per line of a markdown document.
fn backticked_spans(text: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        for (c, chunk) in line.split('`').enumerate() {
            if c % 2 == 1 && !chunk.is_empty() {
                out.push((chunk.to_string(), idx as u32 + 1));
            }
        }
    }
    out
}

fn metric_coverage(ws: &Workspace, out: &mut Vec<Finding>) {
    let Some(reg) = ws.file(METRICS_LIB) else {
        return; // not a workspace with a metrics registry (e.g. fixtures)
    };
    let registered = registered_metrics(reg);
    if registered.is_empty() {
        return;
    }
    let names: Vec<&str> = registered.iter().map(|m| m.name.as_str()).collect();
    let prefixes: Vec<&str> = {
        let mut p: Vec<&str> = names.iter().filter_map(|n| n.split('.').next()).collect();
        p.sort_unstable();
        p.dedup();
        p
    };

    let design = ws.design_md.as_deref().unwrap_or("");
    let pinned = ws.file(METRICS_REGRESSION);
    let pinned_variants: Vec<(String, u32)> = pinned.map(metric_paths).unwrap_or_default();

    // Registry -> docs/tests: every registered metric must be documented
    // and pinned.
    for m in &registered {
        if !design.contains(&format!("`{}`", m.name)) && !reg.is_allowed("metric-coverage", m.line)
        {
            out.push(Finding {
                rule: "metric-coverage",
                path: reg.rel_path.clone(),
                line: m.line,
                message: format!("metric `{}` is not documented in DESIGN.md", m.name),
                key: format!("undocumented {}", m.name),
            });
        }
        let is_pinned = pinned_variants.iter().any(|(v, _)| v == &m.variant);
        if !is_pinned && !reg.is_allowed("metric-coverage", m.line) {
            out.push(Finding {
                rule: "metric-coverage",
                path: reg.rel_path.clone(),
                line: m.line,
                message: format!(
                    "metric `{}` ({}) is not pinned in {METRICS_REGRESSION}",
                    m.name, m.variant
                ),
                key: format!("unpinned {}", m.name),
            });
        }
    }

    // Docs -> registry: a documented name that is not registered is a
    // phantom counter (stale docs or a typo'd rename).
    const NON_METRIC_SUFFIXES: &[&str] = &[
        "rs", "md", "toml", "json", "tsv", "yml", "yaml", "lock", "xml", "axql", "log", "txt",
    ];
    for (span, line) in backticked_spans(design) {
        if !is_dotted_name(&span) {
            continue;
        }
        let (Some(prefix), Some(suffix)) = (span.split('.').next(), span.split('.').nth(1)) else {
            continue;
        };
        if !prefixes.contains(&prefix) || NON_METRIC_SUFFIXES.contains(&suffix) {
            continue;
        }
        if !names.contains(&span.as_str()) {
            out.push(Finding {
                rule: "metric-coverage",
                path: "DESIGN.md".to_string(),
                line,
                message: format!("`{span}` is documented but not registered in crates/metrics"),
                key: format!("phantom {span}"),
            });
        }
    }

    // Tests -> registry: a pinned variant that does not exist is a phantom.
    let variants: Vec<&str> = registered.iter().map(|m| m.variant.as_str()).collect();
    if let Some(p) = pinned {
        for (v, line) in &pinned_variants {
            if !variants.contains(&v.as_str()) && !p.is_allowed("metric-coverage", *line) {
                out.push(Finding {
                    rule: "metric-coverage",
                    path: p.rel_path.clone(),
                    line: *line,
                    message: format!("`{v}` is pinned but not registered in crates/metrics"),
                    key: format!("phantom {v}"),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// fs-outside-pager
// ---------------------------------------------------------------------------

/// Files that may talk to the filesystem / backend directly: the pager owns
/// all page I/O, the fault backend wraps it for crash injection, and the
/// lint tool itself reads sources and rewrites its baseline.
const FS_ALLOWED: &[&str] = &[
    "crates/storage/src/pager.rs",
    "crates/storage/src/fault.rs",
    "crates/lint/src/",
];

/// `std::fs` functions that mutate the filesystem.
const FS_WRITE_FNS: &[&str] = &[
    "write",
    "create_dir",
    "create_dir_all",
    "remove_file",
    "remove_dir",
    "remove_dir_all",
    "rename",
    "copy",
    "hard_link",
    "set_permissions",
];

fn fs_outside_pager(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in &ws.files {
        if in_any(&f.rel_path, FS_ALLOWED) {
            continue;
        }
        let toks = &f.tokens;
        for i in 0..toks.len() {
            let Some(id) = toks[i].ident() else { continue };
            let line = toks[i].line;
            if f.is_test_line(line) {
                continue;
            }
            let path_call = |module: &str, fns: &[&str]| {
                id == module
                    && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                    && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                    && toks
                        .get(i + 3)
                        .and_then(Token::ident)
                        .is_some_and(|m| fns.contains(&m))
            };
            let hit = if path_call("fs", FS_WRITE_FNS) {
                Some(format!("fs::{}", toks[i + 3].ident().unwrap_or_default()))
            } else if path_call("File", &["create", "create_new", "options"]) {
                Some(format!("File::{}", toks[i + 3].ident().unwrap_or_default()))
            } else if id == "OpenOptions" {
                Some("OpenOptions".to_string())
            } else if matches!(id, "set_len" | "sync_all" | "sync_data" | "write_page")
                && i > 0
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            {
                Some(format!(".{id}()"))
            } else {
                None
            };
            if let Some(what) = hit {
                f.finding(
                    "fs-outside-pager",
                    line,
                    format!("direct filesystem/backend write `{what}`; all page I/O goes through the pager"),
                    out,
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// lock-across-spawn
// ---------------------------------------------------------------------------

/// Lines a Mutex guard may live before a spawn in the same window counts
/// as "held across" it. A held guard inside `Scope::map` fan-out is a
/// deadlock waiting for a work-stealing schedule that never drains.
const LOCK_WINDOW: u32 = 10;

/// Receivers whose `.map(...)` is an executor fan-out, not iterator `map`.
const SCOPE_RECEIVERS: &[&str] = &["scope", "sc"];

fn lock_across_spawn(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in &ws.files {
        let toks = &f.tokens;

        // `let [mut] NAME = … .lock() … ;` bindings (guard lives past the
        // statement). Expression-statement locks create a temporary that
        // drops at the `;`, so only `let` bindings are tracked.
        let mut bindings: Vec<(String, u32)> = Vec::new();
        let mut i = 0usize;
        while i < toks.len() {
            if toks[i].ident() != Some("let") {
                i += 1;
                continue;
            }
            let mut j = i + 1;
            if toks.get(j).and_then(Token::ident) == Some("mut") {
                j += 1;
            }
            let Some(name) = toks.get(j).and_then(Token::ident) else {
                i += 1;
                continue;
            };
            let (name, let_line) = (name.to_string(), toks[i].line);
            let mut locked = false;
            while j < toks.len() && !toks[j].is_punct(';') {
                if toks[j].ident() == Some("lock")
                    && j > 0
                    && toks[j - 1].is_punct('.')
                    && toks.get(j + 1).is_some_and(|t| t.is_punct('('))
                {
                    locked = true;
                }
                j += 1;
            }
            if locked && !f.is_test_line(let_line) {
                bindings.push((name, let_line));
            }
            i = j;
        }
        if bindings.is_empty() {
            continue;
        }

        // `drop(NAME)` releases a guard early.
        let drops: Vec<(&str, u32)> = toks
            .windows(3)
            .filter_map(|w| {
                (w[0].ident() == Some("drop") && w[1].is_punct('(')).then_some(())?;
                Some((w[2].ident()?, w[2].line))
            })
            .collect();

        // Executor fan-outs: `.spawn(` / `.map_deferred(` on anything,
        // `.map(` only on a scope-shaped receiver.
        for i in 0..toks.len() {
            let Some(id) = toks[i].ident() else { continue };
            let line = toks[i].line;
            let is_call = i > 0
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|t| t.is_punct('('));
            let spawnish = match id {
                "spawn" | "map_deferred" => is_call,
                "map" => {
                    is_call
                        && i >= 2
                        && toks[i - 2]
                            .ident()
                            .is_some_and(|r| SCOPE_RECEIVERS.contains(&r))
                }
                _ => false,
            };
            if !spawnish {
                continue;
            }
            for (name, let_line) in &bindings {
                if *let_line <= line && line <= let_line + LOCK_WINDOW {
                    let released = drops
                        .iter()
                        .any(|(d, dl)| d == name && *let_line <= *dl && *dl < line);
                    if !released {
                        f.finding(
                            "lock-across-spawn",
                            line,
                            format!(
                                "`.{id}(…)` while Mutex guard `{name}` (bound on line {let_line}) \
                                 may still be held; drop the guard before fanning out"
                            ),
                            out,
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workspace;
    use std::path::PathBuf;

    fn ws_with(files: Vec<(&str, &str)>, design: Option<&str>) -> Workspace {
        Workspace {
            root: PathBuf::new(),
            files: files
                .into_iter()
                .map(|(p, s)| SourceFile::parse(p.to_string(), s))
                .collect(),
            design_md: design.map(str::to_string),
        }
    }

    fn run_one(ws: &Workspace, id: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        (rule(id).unwrap().run)(ws, &mut out);
        out
    }

    #[test]
    fn no_panic_flags_methods_and_macros_in_scope_only() {
        let ws = ws_with(
            vec![
                (
                    "crates/storage/src/pager.rs",
                    "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"n\"); unreachable!(); \
                     z.unwrap_or(0); }\n#[cfg(test)]\nmod t { fn g() { q.unwrap(); } }\n",
                ),
                ("crates/cli/src/main.rs", "fn main() { x.unwrap(); }"),
                ("crates/xml/src/lib.rs", "fn p() { x.unwrap(); }"),
            ],
            None,
        );
        let f = run_one(&ws, "no-panic");
        assert_eq!(f.len(), 5, "{f:?}");
        assert_eq!(
            f.iter()
                .filter(|x| x.path == "crates/storage/src/pager.rs")
                .count(),
            4
        );
        // cli is in scope since the scope expansion; xml is not.
        assert!(f.iter().any(|x| x.path == "crates/cli/src/main.rs"));
        assert!(f.iter().all(|x| x.path != "crates/xml/src/lib.rs"));
    }

    #[test]
    fn forbid_unsafe_checks_crate_roots_only() {
        let ws = ws_with(
            vec![
                ("crates/a/src/lib.rs", "#![forbid(unsafe_code)]\nfn a() {}"),
                ("crates/b/src/lib.rs", "fn b() {}"),
                ("crates/b/src/util.rs", "fn helper() {}"),
                ("crates/c/src/bin/tool.rs", "fn main() {}"),
            ],
            None,
        );
        let f = run_one(&ws, "forbid-unsafe");
        let paths: Vec<&str> = f.iter().map(|x| x.path.as_str()).collect();
        assert_eq!(paths, ["crates/b/src/lib.rs", "crates/c/src/bin/tool.rs"]);
    }

    #[test]
    fn no_rc_is_scoped_and_once_per_line() {
        let ws = ws_with(
            vec![
                (
                    "crates/core/src/topk.rs",
                    "use std::rc::Rc;\nfn f(x: Rc<u8>) -> Rc<u8> { x }\n",
                ),
                ("crates/storage/src/fault.rs", "use std::rc::Rc;\n"),
            ],
            None,
        );
        let f = run_one(&ws, "no-rc");
        assert_eq!(f.len(), 2, "{f:?}"); // line 1 and line 2, storage exempt
    }

    #[test]
    fn metric_coverage_cross_checks_all_three_surfaces() {
        let reg = r#"
metrics! {
    GoodReads => (Pager, "pager.good_reads", "doc"),
    Ghost => (Pager, "pager.ghost", "doc"),
}
timer_metrics! {
    Commit => ("store.commit_t", "doc"),
}
"#;
        let pinned = "fn t() { use_it(Metric::GoodReads); check(Metric::Phantom); \
                      tm(TimerMetric::Commit); }";
        let design = "counters: `pager.good_reads` and `store.commit_t`; \
                      stale: `pager.vanished`.";
        let ws = ws_with(
            vec![
                ("crates/metrics/src/lib.rs", reg),
                ("tests/metrics_regression.rs", pinned),
            ],
            Some(design),
        );
        let f = run_one(&ws, "metric-coverage");
        let keys: Vec<&str> = f.iter().map(|x| x.key.as_str()).collect();
        assert!(keys.contains(&"undocumented pager.ghost"), "{keys:?}");
        assert!(keys.contains(&"unpinned pager.ghost"), "{keys:?}");
        assert!(keys.contains(&"phantom pager.vanished"), "{keys:?}");
        assert!(keys.contains(&"phantom Phantom"), "{keys:?}");
        assert_eq!(f.len(), 4, "{f:?}");
    }

    #[test]
    fn metric_coverage_ignores_file_names_in_docs() {
        let reg = "metrics! { A => (Pager, \"pager.reads\", \"d\") }";
        let pinned = "fn t() { p(Metric::A0a); }"; // A0a ≠ A but CamelCase-ish
        let design = "see `pager.rs` and `pager.reads`; also `list.rs`.";
        let ws = ws_with(
            vec![
                ("crates/metrics/src/lib.rs", reg),
                ("tests/metrics_regression.rs", pinned),
            ],
            Some(design),
        );
        let f = run_one(&ws, "metric-coverage");
        // pager.rs / list.rs are file names, not phantom metrics; A is
        // unpinned, A0a is phantom.
        let keys: Vec<&str> = f.iter().map(|x| x.key.as_str()).collect();
        assert_eq!(keys, ["unpinned pager.reads", "phantom A0a"], "{f:?}");
    }

    #[test]
    fn fs_rule_allows_pager_and_test_code() {
        let ws = ws_with(
            vec![
                (
                    "crates/cli/src/commands.rs",
                    "fn w() { std::fs::write(p, b)?; std::fs::read_to_string(p)?; }\n\
                     #[cfg(test)]\nmod t { fn x() { std::fs::write(p, b).unwrap(); } }\n",
                ),
                (
                    "crates/storage/src/pager.rs",
                    "fn w() { std::fs::write(p, b)?; }",
                ),
            ],
            None,
        );
        let f = run_one(&ws, "fs-outside-pager");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].path, "crates/cli/src/commands.rs");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn lock_across_spawn_window_and_drop() {
        let bad = "fn f(scope: &S) {\n\
                   let guard = m.lock().unwrap();\n\
                   scope.map(items, work);\n\
                   }\n";
        let ok_drop = "fn f(scope: &S) {\n\
                       let guard = m.lock().unwrap();\n\
                       drop(guard);\n\
                       scope.map(items, work);\n\
                       }\n";
        let ok_iter = "fn f() {\n\
                       let guard = m.lock().unwrap();\n\
                       let v: Vec<_> = items.iter().map(|x| x + 1).collect();\n\
                       }\n";
        let ws = ws_with(
            vec![
                ("crates/core/src/a.rs", bad),
                ("crates/core/src/b.rs", ok_drop),
                ("crates/core/src/c.rs", ok_iter),
            ],
            None,
        );
        let f = run_one(&ws, "lock-across-spawn");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].path, "crates/core/src/a.rs");
        assert_eq!(f[0].line, 3);
    }
}
