//! The rule catalogue: each project invariant from PRs 1–3, encoded as a
//! check over the lexed (and, for the dataflow rules, parsed) workspace.
//!
//! Every rule has a stable kebab-case id (used in `lint:allow(...)`
//! directives and baseline entries), a one-line summary, and a `run`
//! function. Rules are path-scoped: the scopes and the small number of
//! allowlisted files are part of the rule definition itself, so the
//! invariant reads off this file.
//!
//! Two generations of rules coexist. The PR 4 originals are token-window
//! pattern matches. The newer rules (untrusted-length, error-swallow,
//! commit-protocol, lock-across-spawn) are built on the [`crate::ast`] →
//! [`crate::cfg`] → [`crate::flow`] stack: they reason per function about
//! dominance ("a bound check precedes this allocation on every path") and
//! dataflow facts ("this name may carry a disk-decoded length", "this
//! lock guard may still be live").

use crate::ast::{CallSite, Expr, FnDef, Stmt};
use crate::cfg::{Action, Cfg};
use crate::flow::{self, Facts};
use crate::lexer::{Token, TokenKind};
use crate::{Finding, SourceFile, Workspace};

/// One registered rule.
pub struct Rule {
    /// Stable identifier (baseline entries and `lint:allow` use this).
    pub id: &'static str,
    /// One-line description for `--list-rules` and DESIGN.md §11.
    pub summary: &'static str,
    pub run: fn(&Workspace, &mut Vec<Finding>),
}

/// The full catalogue, in documentation order.
pub const RULES: &[Rule] = &[
    Rule {
        id: "no-panic",
        summary: "no unwrap/expect/panic!/unreachable!/todo! in non-test code of \
                  crates/storage, crates/core, crates/cli, and crates/gen \
                  (typed error paths and documented exit codes only)",
        run: no_panic,
    },
    Rule {
        id: "forbid-unsafe",
        summary: "every crate root (lib.rs, main.rs, src/bin/*.rs) carries \
                  #![forbid(unsafe_code)]",
        run: forbid_unsafe,
    },
    Rule {
        id: "no-rc",
        summary: "no Rc in crates that run under the exec pool \
                  (core, exec, query, schema) — Arc only",
        run: no_rc,
    },
    Rule {
        id: "metric-coverage",
        summary: "every registered metric name is documented in DESIGN.md and pinned \
                  in tests/metrics_regression.rs, and vice versa (no phantom names)",
        run: metric_coverage,
    },
    Rule {
        id: "fs-outside-pager",
        summary: "no direct std::fs / File / backend writes outside \
                  crates/storage/src/pager.rs and fault.rs (and the lint tool itself)",
        run: fs_outside_pager,
    },
    Rule {
        id: "lock-across-spawn",
        summary: "no Mutex guard live across a Scope::map/map_deferred/spawn call \
                  (CFG guard-liveness: drops, rebinds and scope exits release)",
        run: lock_across_spawn,
    },
    Rule {
        id: "untrusted-length",
        summary: "allocations (with_capacity/reserve) sized by a value decoded from \
                  disk bytes must be dominated by a bound check (taint dataflow over \
                  the CFG in the decode crates)",
        run: untrusted_length,
    },
    Rule {
        id: "error-swallow",
        summary: "no `let _ = fallible(…)` or statement-level `.ok()` in non-test \
                  storage/core/index code without a lint:allow justification",
        run: error_swallow,
    },
    Rule {
        id: "commit-protocol",
        summary: "in pager.rs/dbfile.rs/store.rs, every header-slot write_direct is \
                  dominated by a flush and followed by a sync on all success paths \
                  (statically re-proves the PR 3 commit ordering)",
        run: commit_protocol,
    },
];

/// Looks up a rule by id.
pub fn rule(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

fn in_any(path: &str, prefixes: &[&str]) -> bool {
    prefixes.iter().any(|p| path.starts_with(p))
}

// ---------------------------------------------------------------------------
// no-panic
// ---------------------------------------------------------------------------

/// Crates whose non-test code must stay panic-free: the storage layer
/// promises typed [`StorageError`]s on every path (PR 3), `core` runs
/// inside the executor where a panic poisons the whole scope, and the
/// `cli`/`gen` binaries promise their documented exit codes — a panic
/// would bypass them (PR 8).
const PANIC_SCOPE: &[&str] = &[
    "crates/storage/src/",
    "crates/core/src/",
    "crates/cli/src/",
    "crates/gen/src/",
];

fn no_panic(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in &ws.files {
        if !in_any(&f.rel_path, PANIC_SCOPE) {
            continue;
        }
        let toks = &f.tokens;
        for i in 0..toks.len() {
            let Some(id) = toks[i].ident() else { continue };
            let line = toks[i].line;
            if f.is_test_line(line) {
                continue;
            }
            let hit = match id {
                // Method calls only: `.unwrap()` / `.expect(`, not
                // identifiers like `unwrap_or` (a distinct token).
                "unwrap" | "expect" => {
                    i > 0
                        && toks[i - 1].is_punct('.')
                        && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
                }
                "panic" | "unreachable" | "todo" | "unimplemented" => {
                    toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
                }
                _ => false,
            };
            if hit {
                let what = match id {
                    "unwrap" | "expect" => format!(".{id}()"),
                    _ => format!("{id}!"),
                };
                f.finding(
                    "no-panic",
                    line,
                    format!("`{what}` in non-test code; return a typed error instead"),
                    out,
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// forbid-unsafe
// ---------------------------------------------------------------------------

/// `true` for files that are crate roots (where the attribute must live).
fn is_crate_root(rel: &str) -> bool {
    rel == "src/lib.rs"
        || rel == "src/main.rs"
        || rel.ends_with("/src/lib.rs")
        || rel.ends_with("/src/main.rs")
        || rel.contains("/src/bin/")
}

fn forbid_unsafe(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in &ws.files {
        if !is_crate_root(&f.rel_path) {
            continue;
        }
        let has = f.tokens.windows(3).any(|w| {
            w[0].ident() == Some("forbid")
                && w[1].is_punct('(')
                && w[2].ident() == Some("unsafe_code")
        });
        if !has && !f.is_allowed("forbid-unsafe", 1) {
            out.push(Finding {
                rule: "forbid-unsafe",
                path: f.rel_path.clone(),
                line: 1,
                message: "crate root is missing #![forbid(unsafe_code)]".to_string(),
                key: "missing #![forbid(unsafe_code)]".to_string(),
            });
        }
    }
}

// ---------------------------------------------------------------------------
// no-rc
// ---------------------------------------------------------------------------

/// Crates whose values cross executor threads: `Rc` is not `Send`, so a
/// refactor that reintroduces it either fails to compile deep in a closure
/// or, worse, pushes someone to unsound workarounds. Catch it at the source.
const RC_SCOPE: &[&str] = &[
    "crates/core/src/",
    "crates/exec/src/",
    "crates/query/src/",
    "crates/schema/src/",
];

fn no_rc(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in &ws.files {
        if !in_any(&f.rel_path, RC_SCOPE) {
            continue;
        }
        let mut last_line = 0u32;
        for t in &f.tokens {
            if t.ident() == Some("Rc") && !f.is_test_line(t.line) && t.line != last_line {
                last_line = t.line;
                f.finding(
                    "no-rc",
                    t.line,
                    "`Rc` in an exec-pool crate; use `Arc` (Rc is not Send)".to_string(),
                    out,
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// metric-coverage
// ---------------------------------------------------------------------------

const METRICS_LIB: &str = "crates/metrics/src/lib.rs";
const METRICS_REGRESSION: &str = "tests/metrics_regression.rs";

/// A metric registered in the `metrics!` / `timer_metrics!` tables.
struct RegisteredMetric {
    variant: String,
    name: String,
    line: u32,
}

/// `true` when `s` looks like a `layer.counter` metric name.
fn is_dotted_name(s: &str) -> bool {
    let mut parts = s.split('.');
    let (Some(a), Some(b), None) = (parts.next(), parts.next(), parts.next()) else {
        return false;
    };
    let seg = |p: &str| {
        !p.is_empty()
            && p.chars().next().is_some_and(|c| c.is_ascii_lowercase())
            && p.chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
    };
    seg(a) && seg(b)
}

/// Extracts `Variant => (… "layer.name" …)` rows from the registry source.
/// The macro *definition* also matches the `Ident => (` shape (via the
/// `:ident` fragment specifiers) but contains no string literal, so the
/// dotted-name requirement filters it out.
fn registered_metrics(reg: &SourceFile) -> Vec<RegisteredMetric> {
    let toks = &reg.tokens;
    let mut found = Vec::new();
    let mut i = 0usize;
    while i + 3 < toks.len() {
        let arm = toks[i]
            .ident()
            .filter(|v| v.chars().next().is_some_and(|c| c.is_ascii_uppercase()))
            .filter(|_| {
                toks[i + 1].is_punct('=') && toks[i + 2].is_punct('>') && toks[i + 3].is_punct('(')
            });
        let Some(variant) = arm else {
            i += 1;
            continue;
        };
        if reg.is_test_line(toks[i].line) {
            i += 1;
            continue;
        }
        // First string literal inside the parenthesized group.
        let mut depth = 1usize;
        let mut j = i + 4;
        let mut name: Option<(String, u32)> = None;
        while j < toks.len() && depth > 0 {
            match &toks[j].kind {
                TokenKind::Punct('(') => depth += 1,
                TokenKind::Punct(')') => depth -= 1,
                TokenKind::Str(s) if name.is_none() && is_dotted_name(s) => {
                    name = Some((s.clone(), toks[j].line));
                }
                _ => {}
            }
            j += 1;
        }
        if let Some((name, line)) = name {
            found.push(RegisteredMetric {
                variant: variant.to_string(),
                name,
                line,
            });
        }
        i = j;
    }
    found
}

/// All `Metric::X` / `TimerMetric::X` variant references in a file.
fn metric_paths(f: &SourceFile) -> Vec<(String, u32)> {
    f.tokens
        .windows(4)
        .filter_map(|w| {
            let root = w[0].ident()?;
            if (root != "Metric" && root != "TimerMetric")
                || !w[1].is_punct(':')
                || !w[2].is_punct(':')
            {
                return None;
            }
            let v = w[3].ident()?;
            // Skip associated consts/functions (ALL, name, …): variants are
            // CamelCase — uppercase start with at least one lowercase char.
            if v.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                && v.chars().any(|c| c.is_ascii_lowercase())
            {
                Some((v.to_string(), w[3].line))
            } else {
                None
            }
        })
        .collect()
}

/// Backtick-quoted code spans per line of a markdown document.
fn backticked_spans(text: &str) -> Vec<(String, u32)> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        for (c, chunk) in line.split('`').enumerate() {
            if c % 2 == 1 && !chunk.is_empty() {
                out.push((chunk.to_string(), idx as u32 + 1));
            }
        }
    }
    out
}

fn metric_coverage(ws: &Workspace, out: &mut Vec<Finding>) {
    let Some(reg) = ws.file(METRICS_LIB) else {
        return; // not a workspace with a metrics registry (e.g. fixtures)
    };
    let registered = registered_metrics(reg);
    if registered.is_empty() {
        return;
    }
    let names: Vec<&str> = registered.iter().map(|m| m.name.as_str()).collect();
    let prefixes: Vec<&str> = {
        let mut p: Vec<&str> = names.iter().filter_map(|n| n.split('.').next()).collect();
        p.sort_unstable();
        p.dedup();
        p
    };

    let design = ws.design_md.as_deref().unwrap_or("");
    let pinned = ws.file(METRICS_REGRESSION);
    let pinned_variants: Vec<(String, u32)> = pinned.map(metric_paths).unwrap_or_default();

    // Registry -> docs/tests: every registered metric must be documented
    // and pinned.
    for m in &registered {
        if !design.contains(&format!("`{}`", m.name)) && !reg.is_allowed("metric-coverage", m.line)
        {
            out.push(Finding {
                rule: "metric-coverage",
                path: reg.rel_path.clone(),
                line: m.line,
                message: format!("metric `{}` is not documented in DESIGN.md", m.name),
                key: format!("undocumented {}", m.name),
            });
        }
        let is_pinned = pinned_variants.iter().any(|(v, _)| v == &m.variant);
        if !is_pinned && !reg.is_allowed("metric-coverage", m.line) {
            out.push(Finding {
                rule: "metric-coverage",
                path: reg.rel_path.clone(),
                line: m.line,
                message: format!(
                    "metric `{}` ({}) is not pinned in {METRICS_REGRESSION}",
                    m.name, m.variant
                ),
                key: format!("unpinned {}", m.name),
            });
        }
    }

    // Docs -> registry: a documented name that is not registered is a
    // phantom counter (stale docs or a typo'd rename).
    const NON_METRIC_SUFFIXES: &[&str] = &[
        "rs", "md", "toml", "json", "tsv", "yml", "yaml", "lock", "xml", "axql", "log", "txt",
    ];
    for (span, line) in backticked_spans(design) {
        if !is_dotted_name(&span) {
            continue;
        }
        let (Some(prefix), Some(suffix)) = (span.split('.').next(), span.split('.').nth(1)) else {
            continue;
        };
        if !prefixes.contains(&prefix) || NON_METRIC_SUFFIXES.contains(&suffix) {
            continue;
        }
        if !names.contains(&span.as_str()) {
            out.push(Finding {
                rule: "metric-coverage",
                path: "DESIGN.md".to_string(),
                line,
                message: format!("`{span}` is documented but not registered in crates/metrics"),
                key: format!("phantom {span}"),
            });
        }
    }

    // Tests -> registry: a pinned variant that does not exist is a phantom.
    let variants: Vec<&str> = registered.iter().map(|m| m.variant.as_str()).collect();
    if let Some(p) = pinned {
        for (v, line) in &pinned_variants {
            if !variants.contains(&v.as_str()) && !p.is_allowed("metric-coverage", *line) {
                out.push(Finding {
                    rule: "metric-coverage",
                    path: p.rel_path.clone(),
                    line: *line,
                    message: format!("`{v}` is pinned but not registered in crates/metrics"),
                    key: format!("phantom {v}"),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// fs-outside-pager
// ---------------------------------------------------------------------------

/// Files that may talk to the filesystem / backend directly: the pager owns
/// all page I/O, the fault backend wraps it for crash injection, and the
/// lint tool itself reads sources and rewrites its baseline.
const FS_ALLOWED: &[&str] = &[
    "crates/storage/src/pager.rs",
    "crates/storage/src/fault.rs",
    "crates/lint/src/",
];

/// `std::fs` functions that mutate the filesystem.
const FS_WRITE_FNS: &[&str] = &[
    "write",
    "create_dir",
    "create_dir_all",
    "remove_file",
    "remove_dir",
    "remove_dir_all",
    "rename",
    "copy",
    "hard_link",
    "set_permissions",
];

fn fs_outside_pager(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in &ws.files {
        if in_any(&f.rel_path, FS_ALLOWED) {
            continue;
        }
        let toks = &f.tokens;
        for i in 0..toks.len() {
            let Some(id) = toks[i].ident() else { continue };
            let line = toks[i].line;
            if f.is_test_line(line) {
                continue;
            }
            let path_call = |module: &str, fns: &[&str]| {
                id == module
                    && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
                    && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
                    && toks
                        .get(i + 3)
                        .and_then(Token::ident)
                        .is_some_and(|m| fns.contains(&m))
            };
            let hit = if path_call("fs", FS_WRITE_FNS) {
                Some(format!("fs::{}", toks[i + 3].ident().unwrap_or_default()))
            } else if path_call("File", &["create", "create_new", "options"]) {
                Some(format!("File::{}", toks[i + 3].ident().unwrap_or_default()))
            } else if id == "OpenOptions" {
                Some("OpenOptions".to_string())
            } else if matches!(id, "set_len" | "sync_all" | "sync_data" | "write_page")
                && i > 0
                && toks[i - 1].is_punct('.')
                && toks.get(i + 1).is_some_and(|t| t.is_punct('('))
            {
                Some(format!(".{id}()"))
            } else {
                None
            };
            if let Some(what) = hit {
                f.finding(
                    "fs-outside-pager",
                    line,
                    format!("direct filesystem/backend write `{what}`; all page I/O goes through the pager"),
                    out,
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// shared dataflow plumbing
// ---------------------------------------------------------------------------

/// Iterates a file's functions whose bodies are live (non-test) code.
fn live_fns(f: &SourceFile) -> impl Iterator<Item = &FnDef> {
    f.fns.iter().filter(move |d| !f.is_test_line(d.line))
}

/// The expression evaluated by an action, if any.
fn action_expr(a: &Action) -> Option<&Expr> {
    match a {
        Action::Bind { init, .. } => init.as_ref(),
        Action::Assign { value, .. } => Some(value),
        Action::Eval { expr, .. } => Some(expr),
        Action::Kill { .. } => None,
    }
}

/// `true` when any action or the branch expression of block `b` satisfies
/// `pred`.
fn block_mentions(cfg: &Cfg, b: usize, pred: impl Fn(&Expr) -> bool) -> bool {
    cfg.blocks[b]
        .actions
        .iter()
        .filter_map(action_expr)
        .chain(cfg.blocks[b].branch.as_ref())
        .any(pred)
}

// ---------------------------------------------------------------------------
// lock-across-spawn (v2: guard liveness over the CFG)
// ---------------------------------------------------------------------------

/// Receivers whose `.map(...)` is an executor fan-out, not iterator `map`.
const SCOPE_RECEIVERS: &[&str] = &["scope", "sc"];

/// `true` for a call that fans work out to the executor.
fn is_spawnish(c: &CallSite) -> bool {
    c.is_method
        && match c.name.as_str() {
            "spawn" | "map_deferred" => true,
            "map" => c
                .receiver
                .as_deref()
                .is_some_and(|r| SCOPE_RECEIVERS.contains(&r)),
            _ => false,
        }
}

/// `true` for an initializer that takes a Mutex/RwLock guard.
fn takes_guard(e: &Expr) -> bool {
    e.calls.iter().any(|c| c.is_method && c.name == "lock")
}

/// The guard-liveness transfer: a bind whose initializer locks makes the
/// names live; any other bind/assign of the name releases it; `drop(g)`
/// releases it. Scope exits and `break`/`continue` edges are handled by
/// the solver's kill machinery.
fn guard_transfer(a: &Action, facts: &mut Facts) {
    match a {
        Action::Bind { names, init, .. } => {
            if init.as_ref().is_some_and(takes_guard) {
                facts.extend(names.iter().cloned());
            } else {
                for n in names {
                    facts.remove(n);
                }
            }
        }
        Action::Assign { target, value, .. } => {
            if let Some(t) = target {
                if takes_guard(value) {
                    facts.insert(t.clone());
                } else {
                    facts.remove(t);
                }
            }
        }
        Action::Eval { expr, .. } => {
            for c in &expr.calls {
                if c.name == "drop" && !c.is_method {
                    for arg in &c.args {
                        for n in &arg.idents {
                            facts.remove(n);
                        }
                    }
                }
            }
        }
        Action::Kill { .. } => {}
    }
}

fn lock_across_spawn(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in &ws.files {
        for def in live_fns(f) {
            let cfg = Cfg::build(def);
            let sol = flow::forward_may(&cfg, &Facts::new(), guard_transfer);
            // Bind lines per guard name, for the finding message.
            let mut bind_lines: Vec<(String, u32)> = Vec::new();
            for b in &cfg.blocks {
                for a in &b.actions {
                    if let Action::Bind {
                        names,
                        init: Some(init),
                        line,
                        ..
                    } = a
                    {
                        if takes_guard(init) {
                            bind_lines.extend(names.iter().map(|n| (n.clone(), *line)));
                        }
                    }
                }
            }
            for (bi, blk) in cfg.blocks.iter().enumerate() {
                for (ai, a) in blk.actions.iter().enumerate() {
                    let Some(expr) = action_expr(a) else { continue };
                    for c in expr.calls.iter().filter(|c| is_spawnish(c)) {
                        let live = flow::facts_before(&cfg, &sol, bi, ai, guard_transfer);
                        for name in &live {
                            let bound = bind_lines
                                .iter()
                                .filter(|(n, l)| n == name && *l <= c.line)
                                .map(|(_, l)| *l)
                                .max()
                                .or_else(|| {
                                    bind_lines.iter().find(|(n, _)| n == name).map(|(_, l)| *l)
                                });
                            let Some(bound) = bound else { continue };
                            f.finding(
                                "lock-across-spawn",
                                c.line,
                                format!(
                                    "`.{}(…)` while Mutex guard `{name}` (bound on line {bound}) \
                                     may still be held; drop the guard before fanning out",
                                    c.name
                                ),
                                out,
                            );
                        }
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// untrusted-length
// ---------------------------------------------------------------------------

/// Crates that decode attacker-controllable on-disk bytes. A server
/// (ROADMAP tentpole) hands these decoders bytes from any client, so a
/// length field must never size an allocation before a bound check.
const DECODE_SCOPE: &[&str] = &[
    "crates/index/src/",
    "crates/tree/src/",
    "crates/storage/src/",
];

/// Integer widths whose `from_le_bytes`/`from_be_bytes` yield an
/// untrusted length. `u8`/`u16` are excluded: 255/65535 caps are harmless
/// capacities by themselves.
const WIDE_INT_QUALIFIERS: &[&str] = &["u32", "u64", "usize", "i32", "i64"];

/// Calls that read a wide integer straight out of a byte cursor.
const DECODE_CALLS: &[&str] = &["read_varint", "read_u32", "read_u64", "u32", "u64"];

/// Struct fields that carry decoded entry counts in the codec layer.
const COUNT_FIELDS: &[&str] = &["entries", "count"];

/// Allocation sinks whose first argument is an element count.
const ALLOC_SINKS: &[&str] = &["with_capacity", "reserve", "reserve_exact"];

/// Guard-shaped calls: a dominating branch that passes the length through
/// one of these has bounded it (`data.get(..n)`, `cur.claim(n, sz)`,
/// `n.checked_mul(sz)`, …).
fn is_guardish_call(name: &str) -> bool {
    matches!(
        name,
        "get" | "min" | "claim" | "validate" | "ensure" | "check"
    ) || name.starts_with("checked_")
}

/// `true` for an expression that *originates* an untrusted length.
fn is_length_source(e: &Expr) -> bool {
    e.calls.iter().any(|c| match c.name.as_str() {
        "from_le_bytes" | "from_be_bytes" => c
            .qualifier
            .as_deref()
            .is_some_and(|q| WIDE_INT_QUALIFIERS.contains(&q)),
        n => DECODE_CALLS.contains(&n) && c.is_method || n == "read_varint",
    }) || e.fields.iter().any(|f| COUNT_FIELDS.contains(&f.as_str()))
}

/// `true` when the expression clamps its value (`.min(cap)`, `.clamp(…)`)
/// — a bound check folded into the expression itself.
fn is_clamped(e: &Expr) -> bool {
    e.calls
        .iter()
        .any(|c| c.is_method && matches!(c.name.as_str(), "min" | "clamp"))
}

/// The taint transfer: a bind/assign from a source (or from an already
/// tainted name) taints the target; a clamped initializer, or any other
/// initializer, untaints it (strong update — names are block-scoped and
/// the analysis is per-function).
fn taint_transfer(a: &Action, facts: &mut Facts) {
    let tainted = |e: &Expr, facts: &Facts| {
        !is_clamped(e) && (is_length_source(e) || e.idents.iter().any(|i| facts.contains(i)))
    };
    match a {
        Action::Bind {
            names,
            init: Some(init),
            ..
        } => {
            if tainted(init, facts) {
                facts.extend(names.iter().cloned());
            } else {
                for n in names {
                    facts.remove(n);
                }
            }
        }
        Action::Bind {
            names, init: None, ..
        } => {
            for n in names {
                facts.remove(n);
            }
        }
        Action::Assign {
            target: Some(t),
            compound,
            value,
            ..
        } => {
            if tainted(value, facts) {
                facts.insert(t.clone());
            } else if !compound {
                facts.remove(t);
            }
        }
        _ => {}
    }
}

/// `true` when branch expression `e` bounds witness `w`: it mentions the
/// witness and either compares it or passes it through a guard-shaped
/// call.
fn branch_guards(e: &Expr, w: &str) -> bool {
    (e.reads(w) || e.fields.iter().any(|f| f == w))
        && (e.has_cmp || e.calls.iter().any(|c| is_guardish_call(&c.name)))
}

fn untrusted_length(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in &ws.files {
        if !in_any(&f.rel_path, DECODE_SCOPE) {
            continue;
        }
        for def in live_fns(f) {
            let cfg = Cfg::build(def);
            let sol = flow::forward_may(&cfg, &Facts::new(), taint_transfer);
            let dom = cfg.dominators();
            for (bi, blk) in cfg.blocks.iter().enumerate() {
                for (ai, a) in blk.actions.iter().enumerate() {
                    let Some(expr) = action_expr(a) else { continue };
                    for c in expr
                        .calls
                        .iter()
                        .filter(|c| ALLOC_SINKS.contains(&c.name.as_str()))
                    {
                        let Some(arg) = c.args.first() else { continue };
                        if is_clamped(arg) {
                            continue;
                        }
                        let live = flow::facts_before(&cfg, &sol, bi, ai, taint_transfer);
                        // Witnesses: tainted names the size argument reads,
                        // plus count-fields it projects directly.
                        let mut witnesses: Vec<&str> = arg
                            .idents
                            .iter()
                            .filter(|i| live.contains(i.as_str()))
                            .map(String::as_str)
                            .collect();
                        witnesses.extend(
                            arg.fields
                                .iter()
                                .filter(|fl| COUNT_FIELDS.contains(&fl.as_str()))
                                .map(String::as_str),
                        );
                        let direct_source = witnesses.is_empty() && is_length_source(arg);
                        if witnesses.is_empty() && !direct_source {
                            continue;
                        }
                        // A strictly dominating branch that bounds every
                        // witness sanitizes the sink. A direct source has
                        // no name to guard on — it must be bound first.
                        let guarded = !direct_source
                            && witnesses.iter().all(|w| {
                                dom[bi].iter().filter(|&d| d != bi).any(|d| {
                                    cfg.blocks[d]
                                        .branch
                                        .as_ref()
                                        .is_some_and(|e| branch_guards(e, w))
                                })
                            });
                        if guarded {
                            continue;
                        }
                        let what = if direct_source {
                            "a freshly decoded integer".to_string()
                        } else {
                            format!("untrusted decoded value `{}`", witnesses.join("`/`"))
                        };
                        f.finding(
                            "untrusted-length",
                            c.line,
                            format!(
                                "`{}` sized by {what} with no dominating bound check; \
                                 validate against the input length first",
                                c.name
                            ),
                            out,
                        );
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// error-swallow
// ---------------------------------------------------------------------------

/// Crates where a silently dropped `Result` can hide data loss: the
/// storage engine, the core database layer, and the index codecs.
const SWALLOW_SCOPE: &[&str] = &[
    "crates/storage/src/",
    "crates/core/src/",
    "crates/index/src/",
];

/// Recursively visits every statement of a block.
fn visit_stmts<'a>(blk: &'a crate::ast::Block, f: &mut impl FnMut(&'a Stmt)) {
    for s in &blk.stmts {
        f(s);
        match s {
            Stmt::Let {
                else_block: Some(b),
                ..
            } => visit_stmts(b, f),
            Stmt::If {
                then_block,
                else_block,
                ..
            } => {
                visit_stmts(then_block, f);
                if let Some(b) = else_block {
                    visit_stmts(b, f);
                }
            }
            Stmt::While { body, .. } | Stmt::Loop { body, .. } | Stmt::For { body, .. } => {
                visit_stmts(body, f)
            }
            Stmt::Match { arms, .. } => {
                for a in arms {
                    visit_stmts(&a.body, f);
                }
            }
            Stmt::BlockStmt { block, .. } => visit_stmts(block, f),
            _ => {}
        }
    }
}

fn error_swallow(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in &ws.files {
        if !in_any(&f.rel_path, SWALLOW_SCOPE) {
            continue;
        }
        for def in live_fns(f) {
            visit_stmts(&def.body, &mut |s| match s {
                // `let _ = fallible();` — a `?` in the initializer handles
                // the error, so only try-free discards are swallows.
                Stmt::Let {
                    wildcard: true,
                    init: Some(init),
                    line,
                    ..
                } if !init.has_try && !f.is_test_line(*line) => {
                    f.finding(
                        "error-swallow",
                        *line,
                        "`let _ = …` discards a result with no `?`; handle the error \
                         or justify with lint:allow(error-swallow)"
                            .to_string(),
                        out,
                    );
                }
                // Statement-level `….ok();` — the Result is converted to
                // an Option and immediately dropped.
                Stmt::Expr { expr, line } if !f.is_test_line(*line) => {
                    let last_is_ok = expr
                        .calls
                        .last()
                        .is_some_and(|c| c.is_method && c.name == "ok" && c.args.is_empty());
                    if last_is_ok && !expr.has_try {
                        f.finding(
                            "error-swallow",
                            *line,
                            "statement-level `.ok()` swallows a Result; handle the error \
                             or justify with lint:allow(error-swallow)"
                                .to_string(),
                            out,
                        );
                    }
                }
                _ => {}
            });
        }
    }
}

// ---------------------------------------------------------------------------
// commit-protocol
// ---------------------------------------------------------------------------

/// Files that implement the commit path. The PR 3 invariant: a header
/// slot may only be written after every dirty page reached the backend
/// (`flush`, which itself syncs), and the write must be made durable
/// (`sync`) before the commit is reported — header-before-flush was the
/// original torn-commit bug.
fn commit_protocol_scope(rel: &str) -> bool {
    rel.ends_with("/pager.rs") || rel.ends_with("/dbfile.rs") || rel.ends_with("/store.rs")
}

fn commit_protocol(ws: &Workspace, out: &mut Vec<Finding>) {
    for f in &ws.files {
        if !commit_protocol_scope(&f.rel_path) {
            continue;
        }
        for def in live_fns(f) {
            let cfg = Cfg::build(def);
            let mut dom = None;
            let mut pdom = None;
            for (bi, blk) in cfg.blocks.iter().enumerate() {
                for (ai, a) in blk.actions.iter().enumerate() {
                    let Some(expr) = action_expr(a) else { continue };
                    for c in expr
                        .calls
                        .iter()
                        .filter(|c| c.is_method && c.name == "write_direct")
                    {
                        let calls_flush = |e: &Expr| e.calls_named("flush");
                        let calls_sync = |e: &Expr| {
                            e.calls.iter().any(|c| {
                                matches!(c.name.as_str(), "sync" | "sync_all" | "sync_data")
                            })
                        };
                        // Flush must precede the write: earlier in this
                        // block, or in any strictly dominating block.
                        let dom = dom.get_or_insert_with(|| cfg.dominators());
                        let flushed = blk.actions[..ai]
                            .iter()
                            .filter_map(action_expr)
                            .any(calls_flush)
                            || dom[bi]
                                .iter()
                                .filter(|&d| d != bi)
                                .any(|d| block_mentions(&cfg, d, calls_flush));
                        if !flushed {
                            f.finding(
                                "commit-protocol",
                                c.line,
                                "header-slot `write_direct` not dominated by a flush of \
                                 dirty pages (PR 3 commit ordering)"
                                    .to_string(),
                                out,
                            );
                        }
                        // Sync must follow on every success path: later in
                        // this block (its branch expression included), or
                        // in every-success-path postdominators.
                        let pdom = pdom.get_or_insert_with(|| cfg.success_postdominators());
                        let synced = blk.actions[ai + 1..]
                            .iter()
                            .filter_map(action_expr)
                            .chain(blk.branch.as_ref())
                            .any(calls_sync)
                            || pdom[bi]
                                .iter()
                                .filter(|&p| p != bi)
                                .any(|p| block_mentions(&cfg, p, calls_sync));
                        if !synced {
                            f.finding(
                                "commit-protocol",
                                c.line,
                                "header-slot `write_direct` not followed by a sync on every \
                                 success path (torn-commit window)"
                                    .to_string(),
                                out,
                            );
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Workspace;
    use std::path::PathBuf;

    fn ws_with(files: Vec<(&str, &str)>, design: Option<&str>) -> Workspace {
        Workspace {
            root: PathBuf::new(),
            files: files
                .into_iter()
                .map(|(p, s)| SourceFile::parse(p.to_string(), s))
                .collect(),
            design_md: design.map(str::to_string),
        }
    }

    fn run_one(ws: &Workspace, id: &str) -> Vec<Finding> {
        let mut out = Vec::new();
        (rule(id).unwrap().run)(ws, &mut out);
        out
    }

    #[test]
    fn no_panic_flags_methods_and_macros_in_scope_only() {
        let ws = ws_with(
            vec![
                (
                    "crates/storage/src/pager.rs",
                    "fn f() { x.unwrap(); y.expect(\"m\"); panic!(\"n\"); unreachable!(); \
                     z.unwrap_or(0); }\n#[cfg(test)]\nmod t { fn g() { q.unwrap(); } }\n",
                ),
                ("crates/cli/src/main.rs", "fn main() { x.unwrap(); }"),
                ("crates/xml/src/lib.rs", "fn p() { x.unwrap(); }"),
            ],
            None,
        );
        let f = run_one(&ws, "no-panic");
        assert_eq!(f.len(), 5, "{f:?}");
        assert_eq!(
            f.iter()
                .filter(|x| x.path == "crates/storage/src/pager.rs")
                .count(),
            4
        );
        // cli is in scope since the scope expansion; xml is not.
        assert!(f.iter().any(|x| x.path == "crates/cli/src/main.rs"));
        assert!(f.iter().all(|x| x.path != "crates/xml/src/lib.rs"));
    }

    #[test]
    fn forbid_unsafe_checks_crate_roots_only() {
        let ws = ws_with(
            vec![
                ("crates/a/src/lib.rs", "#![forbid(unsafe_code)]\nfn a() {}"),
                ("crates/b/src/lib.rs", "fn b() {}"),
                ("crates/b/src/util.rs", "fn helper() {}"),
                ("crates/c/src/bin/tool.rs", "fn main() {}"),
            ],
            None,
        );
        let f = run_one(&ws, "forbid-unsafe");
        let paths: Vec<&str> = f.iter().map(|x| x.path.as_str()).collect();
        assert_eq!(paths, ["crates/b/src/lib.rs", "crates/c/src/bin/tool.rs"]);
    }

    #[test]
    fn no_rc_is_scoped_and_once_per_line() {
        let ws = ws_with(
            vec![
                (
                    "crates/core/src/topk.rs",
                    "use std::rc::Rc;\nfn f(x: Rc<u8>) -> Rc<u8> { x }\n",
                ),
                ("crates/storage/src/fault.rs", "use std::rc::Rc;\n"),
            ],
            None,
        );
        let f = run_one(&ws, "no-rc");
        assert_eq!(f.len(), 2, "{f:?}"); // line 1 and line 2, storage exempt
    }

    #[test]
    fn metric_coverage_cross_checks_all_three_surfaces() {
        let reg = r#"
metrics! {
    GoodReads => (Pager, "pager.good_reads", "doc"),
    Ghost => (Pager, "pager.ghost", "doc"),
}
timer_metrics! {
    Commit => ("store.commit_t", "doc"),
}
"#;
        let pinned = "fn t() { use_it(Metric::GoodReads); check(Metric::Phantom); \
                      tm(TimerMetric::Commit); }";
        let design = "counters: `pager.good_reads` and `store.commit_t`; \
                      stale: `pager.vanished`.";
        let ws = ws_with(
            vec![
                ("crates/metrics/src/lib.rs", reg),
                ("tests/metrics_regression.rs", pinned),
            ],
            Some(design),
        );
        let f = run_one(&ws, "metric-coverage");
        let keys: Vec<&str> = f.iter().map(|x| x.key.as_str()).collect();
        assert!(keys.contains(&"undocumented pager.ghost"), "{keys:?}");
        assert!(keys.contains(&"unpinned pager.ghost"), "{keys:?}");
        assert!(keys.contains(&"phantom pager.vanished"), "{keys:?}");
        assert!(keys.contains(&"phantom Phantom"), "{keys:?}");
        assert_eq!(f.len(), 4, "{f:?}");
    }

    #[test]
    fn metric_coverage_ignores_file_names_in_docs() {
        let reg = "metrics! { A => (Pager, \"pager.reads\", \"d\") }";
        let pinned = "fn t() { p(Metric::A0a); }"; // A0a ≠ A but CamelCase-ish
        let design = "see `pager.rs` and `pager.reads`; also `list.rs`.";
        let ws = ws_with(
            vec![
                ("crates/metrics/src/lib.rs", reg),
                ("tests/metrics_regression.rs", pinned),
            ],
            Some(design),
        );
        let f = run_one(&ws, "metric-coverage");
        // pager.rs / list.rs are file names, not phantom metrics; A is
        // unpinned, A0a is phantom.
        let keys: Vec<&str> = f.iter().map(|x| x.key.as_str()).collect();
        assert_eq!(keys, ["unpinned pager.reads", "phantom A0a"], "{f:?}");
    }

    #[test]
    fn fs_rule_allows_pager_and_test_code() {
        let ws = ws_with(
            vec![
                (
                    "crates/cli/src/commands.rs",
                    "fn w() { std::fs::write(p, b)?; std::fs::read_to_string(p)?; }\n\
                     #[cfg(test)]\nmod t { fn x() { std::fs::write(p, b).unwrap(); } }\n",
                ),
                (
                    "crates/storage/src/pager.rs",
                    "fn w() { std::fs::write(p, b)?; }",
                ),
            ],
            None,
        );
        let f = run_one(&ws, "fs-outside-pager");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].path, "crates/cli/src/commands.rs");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn lock_across_spawn_window_and_drop() {
        let bad = "fn f(scope: &S) {\n\
                   let guard = m.lock().unwrap();\n\
                   scope.map(items, work);\n\
                   }\n";
        let ok_drop = "fn f(scope: &S) {\n\
                       let guard = m.lock().unwrap();\n\
                       drop(guard);\n\
                       scope.map(items, work);\n\
                       }\n";
        let ok_iter = "fn f() {\n\
                       let guard = m.lock().unwrap();\n\
                       let v: Vec<_> = items.iter().map(|x| x + 1).collect();\n\
                       }\n";
        let ws = ws_with(
            vec![
                ("crates/core/src/a.rs", bad),
                ("crates/core/src/b.rs", ok_drop),
                ("crates/core/src/c.rs", ok_iter),
            ],
            None,
        );
        let f = run_one(&ws, "lock-across-spawn");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].path, "crates/core/src/a.rs");
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn untrusted_length_taint_guard_and_clamp() {
        let bad = "fn f(cur: &mut C) -> Result<V, E> {\n\
                   let n = cur.read_varint()? as usize;\n\
                   let mut out = Vec::with_capacity(n);\n\
                   Ok(out)\n\
                   }\n";
        let guarded = "fn f(cur: &mut C) -> Result<V, E> {\n\
                       let n = cur.read_varint()? as usize;\n\
                       cur.claim(n, 4)?;\n\
                       let mut out = Vec::with_capacity(n);\n\
                       Ok(out)\n\
                       }\n";
        let cmp_guarded = "fn f(data: &[u8], v: &mut Vec<u32>, limit: usize) {\n\
                           let n = u32::from_le_bytes(h(data)) as usize;\n\
                           if n > limit { return; }\n\
                           v.reserve(n);\n\
                           }\n";
        let clamped = "fn f(data: &[u8], v: &mut Vec<u32>) {\n\
                       let n = u32::from_le_bytes(h(data)) as usize;\n\
                       v.reserve(n.min(64));\n\
                       }\n";
        let direct = "fn f(cur: &mut C, v: &mut Vec<u32>) {\n\
                      v.reserve_exact(cur.read_u32() as usize);\n\
                      }\n";
        let ws = ws_with(
            vec![
                ("crates/index/src/a.rs", bad),
                ("crates/index/src/b.rs", guarded),
                ("crates/index/src/c.rs", cmp_guarded),
                ("crates/index/src/d.rs", clamped),
                ("crates/index/src/e.rs", direct),
                // Same decode shape outside the codec crates: not in scope.
                ("crates/query/src/q.rs", bad),
            ],
            None,
        );
        let f = run_one(&ws, "untrusted-length");
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f
            .iter()
            .any(|x| x.path == "crates/index/src/a.rs" && x.line == 3));
        assert!(f
            .iter()
            .any(|x| x.path == "crates/index/src/e.rs" && x.line == 2));
    }

    #[test]
    fn untrusted_length_guard_must_dominate() {
        // The bound check sits on one branch only, so it does NOT
        // dominate the allocation — the line-blind window heuristics this
        // pass replaces would have accepted it.
        let sneaky = "fn f(cur: &mut C, flag: bool) -> Result<V, E> {\n\
                      let n = cur.read_varint()? as usize;\n\
                      if flag { cur.claim(n, 4)?; }\n\
                      let mut out = Vec::with_capacity(n);\n\
                      Ok(out)\n\
                      }\n";
        let ws = ws_with(vec![("crates/index/src/a.rs", sneaky)], None);
        let f = run_one(&ws, "untrusted-length");
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn error_swallow_wildcard_and_trailing_ok() {
        let bad = "fn f(file: &mut B) {\n\
                   let _ = file.flush();\n\
                   file.advise().ok();\n\
                   }\n";
        let ok = "fn f(file: &mut B) -> Result<(), E> {\n\
                  let _ = file.flush()?;\n\
                  Ok(())\n\
                  }\n\
                  fn g(file: &mut B) -> Option<u8> {\n\
                  let v = file.read().ok();\n\
                  v\n\
                  }\n";
        let ws = ws_with(
            vec![
                ("crates/storage/src/io.rs", bad),
                ("crates/storage/src/fine.rs", ok),
                // Out of the storage/core/index scope entirely.
                ("crates/query/src/q.rs", bad),
            ],
            None,
        );
        let f = run_one(&ws, "error-swallow");
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.path == "crates/storage/src/io.rs"));
        assert!(f.iter().any(|x| x.line == 2));
        assert!(f.iter().any(|x| x.line == 3));
    }

    #[test]
    fn commit_protocol_reproves_the_pr3_ordering() {
        let header_first = "fn commit(&mut self) -> Result<(), E> {\n\
                            self.write_direct(SLOT, buf)?;\n\
                            self.flush()?;\n\
                            self.backend.sync_all()?;\n\
                            Ok(())\n\
                            }\n";
        let no_sync = "fn commit(&mut self) -> Result<(), E> {\n\
                       self.flush()?;\n\
                       self.write_direct(SLOT, buf)?;\n\
                       Ok(())\n\
                       }\n";
        let good = "fn commit(&mut self) -> Result<(), E> {\n\
                    self.flush()?;\n\
                    self.write_direct(SLOT, buf)?;\n\
                    self.backend.sync_all()?;\n\
                    Ok(())\n\
                    }\n";
        let ws = ws_with(
            vec![
                ("crates/storage/src/pager.rs", header_first),
                ("crates/storage/src/dbfile.rs", no_sync),
                ("crates/storage/src/store.rs", good),
                // The rule keys on commit-layer filenames only.
                ("crates/core/src/other.rs", header_first),
            ],
            None,
        );
        let f = run_one(&ws, "commit-protocol");
        assert_eq!(f.len(), 2, "{f:?}");
        let flush = f
            .iter()
            .find(|x| x.path == "crates/storage/src/pager.rs")
            .expect("pager finding");
        assert_eq!(flush.line, 2);
        assert!(flush.message.contains("not dominated by a flush"));
        let sync = f
            .iter()
            .find(|x| x.path == "crates/storage/src/dbfile.rs")
            .expect("dbfile finding");
        assert_eq!(sync.line, 3);
        assert!(sync.message.contains("not followed by a sync"));
    }
}
