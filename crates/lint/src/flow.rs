//! A small forward **may**-dataflow solver over [`crate::cfg`] graphs.
//!
//! Facts are variable names (`BTreeSet<String>` — deterministic iteration
//! keeps findings stable). The join is set union: a fact holds at a block
//! entry if it holds on *some* path in, which is the right polarity for
//! both analyses built on top of this:
//!
//! * **taint** (untrusted-length): a name *may* carry an
//!   attacker-controlled length;
//! * **guard liveness** (lock-across-spawn): a lock guard *may* still be
//!   alive.
//!
//! The per-action transfer is supplied by the rule; edge kill sets
//! (lexical scopes exited by `break`/`continue`) are applied by the
//! solver itself, as are [`Action::Kill`] scope-exit markers — a rule's
//! transfer only has to model binds, assignments and evaluations.

use crate::cfg::{Action, Cfg};
use std::collections::BTreeSet;

/// The fact set: variable names.
pub type Facts = BTreeSet<String>;

/// Per-block solution.
#[derive(Debug, Clone, Default)]
pub struct BlockFacts {
    /// Facts holding at block entry.
    pub entry: Facts,
    /// Facts holding after the last action.
    pub exit: Facts,
}

/// Applies the solver-owned part of the transfer (scope kills), then the
/// rule's transfer.
fn step<F: Fn(&Action, &mut Facts)>(action: &Action, facts: &mut Facts, transfer: &F) {
    if let Action::Kill { names } = action {
        for n in names {
            facts.remove(n);
        }
        return;
    }
    transfer(action, facts);
}

/// Solves the forward may-analysis to fixpoint. `seed` holds at the entry
/// block's entry (e.g. tainted parameters); `transfer` mutates the fact
/// set across one action.
pub fn forward_may<F: Fn(&Action, &mut Facts)>(
    cfg: &Cfg,
    seed: &Facts,
    transfer: F,
) -> Vec<BlockFacts> {
    let n = cfg.blocks.len();
    let mut sol = vec![BlockFacts::default(); n];
    sol[cfg.entry].entry = seed.clone();
    let mut changed = true;
    while changed {
        changed = false;
        for b in 0..n {
            // Entry = union over incoming edges of (pred exit − edge kills).
            let mut entry = if b == cfg.entry {
                seed.clone()
            } else {
                Facts::new()
            };
            for (p, blk) in cfg.blocks.iter().enumerate() {
                for e in &blk.succs {
                    if e.to != b {
                        continue;
                    }
                    for f in &sol[p].exit {
                        if !e.kills.iter().any(|k| k == f) {
                            entry.insert(f.clone());
                        }
                    }
                }
            }
            let mut exit = entry.clone();
            for a in &cfg.blocks[b].actions {
                step(a, &mut exit, &transfer);
            }
            if entry != sol[b].entry || exit != sol[b].exit {
                sol[b] = BlockFacts { entry, exit };
                changed = true;
            }
        }
    }
    sol
}

/// Facts holding immediately **before** action `action_idx` of `block`,
/// re-derived from the solved block entry.
pub fn facts_before<F: Fn(&Action, &mut Facts)>(
    cfg: &Cfg,
    sol: &[BlockFacts],
    block: usize,
    action_idx: usize,
    transfer: F,
) -> Facts {
    let mut facts = sol[block].entry.clone();
    for a in cfg.blocks[block].actions.iter().take(action_idx) {
        step(a, &mut facts, &transfer);
    }
    facts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_fns;
    use crate::cfg::Cfg;
    use crate::lexer::lex;

    fn cfg_of(src: &str) -> Cfg {
        let fns = parse_fns(&lex(src).tokens);
        Cfg::build(&fns[0])
    }

    /// A toy transfer: binding from a call to `taint()` marks the names;
    /// any other bind clears them.
    fn toy(action: &Action, facts: &mut Facts) {
        if let Action::Bind {
            names,
            init: Some(init),
            ..
        } = action
        {
            if init.calls_named("taint") || init.idents.iter().any(|i| facts.contains(i)) {
                facts.extend(names.iter().cloned());
            } else {
                for n in names {
                    facts.remove(n);
                }
            }
        }
    }

    #[test]
    fn taint_propagates_through_rebinding() {
        let cfg = cfg_of("fn f() { let a = taint(); let b = a; let c = clean(); use_it(b, c); }");
        let sol = forward_may(&cfg, &Facts::new(), toy);
        // Sample before the `use_it` call (block exit is past the
        // function-scope kill, which clears everything).
        let out = facts_before(&cfg, &sol, cfg.entry, 3, toy);
        assert!(out.contains("a") && out.contains("b"), "{out:?}");
        assert!(!out.contains("c"));
    }

    #[test]
    fn may_join_unions_both_branches() {
        let cfg = cfg_of(
            "fn f(c: bool) {\n\
                 let x;\n\
                 if c { let x = taint(); use_it(x); } else { let y = taint(); use_it(y); }\n\
                 after();\n\
             }",
        );
        let sol = forward_may(&cfg, &Facts::new(), toy);
        // Scope kills keep branch-local taints from leaking past the join…
        let after = cfg
            .blocks
            .iter()
            .position(|b| {
                b.actions
                    .iter()
                    .any(|a| matches!(a, Action::Eval { expr, .. } if expr.calls_named("after")))
            })
            .expect("after block");
        assert!(!sol[after].entry.contains("x"));
        assert!(!sol[after].entry.contains("y"));
    }

    #[test]
    fn seed_facts_flow_from_the_entry() {
        let cfg = cfg_of("fn f(n: usize) { let m = n; use_it(m); }");
        let seed: Facts = ["n".to_string()].into_iter().collect();
        let sol = forward_may(&cfg, &seed, toy);
        // Actions: Bind params, Bind m, Eval use_it — sample before the use.
        let out = facts_before(&cfg, &sol, cfg.entry, 2, toy);
        assert!(out.contains("m"), "{out:?}");
    }

    #[test]
    fn loop_back_edges_reach_a_fixpoint() {
        let cfg = cfg_of(
            "fn f() {\n\
                 let mut v = clean();\n\
                 loop {\n\
                     let t = taint();\n\
                     let v = t;\n\
                     if done() { break; }\n\
                 }\n\
                 use_it(v);\n\
             }",
        );
        // Terminates (fixpoint) — and the loop-scoped rebind of `v` is
        // killed on the break edge, so the outer `v` stays clean.
        let sol = forward_may(&cfg, &Facts::new(), toy);
        let use_block = cfg
            .blocks
            .iter()
            .position(|b| {
                b.actions
                    .iter()
                    .any(|a| matches!(a, Action::Eval { expr, .. } if expr.calls_named("use_it")))
            })
            .expect("use block");
        assert!(!sol[use_block].entry.contains("v"));
    }

    #[test]
    fn facts_before_walks_partial_blocks() {
        let cfg = cfg_of("fn f() { let a = taint(); let a = clean(); use_it(a); }");
        let sol = forward_may(&cfg, &Facts::new(), toy);
        // Before the second bind, `a` is tainted; after it, clean.
        let before = facts_before(&cfg, &sol, cfg.entry, 1, toy);
        assert!(before.contains("a"));
        assert!(!sol[cfg.entry].exit.contains("a"));
    }
}
