//! A minimal Rust token lexer — just enough syntax awareness for reliable
//! static analysis without pulling in `syn` (the workspace builds with no
//! registry access, so the linter must be dependency-free).
//!
//! The lexer understands the parts of Rust that defeat naive `grep`-based
//! checks:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments,
//! * string literals with escapes, byte/C strings, and raw strings with
//!   arbitrary `#` fences (`r#"…"#`, `br##"…"##`),
//! * char literals vs. lifetimes (`'a'` vs. `'a`),
//! * raw identifiers (`r#type`).
//!
//! Everything else is emitted as identifier / punctuation / literal tokens
//! tagged with their 1-based source line, which is what the rules in
//! [`crate::rules`] pattern-match over. Comment *text* is not discarded
//! entirely: `lint:allow(rule-id)` directives are extracted so findings can
//! be suppressed at the use site (see [`Allow`]).

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokenKind,
    /// 1-based line the token starts on.
    pub line: u32,
}

/// Token categories (only as fine-grained as the rules need).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unwrap`, `fn`, `r#type` → `type`).
    Ident(String),
    /// A single punctuation character (`.`, `!`, `{`, …).
    Punct(char),
    /// A string literal (any flavour); the payload is the literal's inner
    /// text, un-unescaped — sufficient for matching metric names.
    Str(String),
    /// A numeric or character literal (content irrelevant to the rules).
    Literal,
    /// A lifetime or loop label (`'a`, `'outer`).
    Lifetime,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokenKind::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// `true` if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokenKind::Punct(c)
    }
}

/// A `lint:allow(rule-id, …)` directive found in a comment. A directive
/// trailing code suppresses findings on its own line only; a directive on
/// a comment-only line also covers the line immediately after it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    pub line: u32,
    pub rule: String,
    /// `true` when no code precedes the comment on its line (the directive
    /// then extends to the following line).
    pub own_line: bool,
}

/// Output of [`lex`]: the token stream plus extracted allow directives.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    pub allows: Vec<Allow>,
}

fn is_ident_start(c: u8) -> bool {
    c.is_ascii_alphabetic() || c == b'_'
}

fn is_ident_continue(c: u8) -> bool {
    c.is_ascii_alphanumeric() || c == b'_'
}

/// Extracts `lint:allow(a, b)` directives from one comment's text.
fn scan_allows(comment: &str, line: u32, own_line: bool, allows: &mut Vec<Allow>) {
    let mut rest = comment;
    while let Some(at) = rest.find("lint:allow(") {
        rest = &rest[at + "lint:allow(".len()..];
        let Some(close) = rest.find(')') else { return };
        for rule in rest[..close].split(',') {
            let rule = rule.trim();
            if !rule.is_empty() {
                allows.push(Allow {
                    line,
                    rule: rule.to_string(),
                    own_line,
                });
            }
        }
        rest = &rest[close..];
    }
}

/// Lexes `src` into tokens. Unterminated constructs (string, comment) are
/// tolerated — the remainder of the file is swallowed into the open token,
/// which is the forgiving behaviour a linter wants on mid-edit files.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut out = Lexed::default();

    macro_rules! push {
        ($kind:expr, $line:expr) => {
            out.tokens.push(Token {
                kind: $kind,
                line: $line,
            })
        };
    }

    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            _ if c.is_ascii_whitespace() => i += 1,
            // Line comment (also doc comments).
            b'/' if b.get(i + 1) == Some(&b'/') => {
                let start = i;
                let own_line = out.tokens.last().is_none_or(|t| t.line != line);
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                scan_allows(&src[start..i], line, own_line, &mut out.allows);
            }
            // Nested block comment.
            b'/' if b.get(i + 1) == Some(&b'*') => {
                let start = i;
                let start_line = line;
                let own_line = out.tokens.last().is_none_or(|t| t.line != line);
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                scan_allows(&src[start..i], start_line, own_line, &mut out.allows);
            }
            // Lifetime, loop label, or char literal.
            b'\'' => {
                let start_line = line;
                match b.get(i + 1) {
                    Some(&n) if is_ident_start(n) => {
                        // 'a could be a lifetime ('a) or a char ('a').
                        let mut j = i + 1;
                        while j < b.len() && is_ident_continue(b[j]) {
                            j += 1;
                        }
                        if b.get(j) == Some(&b'\'') {
                            push!(TokenKind::Literal, start_line);
                            i = j + 1;
                        } else {
                            push!(TokenKind::Lifetime, start_line);
                            i = j;
                        }
                    }
                    Some(_) => {
                        // Char literal: scan to the closing quote, honouring
                        // backslash escapes ('\'', '\\', '\u{…}').
                        i += 1;
                        while i < b.len() {
                            match b[i] {
                                b'\\' => i += 2,
                                b'\'' => {
                                    i += 1;
                                    break;
                                }
                                b'\n' => {
                                    line += 1;
                                    i += 1;
                                }
                                _ => i += 1,
                            }
                        }
                        push!(TokenKind::Literal, start_line);
                    }
                    None => i += 1,
                }
            }
            b'"' => {
                let (inner, newlines, next) = scan_string(src, i + 1);
                push!(TokenKind::Str(inner), line);
                line += newlines;
                i = next;
            }
            _ if is_ident_start(c) => {
                let start = i;
                while i < b.len() && is_ident_continue(b[i]) {
                    i += 1;
                }
                let word = &src[start..i];
                // String-literal prefixes and raw identifiers.
                match (word, b.get(i)) {
                    ("r" | "b" | "c" | "br" | "cr", Some(&b'"')) => {
                        let (inner, newlines, next) = scan_string(src, i + 1);
                        push!(TokenKind::Str(inner), line);
                        line += newlines;
                        i = next;
                    }
                    ("r" | "br" | "cr", Some(&b'#')) => {
                        let mut hashes = 0usize;
                        while b.get(i + hashes) == Some(&b'#') {
                            hashes += 1;
                        }
                        if b.get(i + hashes) == Some(&b'"') {
                            let (inner, newlines, next) =
                                scan_raw_string(src, i + hashes + 1, hashes);
                            push!(TokenKind::Str(inner), line);
                            line += newlines;
                            i = next;
                        } else if word == "r" && hashes == 1 {
                            // Raw identifier r#type.
                            let start = i + 1;
                            i += 1;
                            while i < b.len() && is_ident_continue(b[i]) {
                                i += 1;
                            }
                            push!(TokenKind::Ident(src[start..i].to_string()), line);
                        } else {
                            push!(TokenKind::Ident(word.to_string()), line);
                        }
                    }
                    ("b", Some(&b'\'')) => {
                        // Byte char literal b'x'.
                        i += 2;
                        while i < b.len() {
                            match b[i] {
                                b'\\' => i += 2,
                                b'\'' => {
                                    i += 1;
                                    break;
                                }
                                _ => i += 1,
                            }
                        }
                        push!(TokenKind::Literal, line);
                    }
                    _ => push!(TokenKind::Ident(word.to_string()), line),
                }
            }
            _ if c.is_ascii_digit() => {
                // Numeric literal: digits, alnum suffixes/exponents, one
                // fractional point, exponent signs (1_000, 0xFF, 1.5e-3).
                i += 1;
                loop {
                    if i >= b.len() {
                        break;
                    }
                    let d = b[i];
                    let fractional = d == b'.';
                    let exp_sign = (d == b'+' || d == b'-') && matches!(b[i - 1], b'e' | b'E');
                    if is_ident_continue(d) {
                        i += 1;
                    } else if (fractional || exp_sign)
                        && b.get(i + 1).is_some_and(u8::is_ascii_digit)
                    {
                        i += 2;
                    } else {
                        break;
                    }
                }
                push!(TokenKind::Literal, line);
            }
            _ => {
                // Multi-byte UTF-8 outside strings/comments can only be in
                // an (unusual) identifier; treat each byte as punctuation.
                push!(TokenKind::Punct(c as char), line);
                i += 1;
            }
        }
    }
    out
}

/// Scans a normal (escaped) string body starting at `start` (past the
/// opening quote). Returns `(inner_text, newlines_crossed, index_past_end)`.
fn scan_string(src: &str, start: usize) -> (String, u32, usize) {
    let b = src.as_bytes();
    let mut i = start;
    let mut newlines = 0u32;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'"' => {
                return (src[start..i].to_string(), newlines, i + 1);
            }
            b'\n' => {
                newlines += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    (src[start..].to_string(), newlines, b.len())
}

/// Scans a raw string body with a fence of `hashes` `#`s, starting past the
/// opening quote.
fn scan_raw_string(src: &str, start: usize, hashes: usize) -> (String, u32, usize) {
    let b = src.as_bytes();
    let mut i = start;
    let mut newlines = 0u32;
    while i < b.len() {
        if b[i] == b'"'
            && b[i + 1..]
                .iter()
                .take(hashes)
                .filter(|&&h| h == b'#')
                .count()
                == hashes
        {
            return (src[start..i].to_string(), newlines, i + 1 + hashes);
        }
        if b[i] == b'\n' {
            newlines += 1;
        }
        i += 1;
    }
    (src[start..].to_string(), newlines, b.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| t.ident().map(str::to_string))
            .collect()
    }

    #[test]
    fn comments_are_skipped_including_nested_blocks() {
        let src = "a // unwrap() in a comment\n/* outer /* inner unwrap() */ still */ b";
        assert_eq!(idents(src), ["a", "b"]);
    }

    #[test]
    fn strings_do_not_leak_tokens() {
        let src = r##"let s = "unwrap() \" quoted"; let r = r#"panic!(" inside "raw)"#; x"##;
        let ids = idents(src);
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
        assert!(ids.contains(&"x".to_string()));
    }

    #[test]
    fn string_contents_are_captured() {
        let toks = lex(r#"name("pager.page_reads")"#).tokens;
        assert!(toks
            .iter()
            .any(|t| t.kind == TokenKind::Str("pager.page_reads".to_string())));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a u8) { let c = 'a'; let d = '\\''; }").tokens;
        let lifetimes = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .count();
        assert_eq!(lifetimes, 2);
    }

    #[test]
    fn byte_and_raw_strings() {
        let src = r###"let a = b"bytes"; let b2 = br#"raw "bytes""#; let c = b'x'; end"###;
        let ids = idents(src);
        assert!(ids.contains(&"end".to_string()));
        assert!(!ids.contains(&"bytes".to_string()));
    }

    #[test]
    fn raw_identifiers() {
        assert_eq!(idents("let r#type = 1;"), ["let", "type"]);
    }

    #[test]
    fn line_numbers_track_all_multiline_constructs() {
        let src = "a\n/* two\nlines */\n\"str\nstr\"\nb";
        let toks = lex(src).tokens;
        let b_tok = toks.iter().find(|t| t.ident() == Some("b")).unwrap();
        assert_eq!(b_tok.line, 6);
    }

    #[test]
    fn allow_directives_are_extracted() {
        let src = "x(); // lint:allow(no-panic, fs-outside-pager) reason\ny();";
        let lexed = lex(src);
        let rules: Vec<&str> = lexed.allows.iter().map(|a| a.rule.as_str()).collect();
        assert_eq!(rules, ["no-panic", "fs-outside-pager"]);
        assert_eq!(lexed.allows[0].line, 1);
    }

    #[test]
    fn numeric_literals_with_exponents_and_ranges() {
        // `0..n` must not swallow the range dots; 1.5e-3 is one literal.
        let ids = idents("for i in 0..n { let x = 1.5e-3; }");
        assert!(ids.contains(&"n".to_string()));
        let toks = lex("0..n").tokens;
        let dots = toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2);
    }
}
