//! Intra-procedural control-flow graphs over the [`crate::ast`] statement
//! trees, plus dominator / postdominator computation.
//!
//! Each [`FnDef`] body lowers to a graph of basic blocks. A block holds a
//! sequence of [`Action`]s (binds, assignments, evaluations, scope-exit
//! kills) and an optional *branch expression* — the condition (or
//! scrutinee, or fallible initializer) evaluated at the end of the block
//! before control splits. Edges carry a kind ([`EdgeKind::Try`] marks the
//! early-error exit of a `?`) and a kill set (names whose lexical scopes
//! the edge leaves, used by `break`/`continue`).
//!
//! The rules consume two derived facts:
//!
//! * **dominators** — "every path from entry to here passes through X";
//!   this is how untrusted-length proves a bound check precedes an
//!   allocation, and how commit-protocol proves `flush` precedes a header
//!   write.
//! * **success postdominators** — postdominators computed with `Try`
//!   edges removed: "every *non-error* path from here to the function
//!   exit passes through X". This is the right shape for "`sync` follows
//!   the header write": the write's own `?` may exit early, but every
//!   path on which the write *succeeded* must sync.
//!
//! Sets are bit-packed ([`BitSet`]) and solved by the standard iterative
//! fixpoint; function bodies here are tiny, so simplicity wins over the
//! fancy Lengauer–Tarjan machinery.

use crate::ast::{Arm, Block as AstBlock, Expr, FnDef, Stmt};

/// Edge classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EdgeKind {
    Normal,
    /// The error path of a `?` (or other early-error split): taken only
    /// when the fallible expression failed.
    Try,
}

/// One outgoing edge.
#[derive(Debug, Clone)]
pub struct Edge {
    pub to: usize,
    pub kind: EdgeKind,
    /// Names whose scopes this edge exits (non-empty for `break` /
    /// `continue` jumping out of loop-body scopes).
    pub kills: Vec<String>,
}

/// One dataflow-relevant step inside a block, in execution order.
#[derive(Debug)]
pub enum Action {
    /// `let` binding (parameters too, with `init: None`).
    Bind {
        names: Vec<String>,
        /// Pattern was exactly `_`.
        wildcard: bool,
        init: Option<Expr>,
        line: u32,
    },
    /// Assignment; `target` is `Some` for a trackable plain-ident target.
    Assign {
        target: Option<String>,
        compound: bool,
        value: Expr,
        line: u32,
    },
    /// An evaluated expression (statement, return value, loop iterable).
    Eval { expr: Expr, line: u32 },
    /// Lexical scope exit: the names go dead here.
    Kill { names: Vec<String> },
}

/// A basic block.
#[derive(Debug, Default)]
pub struct BasicBlock {
    pub actions: Vec<Action>,
    /// Expression evaluated at the end of the block when it has more than
    /// one successor (an `if`/`while` condition, a `match` scrutinee, a
    /// `let…else` / `?` initializer, a match-arm guard).
    pub branch: Option<Expr>,
    pub succs: Vec<Edge>,
}

/// The control-flow graph of one function.
#[derive(Debug)]
pub struct Cfg {
    pub blocks: Vec<BasicBlock>,
    pub entry: usize,
    pub exit: usize,
}

impl Cfg {
    /// Lowers a parsed function body.
    pub fn build(f: &FnDef) -> Cfg {
        let mut b = Builder {
            blocks: vec![BasicBlock::default(), BasicBlock::default()],
            loops: Vec::new(),
            scopes: Vec::new(),
        };
        let entry = 0usize;
        let exit = 1usize;
        if !f.params.is_empty() {
            b.blocks[entry].actions.push(Action::Bind {
                names: f.params.clone(),
                wildcard: false,
                init: None,
                line: f.line,
            });
        }
        if let Some(end) = b.lower_block(&f.body, entry, exit) {
            b.edge(end, exit, EdgeKind::Normal, Vec::new());
        }
        Cfg {
            blocks: b.blocks,
            entry,
            exit,
        }
    }

    /// Predecessor lists (by any edge kind).
    pub fn preds(&self) -> Vec<Vec<usize>> {
        let mut p = vec![Vec::new(); self.blocks.len()];
        for (i, blk) in self.blocks.iter().enumerate() {
            for e in &blk.succs {
                p[e.to].push(i);
            }
        }
        p
    }

    /// `dom[v]` = blocks that dominate `v` (every entry→`v` path passes
    /// through them; reflexive). Unreachable blocks dominate nothing and
    /// are dominated by everything (the conventional ⊤ solution).
    pub fn dominators(&self) -> Vec<BitSet> {
        let n = self.blocks.len();
        let preds = self.preds();
        let mut dom: Vec<BitSet> = (0..n).map(|_| BitSet::full(n)).collect();
        dom[self.entry] = BitSet::singleton(n, self.entry);
        let mut changed = true;
        while changed {
            changed = false;
            for v in 0..n {
                if v == self.entry {
                    continue;
                }
                let mut next = BitSet::full(n);
                for &p in &preds[v] {
                    next.intersect(&dom[p]);
                }
                if preds[v].is_empty() {
                    next = BitSet::full(n);
                }
                next.insert(v);
                if next != dom[v] {
                    dom[v] = next;
                    changed = true;
                }
            }
        }
        dom
    }

    /// `pdom[v]` = blocks that postdominate `v` **on success paths**: the
    /// computation runs on the graph with [`EdgeKind::Try`] edges removed,
    /// so "every path on which no early error fired passes through them".
    /// Blocks that cannot reach the exit on success edges get the ⊤ set.
    pub fn success_postdominators(&self) -> Vec<BitSet> {
        let n = self.blocks.len();
        // Success-only successor lists.
        let succs: Vec<Vec<usize>> = self
            .blocks
            .iter()
            .map(|b| {
                b.succs
                    .iter()
                    .filter(|e| e.kind == EdgeKind::Normal)
                    .map(|e| e.to)
                    .collect()
            })
            .collect();
        let mut pdom: Vec<BitSet> = (0..n).map(|_| BitSet::full(n)).collect();
        pdom[self.exit] = BitSet::singleton(n, self.exit);
        let mut changed = true;
        while changed {
            changed = false;
            for v in 0..n {
                if v == self.exit {
                    continue;
                }
                let mut next = BitSet::full(n);
                for &s in &succs[v] {
                    next.intersect(&pdom[s]);
                }
                if succs[v].is_empty() {
                    next = BitSet::full(n);
                }
                next.insert(v);
                if next != pdom[v] {
                    pdom[v] = next;
                    changed = true;
                }
            }
        }
        pdom
    }
}

struct LoopCtx {
    continue_to: usize,
    /// `(from_block, kills)` break edges to patch once the after-block
    /// exists.
    breaks: Vec<(usize, Vec<String>)>,
    /// Scope-stack depth at loop entry (break/continue kill everything
    /// bound above it).
    scope_base: usize,
}

struct Builder {
    blocks: Vec<BasicBlock>,
    loops: Vec<LoopCtx>,
    /// Names bound per open lexical scope.
    scopes: Vec<Vec<String>>,
}

impl Builder {
    fn new_block(&mut self) -> usize {
        self.blocks.push(BasicBlock::default());
        self.blocks.len() - 1
    }

    fn edge(&mut self, from: usize, to: usize, kind: EdgeKind, kills: Vec<String>) {
        self.blocks[from].succs.push(Edge { to, kind, kills });
    }

    fn bind_names(&mut self, names: &[String]) {
        if let Some(scope) = self.scopes.last_mut() {
            scope.extend(names.iter().cloned());
        }
    }

    /// Names bound in scopes above `base` (exclusive), i.e. what a jump
    /// back to `base` kills.
    fn kills_above(&self, base: usize) -> Vec<String> {
        self.scopes[base..].iter().flatten().cloned().collect()
    }

    /// Lowers `blk` starting in `cur`; returns the live tail block, or
    /// `None` when every path diverged (return/break/continue).
    fn lower_block(&mut self, blk: &AstBlock, cur: usize, exit: usize) -> Option<usize> {
        self.scopes.push(Vec::new());
        let mut cur = Some(cur);
        for stmt in &blk.stmts {
            let Some(c) = cur else { break };
            cur = self.lower_stmt(stmt, c, exit);
        }
        let bound = self.scopes.pop().unwrap_or_default();
        if let Some(c) = cur {
            if !bound.is_empty() {
                self.blocks[c].actions.push(Action::Kill { names: bound });
            }
        }
        cur
    }

    /// Splits `cur` on a fallible expression: `cur` branches on `expr`,
    /// the `Try` edge goes to `exit`, and the returned fresh block is the
    /// success continuation.
    fn try_split(&mut self, expr: &Expr, cur: usize, exit: usize) -> usize {
        self.blocks[cur].branch = Some(expr.clone());
        let ok = self.new_block();
        self.edge(cur, ok, EdgeKind::Normal, Vec::new());
        self.edge(cur, exit, EdgeKind::Try, Vec::new());
        ok
    }

    fn lower_stmt(&mut self, stmt: &Stmt, cur: usize, exit: usize) -> Option<usize> {
        match stmt {
            Stmt::Let {
                bindings,
                wildcard,
                init,
                else_block,
                line,
            } => {
                self.bind_names(bindings);
                match (init, else_block) {
                    (Some(init), Some(eb)) => {
                        // let-else: branch on the initializer; refutation
                        // runs the else block (which must diverge — if the
                        // parser saw a fall-through tail, route it to exit).
                        self.blocks[cur].branch = Some(init.clone());
                        let ok = self.new_block();
                        let els = self.new_block();
                        self.edge(cur, ok, EdgeKind::Normal, Vec::new());
                        self.edge(cur, els, EdgeKind::Normal, Vec::new());
                        self.blocks[ok].actions.push(Action::Bind {
                            names: bindings.clone(),
                            wildcard: *wildcard,
                            init: Some(init.clone()),
                            line: *line,
                        });
                        if let Some(tail) = self.lower_block(eb, els, exit) {
                            self.edge(tail, exit, EdgeKind::Normal, Vec::new());
                        }
                        Some(ok)
                    }
                    (Some(init), None) if init.has_try => {
                        let ok = self.try_split(init, cur, exit);
                        self.blocks[ok].actions.push(Action::Bind {
                            names: bindings.clone(),
                            wildcard: *wildcard,
                            init: Some(init.clone()),
                            line: *line,
                        });
                        Some(ok)
                    }
                    _ => {
                        self.blocks[cur].actions.push(Action::Bind {
                            names: bindings.clone(),
                            wildcard: *wildcard,
                            init: init.clone(),
                            line: *line,
                        });
                        Some(cur)
                    }
                }
            }
            Stmt::Assign {
                target,
                compound,
                value,
                line,
            } => {
                if value.has_try {
                    let ok = self.try_split(value, cur, exit);
                    self.blocks[ok].actions.push(Action::Assign {
                        target: target.clone(),
                        compound: *compound,
                        value: value.clone(),
                        line: *line,
                    });
                    Some(ok)
                } else {
                    self.blocks[cur].actions.push(Action::Assign {
                        target: target.clone(),
                        compound: *compound,
                        value: value.clone(),
                        line: *line,
                    });
                    Some(cur)
                }
            }
            Stmt::Expr { expr, line } => {
                if expr.has_try {
                    let ok = self.try_split(expr, cur, exit);
                    self.blocks[ok].actions.push(Action::Eval {
                        expr: expr.clone(),
                        line: *line,
                    });
                    Some(ok)
                } else {
                    self.blocks[cur].actions.push(Action::Eval {
                        expr: expr.clone(),
                        line: *line,
                    });
                    Some(cur)
                }
            }
            Stmt::If {
                cond,
                bindings,
                then_block,
                else_block,
                line,
            } => {
                self.blocks[cur].branch = Some(cond.clone());
                let then_b = self.new_block();
                self.edge(cur, then_b, EdgeKind::Normal, Vec::new());
                if !bindings.is_empty() {
                    self.blocks[then_b].actions.push(Action::Bind {
                        names: bindings.clone(),
                        wildcard: false,
                        init: Some(cond.clone()),
                        line: *line,
                    });
                }
                let join = self.new_block();
                if let Some(t) = self.lower_block(then_block, then_b, exit) {
                    self.edge(t, join, EdgeKind::Normal, Vec::new());
                }
                match else_block {
                    Some(eb) => {
                        let else_b = self.new_block();
                        self.edge(cur, else_b, EdgeKind::Normal, Vec::new());
                        if let Some(t) = self.lower_block(eb, else_b, exit) {
                            self.edge(t, join, EdgeKind::Normal, Vec::new());
                        }
                    }
                    None => self.edge(cur, join, EdgeKind::Normal, Vec::new()),
                }
                Some(join)
            }
            Stmt::While {
                cond,
                bindings,
                body,
                line,
            } => {
                let head = self.new_block();
                self.edge(cur, head, EdgeKind::Normal, Vec::new());
                self.blocks[head].branch = Some(cond.clone());
                let body_b = self.new_block();
                self.edge(head, body_b, EdgeKind::Normal, Vec::new());
                if !bindings.is_empty() {
                    self.blocks[body_b].actions.push(Action::Bind {
                        names: bindings.clone(),
                        wildcard: false,
                        init: Some(cond.clone()),
                        line: *line,
                    });
                }
                self.loops.push(LoopCtx {
                    continue_to: head,
                    breaks: Vec::new(),
                    scope_base: self.scopes.len(),
                });
                let tail = self.lower_block(body, body_b, exit);
                let ctx = self.loops.pop().expect("loop ctx");
                if let Some(t) = tail {
                    self.edge(t, head, EdgeKind::Normal, Vec::new());
                }
                let after = self.new_block();
                self.edge(head, after, EdgeKind::Normal, Vec::new());
                for (from, kills) in ctx.breaks {
                    self.edge(from, after, EdgeKind::Normal, kills);
                }
                Some(after)
            }
            Stmt::Loop { body, .. } => {
                let head = self.new_block();
                self.edge(cur, head, EdgeKind::Normal, Vec::new());
                self.loops.push(LoopCtx {
                    continue_to: head,
                    breaks: Vec::new(),
                    scope_base: self.scopes.len(),
                });
                let tail = self.lower_block(body, head, exit);
                let ctx = self.loops.pop().expect("loop ctx");
                if let Some(t) = tail {
                    self.edge(t, head, EdgeKind::Normal, Vec::new());
                }
                let after = self.new_block();
                for (from, kills) in ctx.breaks {
                    self.edge(from, after, EdgeKind::Normal, kills);
                }
                Some(after)
            }
            Stmt::For {
                bindings,
                iter,
                body,
                line,
            } => {
                self.blocks[cur].actions.push(Action::Eval {
                    expr: iter.clone(),
                    line: *line,
                });
                let head = self.new_block();
                self.edge(cur, head, EdgeKind::Normal, Vec::new());
                self.blocks[head].branch = Some(iter.clone());
                let body_b = self.new_block();
                self.edge(head, body_b, EdgeKind::Normal, Vec::new());
                if !bindings.is_empty() {
                    self.blocks[body_b].actions.push(Action::Bind {
                        names: bindings.clone(),
                        wildcard: false,
                        init: Some(iter.clone()),
                        line: *line,
                    });
                }
                self.loops.push(LoopCtx {
                    continue_to: head,
                    breaks: Vec::new(),
                    scope_base: self.scopes.len(),
                });
                let tail = self.lower_block(body, body_b, exit);
                let ctx = self.loops.pop().expect("loop ctx");
                if let Some(t) = tail {
                    self.edge(t, head, EdgeKind::Normal, Vec::new());
                }
                let after = self.new_block();
                self.edge(head, after, EdgeKind::Normal, Vec::new());
                for (from, kills) in ctx.breaks {
                    self.edge(from, after, EdgeKind::Normal, kills);
                }
                Some(after)
            }
            Stmt::Match {
                scrutinee,
                arms,
                line,
            } => {
                self.blocks[cur].branch = Some(scrutinee.clone());
                let join = self.new_block();
                if arms.is_empty() {
                    self.edge(cur, join, EdgeKind::Normal, Vec::new());
                }
                for Arm {
                    bindings,
                    guard,
                    body,
                } in arms
                {
                    let arm_b = self.new_block();
                    self.edge(cur, arm_b, EdgeKind::Normal, Vec::new());
                    if !bindings.is_empty() {
                        self.blocks[arm_b].actions.push(Action::Bind {
                            names: bindings.clone(),
                            wildcard: false,
                            init: Some(scrutinee.clone()),
                            line: *line,
                        });
                    }
                    // A guard makes the arm entry itself a branch: the
                    // guarded body is dominated by the guard expression.
                    let body_entry = match guard {
                        Some(g) => {
                            self.blocks[arm_b].branch = Some(g.clone());
                            let gb = self.new_block();
                            self.edge(arm_b, gb, EdgeKind::Normal, Vec::new());
                            self.edge(arm_b, join, EdgeKind::Normal, Vec::new());
                            gb
                        }
                        None => arm_b,
                    };
                    if let Some(t) = self.lower_block(body, body_entry, exit) {
                        self.edge(t, join, EdgeKind::Normal, Vec::new());
                    }
                }
                Some(join)
            }
            Stmt::Return { value, line } => {
                if let Some(v) = value {
                    self.blocks[cur].actions.push(Action::Eval {
                        expr: v.clone(),
                        line: *line,
                    });
                }
                self.edge(cur, exit, EdgeKind::Normal, Vec::new());
                None
            }
            Stmt::Break { .. } => {
                if let Some(depth) = self.loops.len().checked_sub(1) {
                    let base = self.loops[depth].scope_base;
                    let kills = self.kills_above(base);
                    self.loops[depth].breaks.push((cur, kills));
                } else {
                    self.edge(cur, exit, EdgeKind::Normal, Vec::new());
                }
                None
            }
            Stmt::Continue { .. } => {
                if let Some(ctx) = self.loops.last() {
                    let (to, base) = (ctx.continue_to, ctx.scope_base);
                    let kills = self.kills_above(base);
                    self.edge(cur, to, EdgeKind::Normal, kills);
                } else {
                    self.edge(cur, exit, EdgeKind::Normal, Vec::new());
                }
                None
            }
            Stmt::BlockStmt { block, .. } => self.lower_block(block, cur, exit),
        }
    }
}

/// A fixed-size bit set over block indices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BitSet {
    words: Vec<u64>,
    len: usize,
}

impl BitSet {
    pub fn empty(len: usize) -> BitSet {
        BitSet {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    pub fn full(len: usize) -> BitSet {
        let mut s = BitSet {
            words: vec![!0u64; len.div_ceil(64)],
            len,
        };
        // Mask the tail so Eq works.
        let tail = len % 64;
        if tail != 0 {
            if let Some(w) = s.words.last_mut() {
                *w = (1u64 << tail) - 1;
            }
        }
        s
    }

    pub fn singleton(len: usize, i: usize) -> BitSet {
        let mut s = BitSet::empty(len);
        s.insert(i);
        s
    }

    pub fn insert(&mut self, i: usize) {
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    pub fn contains(&self, i: usize) -> bool {
        i < self.len && self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    pub fn intersect(&mut self, other: &BitSet) {
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
    }

    /// Iterates the contained indices.
    pub fn iter(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(|&i| self.contains(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_fns;
    use crate::lexer::lex;

    fn cfg_of(src: &str) -> Cfg {
        let fns = parse_fns(&lex(src).tokens);
        assert_eq!(fns.len(), 1, "one fn expected in {src:?}");
        Cfg::build(&fns[0])
    }

    /// Finds the block holding an action on `line`.
    fn block_on_line(cfg: &Cfg, line: u32) -> usize {
        for (i, b) in cfg.blocks.iter().enumerate() {
            for a in &b.actions {
                let l = match a {
                    Action::Bind { line, .. }
                    | Action::Assign { line, .. }
                    | Action::Eval { line, .. } => *line,
                    Action::Kill { .. } => 0,
                };
                if l == line {
                    return i;
                }
            }
        }
        panic!("no action on line {line}");
    }

    #[test]
    fn straight_line_code_is_one_block() {
        let cfg = cfg_of("fn f() {\n a();\n b();\n c();\n}");
        // entry holds all three actions, single edge to exit.
        assert_eq!(cfg.blocks[cfg.entry].actions.len(), 3);
        assert_eq!(cfg.blocks[cfg.entry].succs.len(), 1);
    }

    #[test]
    fn if_condition_dominates_then_branch_only() {
        let cfg = cfg_of(
            "fn f(n: usize) {\n\
                 if n < 16 {\n\
                     guarded();\n\
                 }\n\
                 unguarded();\n\
             }",
        );
        let dom = cfg.dominators();
        let then_b = block_on_line(&cfg, 3);
        let after_b = block_on_line(&cfg, 5);
        assert!(dom[then_b].contains(cfg.entry));
        // The entry (which carries the branch) dominates both, but the
        // then-block does not dominate the join.
        assert!(!dom[after_b].contains(then_b));
        // The branch expression is the comparison.
        let br = cfg.blocks[cfg.entry].branch.as_ref().expect("branch");
        assert!(br.has_cmp && br.reads("n"));
    }

    #[test]
    fn let_else_guard_block_dominates_the_tail() {
        let cfg = cfg_of(
            "fn f(data: &[u8], n: usize) -> Option<()> {\n\
                 let Some(head) = data.get(0..n) else { return None; };\n\
                 use_it(head);\n\
                 Some(())\n\
             }",
        );
        let dom = cfg.dominators();
        let tail = block_on_line(&cfg, 3);
        // The entry block branches on the let-else initializer and
        // dominates the success tail.
        assert!(dom[tail].contains(cfg.entry));
        let br = cfg.blocks[cfg.entry].branch.as_ref().expect("branch");
        assert!(br.calls_named("get") && br.reads("n"));
    }

    #[test]
    fn try_edges_are_excluded_from_success_postdominators() {
        let cfg = cfg_of(
            "fn f(p: &mut P) -> Result<(), E> {\n\
                 p.write_direct(slot, buf)?;\n\
                 p.sync()?;\n\
                 Ok(())\n\
             }",
        );
        let write_b = block_on_line(&cfg, 2);
        let sync_b = block_on_line(&cfg, 3);
        let pdom = cfg.success_postdominators();
        // On success paths, the sync block postdominates the write block…
        assert!(pdom[write_b].contains(sync_b));
        // …and a Try edge to exit exists from the write's branch block.
        let has_try = cfg
            .blocks
            .iter()
            .any(|b| b.succs.iter().any(|e| e.kind == EdgeKind::Try));
        assert!(has_try);
    }

    #[test]
    fn loops_cycle_and_breaks_reach_the_after_block() {
        let cfg = cfg_of(
            "fn f() {\n\
                 loop {\n\
                     let g = m.lock();\n\
                     if done() { break; }\n\
                     work(g);\n\
                 }\n\
                 after();\n\
             }",
        );
        let after_b = block_on_line(&cfg, 7);
        // The break edge must carry the loop body's bindings as kills.
        let killed: Vec<&str> = cfg
            .blocks
            .iter()
            .flat_map(|b| b.succs.iter())
            .filter(|e| e.to == after_b)
            .flat_map(|e| e.kills.iter().map(String::as_str))
            .collect();
        assert!(killed.contains(&"g"), "break edge kills: {killed:?}");
    }

    #[test]
    fn match_guard_dominates_its_arm_body() {
        let cfg = cfg_of(
            "fn f(x: Option<usize>) {\n\
                 match x {\n\
                     Some(n) if n < 128 => { alloc(n); }\n\
                     _ => {}\n\
                 }\n\
             }",
        );
        let dom = cfg.dominators();
        let body = block_on_line(&cfg, 3);
        // Some dominating block carries the guard comparison.
        let guarded = dom[body].iter().any(|d| {
            cfg.blocks[d]
                .branch
                .as_ref()
                .is_some_and(|g| g.has_cmp && g.reads("n"))
        });
        assert!(guarded);
    }

    #[test]
    fn scope_exit_emits_kill_actions() {
        let cfg = cfg_of("fn f() {\n { let g = m.lock(); use_it(g); }\n after();\n }");
        let has_kill = cfg.blocks.iter().any(|b| {
            b.actions
                .iter()
                .any(|a| matches!(a, Action::Kill { names } if names.iter().any(|n| n == "g")))
        });
        assert!(has_kill);
    }

    // --- dominance property test -------------------------------------

    /// Tiny deterministic LCG (no external randomness in the test suite).
    struct Lcg(u64);
    impl Lcg {
        fn next(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0 >> 33
        }
        fn below(&mut self, n: usize) -> usize {
            (self.next() % n as u64) as usize
        }
    }

    /// Brute-force dominance: `d` dominates `v` iff `v` is unreachable
    /// from entry when traversal refuses to pass through `d`.
    fn brute_dominates(cfg: &Cfg, d: usize, v: usize) -> bool {
        if d == v {
            return true;
        }
        let mut seen = vec![false; cfg.blocks.len()];
        let mut stack = vec![cfg.entry];
        if cfg.entry == d {
            return reachable(cfg, v);
        }
        seen[cfg.entry] = true;
        while let Some(b) = stack.pop() {
            if b == v {
                return false;
            }
            for e in &cfg.blocks[b].succs {
                if e.to != d && !seen[e.to] {
                    seen[e.to] = true;
                    stack.push(e.to);
                }
            }
        }
        reachable(cfg, v)
    }

    fn reachable(cfg: &Cfg, v: usize) -> bool {
        let mut seen = vec![false; cfg.blocks.len()];
        let mut stack = vec![cfg.entry];
        seen[cfg.entry] = true;
        while let Some(b) = stack.pop() {
            if b == v {
                return true;
            }
            for e in &cfg.blocks[b].succs {
                if !seen[e.to] {
                    seen[e.to] = true;
                    stack.push(e.to);
                }
            }
        }
        false
    }

    #[test]
    fn dominators_match_brute_force_on_random_graphs() {
        let mut rng = Lcg(0x5eed_1234_5678_9abc);
        for _case in 0..200 {
            let n = 2 + rng.below(10);
            let mut cfg = Cfg {
                blocks: (0..n).map(|_| BasicBlock::default()).collect(),
                entry: 0,
                exit: 1,
            };
            // Random edges: each block gets 0–2 successors.
            for b in 0..n {
                for _ in 0..rng.below(3) {
                    let to = rng.below(n);
                    cfg.blocks[b].succs.push(Edge {
                        to,
                        kind: EdgeKind::Normal,
                        kills: Vec::new(),
                    });
                }
            }
            let dom = cfg.dominators();
            for (v, dv) in dom.iter().enumerate() {
                if !reachable(&cfg, v) {
                    continue; // unreachable blocks keep the ⊤ convention
                }
                for d in 0..n {
                    assert_eq!(
                        dv.contains(d),
                        brute_dominates(&cfg, d, v),
                        "dom({d}, {v}) mismatch on case {_case} (n={n})"
                    );
                }
            }
        }
    }
}
