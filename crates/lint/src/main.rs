#![forbid(unsafe_code)]
//! `approxql-lint` — the CLI surface.
//!
//! ```text
//! approxql-lint --workspace [--root DIR] [--baseline FILE] [--update-baseline]
//!               [--format text|json]
//! approxql-lint --list-rules
//! ```
//!
//! `--format json` prints the non-baselined findings as a JSON array on
//! stdout (`rule`, `path`, `line`, `snippet`, `message`; `[]` when clean)
//! and moves the human summary to stderr, so CI can map findings to
//! GitHub annotations without scraping text output.
//!
//! Exit codes are stable (CI and tests rely on them):
//!
//! | code | meaning                                    |
//! |------|--------------------------------------------|
//! | 0    | clean (all findings covered by baseline)   |
//! | 3    | findings not covered by the baseline       |
//! | 2    | usage error                                |
//! | 1    | internal error (I/O, malformed baseline)   |

use approxql_lint::baseline::Baseline;
use approxql_lint::{render_json, rules, Workspace};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: approxql-lint --workspace [--root DIR] [--baseline FILE] \
                     [--update-baseline] [--format text|json]\n       \
                     approxql-lint --list-rules\n";

#[derive(PartialEq, Clone, Copy)]
enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut baseline_path: Option<PathBuf> = None;
    let mut workspace = false;
    let mut update_baseline = false;
    let mut format = Format::Text;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workspace" => workspace = true,
            "--update-baseline" => update_baseline = true,
            "--list-rules" => {
                for r in rules::RULES {
                    println!(
                        "{:<18} {}",
                        r.id,
                        r.summary.split_whitespace().collect::<Vec<_>>().join(" ")
                    );
                }
                return ExitCode::SUCCESS;
            }
            "--root" => match args.next() {
                Some(v) => root = Some(PathBuf::from(v)),
                None => return usage_error("--root needs a value"),
            },
            "--baseline" => match args.next() {
                Some(v) => baseline_path = Some(PathBuf::from(v)),
                None => return usage_error("--baseline needs a value"),
            },
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some(v) => return usage_error(&format!("unknown format {v:?}")),
                None => return usage_error("--format needs a value (text|json)"),
            },
            "--help" | "-h" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument {other:?}")),
        }
    }
    if !workspace {
        return usage_error("--workspace is required");
    }

    let root = root.unwrap_or_else(|| PathBuf::from("."));
    let baseline_path = baseline_path.unwrap_or_else(|| root.join("lint-baseline.txt"));

    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!(
                "approxql-lint: cannot load workspace at {}: {e}",
                root.display()
            );
            return ExitCode::FAILURE;
        }
    };
    let findings = ws.run_rules();

    if update_baseline {
        let body = Baseline::render(&findings);
        if let Err(e) = std::fs::write(&baseline_path, body) {
            eprintln!(
                "approxql-lint: cannot write {}: {e}",
                baseline_path.display()
            );
            return ExitCode::FAILURE;
        }
        println!(
            "wrote {} entries to {} — add a justification for each",
            findings.len(),
            baseline_path.display()
        );
        return ExitCode::SUCCESS;
    }

    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::parse(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("approxql-lint: {}: {e}", baseline_path.display());
                return ExitCode::FAILURE;
            }
        },
        // No baseline file means an empty baseline.
        Err(_) => Baseline::default(),
    };

    let result = baseline.filter(findings);
    for e in &result.unused {
        eprintln!(
            "warning: unused baseline entry (fixed or stale): {} {} {:?}",
            e.rule, e.path, e.key
        );
    }
    if format == Format::Json {
        print!("{}", render_json(&result.new_findings));
    }
    if result.new_findings.is_empty() {
        let summary = format!(
            "approxql-lint: clean ({} files, {} rules, {} grandfathered)",
            ws.files.len(),
            rules::RULES.len(),
            baseline.entries.len() - result.unused.len()
        );
        match format {
            Format::Text => println!("{summary}"),
            Format::Json => eprintln!("{summary}"),
        }
        return ExitCode::SUCCESS;
    }
    if format == Format::Text {
        for f in &result.new_findings {
            println!("{f}");
        }
    }
    let summary = format!(
        "approxql-lint: {} finding(s) not in baseline",
        result.new_findings.len()
    );
    match format {
        Format::Text => println!("{summary}"),
        Format::Json => eprintln!("{summary}"),
    }
    ExitCode::from(3)
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("approxql-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}
