#![forbid(unsafe_code)]
//! `approxql-lint` — machine-checked project invariants.
//!
//! PRs 1–3 established cross-cutting invariants that convention alone
//! cannot protect: exact metric pinning, a panic-free crash-safe storage
//! layer, and an `Arc`-only work-stealing executor. This crate encodes
//! them as a dependency-free static-analysis pass — a small Rust token
//! lexer ([`lexer`]) plus a rule engine ([`rules`]) with per-rule
//! allowlists, inline `lint:allow(rule-id)` suppressions, and a committed
//! baseline file ([`baseline`]) for grandfathered findings.
//!
//! Surfaces: `cargo run -p approxql-lint -- --workspace`, and a CI `lint`
//! job that fails on any finding not in the baseline. Exit codes are
//! stable: `0` clean, `3` findings, `2` usage error, `1` internal error.
//!
//! The rule catalogue lives in [`rules::RULES`]; DESIGN.md §11 documents
//! each rule, the baseline format, and how to suppress findings.

pub mod ast;
pub mod baseline;
pub mod cfg;
pub mod flow;
pub mod lexer;
pub mod rules;

use lexer::{lex, Allow, Token};
use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule identifier (e.g. `no-panic`).
    pub rule: &'static str,
    /// Workspace-relative path, forward slashes.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    pub message: String,
    /// Baseline match key: the offending source line, whitespace-normalized.
    /// Line-content (not line-number) keys keep the baseline stable across
    /// unrelated edits to the same file.
    pub key: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Renders findings as a JSON array (`--format json`): one object per
/// finding with `rule`, `path`, `line`, `snippet` (the whitespace-normalized
/// offending source line) and `message`. The output is a single machine
/// layer for CI annotation scripts — no trailing text, stable key order.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {\"rule\": ");
        json_string(&mut out, f.rule);
        out.push_str(", \"path\": ");
        json_string(&mut out, &f.path);
        out.push_str(&format!(", \"line\": {}", f.line));
        out.push_str(", \"snippet\": ");
        json_string(&mut out, &f.key);
        out.push_str(", \"message\": ");
        json_string(&mut out, &f.message);
        out.push('}');
    }
    if !findings.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

/// Appends `s` as a JSON string literal (quotes, backslashes and control
/// characters escaped; everything else passes through as UTF-8).
fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Collapses runs of whitespace to single spaces (the baseline match key).
pub fn normalize_line(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut in_ws = true; // leading whitespace is dropped
    for c in line.chars() {
        if c.is_whitespace() {
            if !in_ws {
                out.push(' ');
            }
            in_ws = true;
        } else {
            out.push(c);
            in_ws = false;
        }
    }
    while out.ends_with(' ') {
        out.pop();
    }
    out
}

/// One lexed source file plus the derived facts the rules consume.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel_path: String,
    pub tokens: Vec<Token>,
    pub allows: Vec<Allow>,
    /// Raw source lines (1-based access via [`SourceFile::line_text`]).
    pub lines: Vec<String>,
    /// `true` when the whole file is test code (under a `tests/` or
    /// `benches/` directory).
    pub test_path: bool,
    /// Every `fn` item parsed from the token stream ([`ast::parse_fns`]),
    /// the input to the per-function dataflow rules.
    pub fns: Vec<ast::FnDef>,
    /// Line ranges covered by `#[cfg(test)]` items.
    test_ranges: Vec<(u32, u32)>,
}

impl SourceFile {
    /// Builds a source file from raw text.
    pub fn parse(rel_path: String, src: &str) -> SourceFile {
        let lexed = lex(src);
        let test_path = rel_path
            .split('/')
            .any(|c| c == "tests" || c == "benches" || c == "examples");
        let test_ranges = cfg_test_ranges(&lexed.tokens);
        let fns = ast::parse_fns(&lexed.tokens);
        SourceFile {
            rel_path,
            tokens: lexed.tokens,
            allows: lexed.allows,
            lines: src.lines().map(str::to_string).collect(),
            test_path,
            fns,
            test_ranges,
        }
    }

    /// `true` when `line` is test code (test file or `#[cfg(test)]` item).
    pub fn is_test_line(&self, line: u32) -> bool {
        self.test_path
            || self
                .test_ranges
                .iter()
                .any(|&(a, b)| a <= line && line <= b)
    }

    /// The raw text of a 1-based line (empty if out of range).
    pub fn line_text(&self, line: u32) -> &str {
        self.lines
            .get(line.saturating_sub(1) as usize)
            .map_or("", String::as_str)
    }

    /// `true` when findings of `rule` on `line` are suppressed by a
    /// `lint:allow` directive trailing the same line, or standing on its
    /// own on the preceding line.
    pub fn is_allowed(&self, rule: &str, line: u32) -> bool {
        self.allows
            .iter()
            .any(|a| a.rule == rule && (a.line == line || (a.own_line && a.line + 1 == line)))
    }

    /// Emits a finding unless the line is allowed.
    pub fn finding(&self, rule: &'static str, line: u32, message: String, out: &mut Vec<Finding>) {
        if self.is_allowed(rule, line) {
            return;
        }
        out.push(Finding {
            rule,
            path: self.rel_path.clone(),
            line,
            message,
            key: normalize_line(self.line_text(line)),
        });
    }
}

/// Finds the line ranges of `#[cfg(test)]`-gated items by scanning the
/// token stream: after the attribute, subsequent attributes are skipped,
/// then the item's brace block is matched. `cfg` groups that contain a
/// `not` (e.g. `cfg(not(test))`) are ignored.
fn cfg_test_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
            && tokens.get(i + 2).and_then(Token::ident) == Some("cfg")
            && tokens.get(i + 3).is_some_and(|t| t.is_punct('('))
        {
            // Collect the cfg group up to its matching ']'.
            let mut j = i + 4;
            let mut depth = 1usize; // inside the '[' group's '(' … we track both
            let mut has_test = false;
            let mut has_not = false;
            while j < tokens.len() && depth > 0 {
                let t = &tokens[j];
                if t.is_punct('(') || t.is_punct('[') {
                    depth += 1;
                } else if t.is_punct(')') || t.is_punct(']') {
                    depth -= 1;
                } else if t.ident() == Some("test") {
                    has_test = true;
                } else if t.ident() == Some("not") {
                    has_not = true;
                }
                j += 1;
            }
            // j is past the ')' of cfg(…); skip to past the attribute's ']'.
            while j < tokens.len() && !tokens[j].is_punct(']') {
                j += 1;
            }
            j += 1;
            if has_test && !has_not {
                let start_line = tokens[i].line;
                // Skip any further attributes before the item.
                while j < tokens.len() && tokens[j].is_punct('#') {
                    while j < tokens.len() && !tokens[j].is_punct(']') {
                        j += 1;
                    }
                    j += 1;
                }
                // Find the item's opening brace (or a terminating ';' for
                // `mod name;` forms, which gate a separate file).
                while j < tokens.len() && !tokens[j].is_punct('{') && !tokens[j].is_punct(';') {
                    j += 1;
                }
                if j < tokens.len() && tokens[j].is_punct('{') {
                    let mut braces = 1usize;
                    j += 1;
                    while j < tokens.len() && braces > 0 {
                        if tokens[j].is_punct('{') {
                            braces += 1;
                        } else if tokens[j].is_punct('}') {
                            braces -= 1;
                        }
                        j += 1;
                    }
                    let end_line = tokens.get(j.saturating_sub(1)).map_or(u32::MAX, |t| t.line);
                    ranges.push((start_line, end_line));
                }
            }
            i = j;
        } else {
            i += 1;
        }
    }
    ranges
}

/// The loaded workspace: every lexed `.rs` file plus the documentation
/// files the cross-check rules need.
pub struct Workspace {
    pub root: PathBuf,
    pub files: Vec<SourceFile>,
    /// Raw text of `DESIGN.md`, if present.
    pub design_md: Option<String>,
}

impl Workspace {
    /// Loads every `.rs` file under `root`, skipping `target/`, hidden
    /// directories, and `fixtures/` trees (the linter's own test corpus of
    /// seeded violations must not lint the real workspace red).
    pub fn load(root: &Path) -> std::io::Result<Workspace> {
        let mut files = Vec::new();
        walk(root, root, &mut files)?;
        files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
        let design_md = std::fs::read_to_string(root.join("DESIGN.md")).ok();
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
            design_md,
        })
    }

    /// The file with exactly this workspace-relative path.
    pub fn file(&self, rel_path: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel_path == rel_path)
    }

    /// Runs the full rule set. Findings are sorted by path, line, rule.
    pub fn run_rules(&self) -> Vec<Finding> {
        let mut out = Vec::new();
        for rule in rules::RULES {
            (rule.run)(self, &mut out);
        }
        out.sort_by(|a, b| {
            (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule))
        });
        out
    }
}

fn walk(root: &Path, dir: &Path, files: &mut Vec<SourceFile>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            walk(root, &path, files)?;
        } else if name.ends_with(".rs") {
            let src = std::fs::read_to_string(&path)?;
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            files.push(SourceFile::parse(rel, &src));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_collapses_whitespace() {
        assert_eq!(normalize_line("  let  x =\t1;  "), "let x = 1;");
    }

    #[test]
    fn cfg_test_region_detection() {
        let src = "fn live() { x.unwrap(); }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       fn t() { y.unwrap(); }\n\
                   }\n\
                   fn live2() {}\n";
        let f = SourceFile::parse("crates/a/src/lib.rs".into(), src);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(3));
        assert!(f.is_test_line(4));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nmod live { fn f() {} }\nfn g() {}\n";
        let f = SourceFile::parse("crates/a/src/lib.rs".into(), src);
        assert!(!f.is_test_line(2));
    }

    #[test]
    fn test_directories_are_test_code() {
        let f = SourceFile::parse("crates/a/tests/x.rs".into(), "fn t() {}");
        assert!(f.is_test_line(1));
        let e = SourceFile::parse("examples/demo.rs".into(), "fn main() {}");
        assert!(e.is_test_line(1));
    }

    #[test]
    fn allow_covers_same_and_next_line() {
        let src = "// lint:allow(no-panic) justified\nfoo.unwrap();\nbar.unwrap(); // lint:allow(no-panic)\nbaz.unwrap();\n";
        let f = SourceFile::parse("crates/storage/src/x.rs".into(), src);
        assert!(f.is_allowed("no-panic", 2));
        assert!(f.is_allowed("no-panic", 3));
        assert!(!f.is_allowed("no-panic", 4));
        assert!(!f.is_allowed("no-rc", 2));
    }
}
