//! A lightweight Rust item & statement parser over the token stream of
//! [`crate::lexer`] — the structural layer the dataflow rules need.
//!
//! PR 4's rules were token-window pattern matches; the rules added since
//! (untrusted-length, commit-protocol, guard liveness) reason about *paths*
//! through a function, which needs real structure: which statements exist,
//! what they bind, where control branches. This module recovers exactly
//! that much structure and no more:
//!
//! * every `fn` item (at any nesting: modules, impls, traits, nested fns)
//!   becomes a [`FnDef`] with a parsed [`Block`] body;
//! * statements are classified (`let` / `let…else` / `if` / `while` /
//!   `loop` / `for` / `match` / `return` / `break` / `continue` /
//!   assignments / expression statements);
//! * expressions are *summarized*, not fully parsed: an [`Expr`] records
//!   the identifiers it reads, the fields it projects, every call site
//!   (with recursively summarized arguments), whether it contains a
//!   comparison operator and whether it contains `?`. That is sufficient
//!   for taint propagation and guard detection, and it keeps the parser
//!   robust: any token soup inside an expression is swallowed by
//!   depth-matching rather than rejected.
//!
//! The parser is forgiving by design — it lints half-edited files. On a
//! construct it cannot make sense of, it abandons the current function
//! (the rules simply do not see it) instead of erroring or panicking.

use crate::lexer::{Token, TokenKind};

/// One parsed function item.
#[derive(Debug)]
pub struct FnDef {
    pub name: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Parameter binding names (`self` included when present).
    pub params: Vec<String>,
    pub body: Block,
}

/// A `{ … }` statement list.
#[derive(Debug, Default)]
pub struct Block {
    pub stmts: Vec<Stmt>,
}

/// One match arm.
#[derive(Debug)]
pub struct Arm {
    /// Names bound by the arm's pattern.
    pub bindings: Vec<String>,
    pub guard: Option<Expr>,
    pub body: Block,
}

/// A statement, with just enough structure for CFG construction.
#[derive(Debug)]
pub enum Stmt {
    /// `let [mut] pat (= init)? (else { … })? ;`
    Let {
        bindings: Vec<String>,
        /// `true` when the pattern is exactly `_`.
        wildcard: bool,
        init: Option<Expr>,
        else_block: Option<Block>,
        line: u32,
    },
    /// `target = value;` or `target op= value;` — `target` is `Some` only
    /// for a plain identifier target (fields/derefs cannot be tracked).
    Assign {
        target: Option<String>,
        compound: bool,
        value: Expr,
        line: u32,
    },
    /// An expression statement (with or without a trailing `;`).
    Expr {
        expr: Expr,
        line: u32,
    },
    /// `if cond { … } (else …)?` — `bindings` are `if let` pattern names,
    /// bound only inside the then-branch.
    If {
        cond: Expr,
        bindings: Vec<String>,
        then_block: Block,
        else_block: Option<Block>,
        line: u32,
    },
    /// `while cond { … }` (including `while let`).
    While {
        cond: Expr,
        bindings: Vec<String>,
        body: Block,
        line: u32,
    },
    Loop {
        body: Block,
        line: u32,
    },
    For {
        bindings: Vec<String>,
        iter: Expr,
        body: Block,
        line: u32,
    },
    Match {
        scrutinee: Expr,
        arms: Vec<Arm>,
        line: u32,
    },
    Return {
        value: Option<Expr>,
        line: u32,
    },
    Break {
        line: u32,
    },
    Continue {
        line: u32,
    },
    /// A bare (or `unsafe`) block statement.
    BlockStmt {
        block: Block,
        line: u32,
    },
}

/// A summarized call site inside an expression.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The called name (`with_capacity`, `lock`, `flush`, …).
    pub name: String,
    /// The path segment immediately before `::name`, if any
    /// (`Vec` for `Vec::with_capacity`, `u32` for `u32::from_le_bytes`).
    pub qualifier: Option<String>,
    /// `true` for `.name(…)` method calls.
    pub is_method: bool,
    /// The identifier immediately before the `.` of a method call
    /// (`scope` for `scope.map(…)`; `None` for chained receivers).
    pub receiver: Option<String>,
    /// Summaries of the top-level comma-separated arguments.
    pub args: Vec<Expr>,
    pub line: u32,
}

/// A summarized expression: what it reads, what it calls, how it can
/// branch. The token range is kept for snippet extraction.
#[derive(Debug, Clone, Default)]
pub struct Expr {
    pub line: u32,
    /// Root identifiers read (deduplicated, source order).
    pub idents: Vec<String>,
    /// Field names projected anywhere in the expression (`x.count` → `count`).
    pub fields: Vec<String>,
    pub calls: Vec<CallSite>,
    /// Contains a comparison operator (`<ʹ>`-family outside turbofish,
    /// `==`, `!=`).
    pub has_cmp: bool,
    /// Contains the `?` operator.
    pub has_try: bool,
}

impl Expr {
    /// `true` when the expression reads `name` as a root identifier.
    pub fn reads(&self, name: &str) -> bool {
        self.idents.iter().any(|i| i == name)
    }

    /// `true` when any call (at any nesting) is named `name`.
    pub fn calls_named(&self, name: &str) -> bool {
        self.calls.iter().any(|c| c.name == name)
    }
}

/// Words that never count as value reads.
const KEYWORDS: &[&str] = &[
    "as", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern", "false", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "struct", "super", "trait", "true", "type", "unsafe", "use", "where",
    "while", "async", "await", "box", "self", "Self", "union",
];

fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

/// Summarizes the token range `[a, b)` as an [`Expr`].
pub fn summarize_expr(toks: &[Token], a: usize, b: usize) -> Expr {
    let mut e = Expr {
        line: toks.get(a).map_or(0, |t| t.line),
        ..Expr::default()
    };
    let mut turbofish = 0usize;
    let mut i = a;
    while i < b.min(toks.len()) {
        let t = &toks[i];
        match &t.kind {
            TokenKind::Ident(id) => {
                // A single `.` is field/method access; `..` is a range, so
                // an ident after the second range dot is a plain read.
                let after_dot =
                    i > a && toks[i - 1].is_punct('.') && !(i > a + 1 && toks[i - 2].is_punct('.'));
                let after_path =
                    i >= a + 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':');
                // `name(` is a call; so is the turbofish form
                // `name::<T>(…)` (e.g. `sum::<usize>()`).
                let open = if toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
                    Some(i + 1)
                } else if toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
                    && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
                    && toks.get(i + 3).is_some_and(|n| n.is_punct('<'))
                {
                    let mut depth = 0usize;
                    let mut k = i + 3;
                    let mut after = None;
                    while k < b.min(toks.len()) {
                        if toks[k].is_punct('<') {
                            depth += 1;
                        } else if toks[k].is_punct('>') && !toks[k - 1].is_punct('-') {
                            depth -= 1;
                            if depth == 0 {
                                after = Some(k + 1);
                                break;
                            }
                        }
                        k += 1;
                    }
                    after.filter(|&k| toks.get(k).is_some_and(|n| n.is_punct('(')))
                } else {
                    None
                };
                if let (Some(open), false) = (open, is_keyword(id)) {
                    // A call site. Qualifier: `Q::id(`; receiver: `r.id(`.
                    let qualifier = if after_path && i >= a + 3 {
                        toks[i - 3].ident().map(str::to_string)
                    } else {
                        None
                    };
                    let receiver = if after_dot && i >= a + 2 {
                        toks[i - 2].ident().map(str::to_string)
                    } else {
                        None
                    };
                    let close = match_close(toks, open, b);
                    let args = split_args(toks, open + 1, close)
                        .into_iter()
                        .map(|(s, t2)| summarize_expr(toks, s, t2))
                        .collect();
                    e.calls.push(CallSite {
                        name: id.clone(),
                        qualifier,
                        is_method: after_dot,
                        receiver,
                        args,
                        line: t.line,
                    });
                    // Do not skip the call body: nested calls and idents
                    // inside it are collected flat in this expression too.
                } else if after_dot {
                    // Field projection (or method name, handled above).
                    if !e.fields.iter().any(|f| f == id) {
                        e.fields.push(id.clone());
                    }
                } else if !after_path
                    && !is_keyword(id)
                    && !toks.get(i + 1).is_some_and(|n| {
                        n.is_punct(':') && toks.get(i + 2).is_some_and(|m| m.is_punct(':'))
                    })
                    && id
                        .chars()
                        .next()
                        .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
                    && !e.idents.iter().any(|u| u == id)
                {
                    e.idents.push(id.clone());
                }
            }
            TokenKind::Punct('?') => e.has_try = true,
            TokenKind::Punct('<') => {
                if i > a && toks[i - 1].is_punct(':') {
                    turbofish += 1;
                } else if turbofish == 0 {
                    e.has_cmp = true;
                }
            }
            TokenKind::Punct('>') => {
                let arrow = i > a && (toks[i - 1].is_punct('-') || toks[i - 1].is_punct('='));
                if turbofish > 0 {
                    turbofish -= 1;
                } else if !arrow {
                    e.has_cmp = true;
                }
            }
            // `==` / `!=` count; `=` alone (struct update, default
            // generic) does not.
            TokenKind::Punct('=')
                if toks.get(i + 1).is_some_and(|n| n.is_punct('='))
                    || (i > a && toks[i - 1].is_punct('!')) =>
            {
                e.has_cmp = true;
            }
            _ => {}
        }
        i += 1;
    }
    e
}

/// Index just past the group opened at `open` (which must hold `(`, `[`
/// or `{`); saturates at `limit` for unbalanced input.
fn match_close(toks: &[Token], open: usize, limit: usize) -> usize {
    let mut depth = 0usize;
    let mut i = open;
    while i < limit.min(toks.len()) {
        match toks[i].kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            _ => {}
        }
        i += 1;
    }
    limit.min(toks.len())
}

/// Splits `[a, b)` on top-level commas.
fn split_args(toks: &[Token], a: usize, b: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = a;
    let mut i = a;
    while i < b.min(toks.len()) {
        match toks[i].kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                depth = depth.saturating_sub(1)
            }
            TokenKind::Punct(',') if depth == 0 => {
                if i > start {
                    out.push((start, i));
                }
                start = i + 1;
            }
            _ => {}
        }
        i += 1;
    }
    if b.min(toks.len()) > start {
        out.push((start, b.min(toks.len())));
    }
    out
}

/// Extracts binding names from a pattern token range: lowercase/underscore
/// identifiers that are not path segments, keywords, or macro names.
/// (`Some((a, b))` → `a`, `b`; `Posting { pre, .. }` → `pre`.)
fn pattern_bindings(toks: &[Token], a: usize, b: usize) -> (Vec<String>, bool) {
    let mut names = Vec::new();
    let mut only_wildcard = true;
    let mut meaningful = 0usize;
    for i in a..b.min(toks.len()) {
        let Some(id) = toks[i].ident() else {
            continue;
        };
        meaningful += 1;
        if id == "_" {
            continue;
        }
        only_wildcard = false;
        if is_keyword(id) || id == "mut" || id == "ref" {
            continue;
        }
        // Skip path segments (`E::V`), call-ish pattern heads (`Some(`),
        // struct pattern heads (`Posting {`), and type positions after a
        // top-level `:` are already excluded by the caller's range.
        let heads_group = toks
            .get(i + 1)
            .is_some_and(|n| n.is_punct('(') || n.is_punct('{'));
        let in_path = toks.get(i + 1).is_some_and(|n| n.is_punct(':'))
            && toks.get(i + 2).is_some_and(|n| n.is_punct(':'))
            || i > a && toks[i - 1].is_punct(':') && i > a + 1 && toks[i - 2].is_punct(':');
        let uppercase = id.chars().next().is_some_and(|c| c.is_ascii_uppercase());
        if heads_group || in_path || uppercase {
            continue;
        }
        if !names.iter().any(|n| n == id) {
            names.push(id.to_string());
        }
    }
    let wildcard = meaningful == 1 && only_wildcard && names.is_empty();
    (names, wildcard)
}

/// Scans the whole token stream for `fn` items and parses each body.
pub fn parse_fns(toks: &[Token]) -> Vec<FnDef> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].ident() == Some("fn") {
            if let Some((def, next)) = parse_fn(toks, i) {
                out.push(def);
                // Continue scanning *inside* the function too, so nested
                // fns are found — restart just past the `fn` keyword.
                i += 1;
                let _ = next;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Parses one `fn` item starting at the `fn` keyword; returns the def and
/// the index past its body. `None` for bodyless declarations or parse
/// failures (forgiving: the rules skip what the parser cannot shape).
fn parse_fn(toks: &[Token], at: usize) -> Option<(FnDef, usize)> {
    let line = toks[at].line;
    let name = toks.get(at + 1)?.ident()?.to_string();
    let mut i = at + 2;
    // Optional generics: `<` … matching `>` (angle counting; `->` inside
    // `Fn(…) -> R` bounds is skipped as a pair).
    if toks.get(i).is_some_and(|t| t.is_punct('<')) {
        let mut depth = 0i32;
        while i < toks.len() {
            if toks[i].is_punct('<') && !(i > 0 && toks[i - 1].is_punct('<')) {
                depth += 1;
            } else if toks[i].is_punct('>') {
                if i > 0 && toks[i - 1].is_punct('-') {
                    // `->` arrow inside bounds: not a closer.
                } else {
                    depth -= 1;
                    if depth == 0 {
                        i += 1;
                        break;
                    }
                }
            }
            i += 1;
        }
    }
    // Parameters.
    if !toks.get(i).is_some_and(|t| t.is_punct('(')) {
        return None;
    }
    let params_close = match_close(toks, i, toks.len());
    let mut params = Vec::new();
    for (s, t) in split_args(toks, i + 1, params_close) {
        // A param binding is the identifier before the top-level `:`; the
        // bare `self` / `&mut self` param has no colon.
        let mut depth = 0usize;
        let mut colon = None;
        for (k, tok) in toks.iter().enumerate().take(t).skip(s) {
            match tok.kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                    depth = depth.saturating_sub(1)
                }
                TokenKind::Punct(':') if depth == 0 => {
                    colon = Some(k);
                    break;
                }
                _ => {}
            }
        }
        match colon {
            Some(c) => {
                let (names, _) = pattern_bindings(toks, s, c);
                params.extend(names);
            }
            None => {
                if toks[s..t].iter().any(|t| t.ident() == Some("self")) {
                    params.push("self".to_string());
                }
            }
        }
    }
    i = params_close + 1;
    // Skip the return type / where clause up to the body `{` or a `;`.
    let mut depth = 0usize;
    while i < toks.len() {
        match toks[i].kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') => depth = depth.saturating_sub(1),
            TokenKind::Punct('{') if depth == 0 => break,
            TokenKind::Punct(';') if depth == 0 => return None, // declaration
            _ => {}
        }
        i += 1;
    }
    if i >= toks.len() {
        return None;
    }
    let body_close = match_close(toks, i, toks.len());
    let body = parse_block(toks, i + 1, body_close);
    Some((
        FnDef {
            name,
            line,
            params,
            body,
        },
        body_close + 1,
    ))
}

/// Parses the statements of a block interior `[a, b)` (exclusive of the
/// surrounding braces).
fn parse_block(toks: &[Token], a: usize, b: usize) -> Block {
    let mut stmts = Vec::new();
    let mut i = a;
    let b = b.min(toks.len());
    while i < b {
        // Skip attributes and stray semicolons.
        if toks[i].is_punct(';') {
            i += 1;
            continue;
        }
        if toks[i].is_punct('#') {
            let mut j = i + 1;
            if toks.get(j).is_some_and(|t| t.is_punct('!')) {
                j += 1;
            }
            if toks.get(j).is_some_and(|t| t.is_punct('[')) {
                i = match_close(toks, j, b) + 1;
                continue;
            }
            i += 1;
            continue;
        }
        let line = toks[i].line;
        match toks[i].ident() {
            Some("let") => {
                let (stmt, next) = parse_let(toks, i, b);
                stmts.push(stmt);
                i = next;
            }
            Some("if") => {
                let (stmt, next) = parse_if(toks, i, b);
                stmts.push(stmt);
                i = next;
            }
            Some("while") => {
                let (cond, bindings, open) = parse_cond(toks, i + 1, b);
                let close = match_close(toks, open, b);
                stmts.push(Stmt::While {
                    cond,
                    bindings,
                    body: parse_block(toks, open + 1, close),
                    line,
                });
                i = close + 1;
            }
            Some("loop") => {
                let open = i + 1;
                if toks.get(open).is_some_and(|t| t.is_punct('{')) {
                    let close = match_close(toks, open, b);
                    stmts.push(Stmt::Loop {
                        body: parse_block(toks, open + 1, close),
                        line,
                    });
                    i = close + 1;
                } else {
                    i += 1;
                }
            }
            Some("for") => {
                // `for pat in iter { … }` — pattern up to top-level `in`.
                let mut j = i + 1;
                let mut depth = 0usize;
                while j < b {
                    match toks[j].kind {
                        TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
                        TokenKind::Punct(')') | TokenKind::Punct(']') => {
                            depth = depth.saturating_sub(1)
                        }
                        _ => {}
                    }
                    if depth == 0 && toks[j].ident() == Some("in") {
                        break;
                    }
                    j += 1;
                }
                let (bindings, _) = pattern_bindings(toks, i + 1, j);
                let open = scan_to_brace(toks, j + 1, b);
                let iter = summarize_expr(toks, j + 1, open);
                let close = match_close(toks, open, b);
                stmts.push(Stmt::For {
                    bindings,
                    iter,
                    body: parse_block(toks, open + 1, close),
                    line,
                });
                i = close + 1;
            }
            Some("match") => {
                let open = scan_to_brace(toks, i + 1, b);
                let scrutinee = summarize_expr(toks, i + 1, open);
                let close = match_close(toks, open, b);
                let arms = parse_arms(toks, open + 1, close);
                stmts.push(Stmt::Match {
                    scrutinee,
                    arms,
                    line,
                });
                i = close + 1;
            }
            Some("return") => {
                let end = scan_to_semi(toks, i + 1, b);
                let value = (end > i + 1).then(|| summarize_expr(toks, i + 1, end));
                stmts.push(Stmt::Return { value, line });
                i = end + 1;
            }
            Some("break") => {
                let end = scan_to_semi(toks, i + 1, b);
                stmts.push(Stmt::Break { line });
                i = end + 1;
            }
            Some("continue") => {
                let end = scan_to_semi(toks, i + 1, b);
                stmts.push(Stmt::Continue { line });
                i = end + 1;
            }
            Some("unsafe") if toks.get(i + 1).is_some_and(|t| t.is_punct('{')) => {
                let close = match_close(toks, i + 1, b);
                stmts.push(Stmt::BlockStmt {
                    block: parse_block(toks, i + 2, close),
                    line,
                });
                i = close + 1;
            }
            // Nested items are opaque to the enclosing body ([`parse_fns`]
            // scans them independently).
            Some("fn") => match parse_fn(toks, i) {
                Some((_, next)) => i = next,
                None => i = scan_to_semi(toks, i + 1, b) + 1,
            },
            Some("struct") | Some("enum") | Some("impl") | Some("trait") | Some("mod")
            | Some("use") | Some("static") | Some("const") | Some("type") | Some("macro_rules") => {
                // Skip to the item's `;` or its brace block.
                let mut j = i + 1;
                let mut depth = 0usize;
                while j < b {
                    match toks[j].kind {
                        TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
                        TokenKind::Punct(')') | TokenKind::Punct(']') => {
                            depth = depth.saturating_sub(1)
                        }
                        TokenKind::Punct(';') if depth == 0 => {
                            j += 1;
                            break;
                        }
                        TokenKind::Punct('{') if depth == 0 => {
                            j = match_close(toks, j, b) + 1;
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                i = j;
            }
            _ if toks[i].is_punct('{') => {
                let close = match_close(toks, i, b);
                stmts.push(Stmt::BlockStmt {
                    block: parse_block(toks, i + 1, close),
                    line,
                });
                i = close + 1;
            }
            _ => {
                // Assignment or expression statement.
                let end = scan_to_semi(toks, i, b);
                stmts.push(parse_expr_stmt(toks, i, end, line));
                i = end + 1;
            }
        }
    }
    Block { stmts }
}

/// Parses match arms from the interior `[a, b)` of a match body.
fn parse_arms(toks: &[Token], a: usize, b: usize) -> Vec<Arm> {
    let mut arms = Vec::new();
    let mut i = a;
    let b = b.min(toks.len());
    while i < b {
        if toks[i].is_punct(',') || toks[i].is_punct(';') {
            i += 1;
            continue;
        }
        // Pattern (and optional guard) up to the top-level `=>`.
        let mut depth = 0usize;
        let mut guard_at = None;
        let mut arrow = None;
        let mut j = i;
        while j < b {
            match toks[j].kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                    depth = depth.saturating_sub(1)
                }
                TokenKind::Punct('=')
                    if depth == 0 && toks.get(j + 1).is_some_and(|t| t.is_punct('>')) =>
                {
                    arrow = Some(j);
                    break;
                }
                TokenKind::Ident(ref id) if depth == 0 && id == "if" && guard_at.is_none() => {
                    guard_at = Some(j);
                }
                _ => {}
            }
            j += 1;
        }
        let Some(arrow) = arrow else { break };
        let pat_end = guard_at.unwrap_or(arrow);
        let (bindings, _) = pattern_bindings(toks, i, pat_end);
        let guard = guard_at.map(|g| summarize_expr(toks, g + 1, arrow));
        // Body: a block, or an expression up to the top-level `,`.
        let body_start = arrow + 2;
        let (body, next) = if toks.get(body_start).is_some_and(|t| t.is_punct('{')) {
            let close = match_close(toks, body_start, b);
            (parse_block(toks, body_start + 1, close), close + 1)
        } else {
            let mut depth = 0usize;
            let mut k = body_start;
            while k < b {
                match toks[k].kind {
                    TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => {
                        depth += 1
                    }
                    TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                        depth = depth.saturating_sub(1)
                    }
                    TokenKind::Punct(',') if depth == 0 => break,
                    _ => {}
                }
                k += 1;
            }
            let line = toks.get(body_start).map_or(0, |t| t.line);
            let stmt = parse_expr_stmt(toks, body_start, k, line);
            (Block { stmts: vec![stmt] }, k + 1)
        };
        arms.push(Arm {
            bindings,
            guard,
            body,
        });
        i = next;
    }
    arms
}

/// Parses a `let` statement starting at the `let` keyword.
fn parse_let(toks: &[Token], at: usize, b: usize) -> (Stmt, usize) {
    let line = toks[at].line;
    // Pattern runs to the top-level `=` (not `==`) or the `;`/`:` cut.
    let mut depth = 0usize;
    let mut eq = None;
    let mut colon = None;
    let mut j = at + 1;
    while j < b {
        match toks[j].kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                depth = depth.saturating_sub(1)
            }
            TokenKind::Punct(':') if depth == 0 => {
                // A type annotation cut (not a `::` path).
                let path = toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
                    || j > 0 && toks[j - 1].is_punct(':');
                if !path && colon.is_none() {
                    colon = Some(j);
                }
            }
            TokenKind::Punct('=') if depth == 0 => {
                if !toks.get(j + 1).is_some_and(|t| t.is_punct('=')) {
                    eq = Some(j);
                    break;
                }
                j += 1; // skip `==` wholesale
            }
            TokenKind::Punct(';') if depth == 0 => break,
            _ => {}
        }
        j += 1;
    }
    let Some(eq) = eq else {
        // `let x;` — an uninitialized binding.
        let end = scan_to_semi(toks, at + 1, b);
        let (bindings, wildcard) = pattern_bindings(toks, at + 1, colon.unwrap_or(end));
        return (
            Stmt::Let {
                bindings,
                wildcard,
                init: None,
                else_block: None,
                line,
            },
            end + 1,
        );
    };
    let (bindings, wildcard) = pattern_bindings(toks, at + 1, colon.unwrap_or(eq));
    // Init expression runs to the `;` at depth 0, with a possible
    // top-level `else { … }` (let-else) before it.
    let mut depth = 0usize;
    let mut k = eq + 1;
    let mut else_at = None;
    while k < b {
        match toks[k].kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                depth = depth.saturating_sub(1)
            }
            TokenKind::Punct(';') if depth == 0 => break,
            TokenKind::Ident(ref id)
                if depth == 0
                    && id == "else"
                    && toks.get(k + 1).is_some_and(|t| t.is_punct('{')) =>
            {
                else_at = Some(k);
                break;
            }
            _ => {}
        }
        k += 1;
    }
    match else_at {
        Some(e) => {
            let init = summarize_expr(toks, eq + 1, e);
            let close = match_close(toks, e + 1, b);
            let else_block = parse_block(toks, e + 2, close);
            let end = scan_to_semi(toks, close + 1, b);
            (
                Stmt::Let {
                    bindings,
                    wildcard,
                    init: Some(init),
                    else_block: Some(else_block),
                    line,
                },
                end + 1,
            )
        }
        None => (
            Stmt::Let {
                bindings,
                wildcard,
                init: Some(summarize_expr(toks, eq + 1, k)),
                else_block: None,
                line,
            },
            k + 1,
        ),
    }
}

/// Parses an `if` chain starting at the `if` keyword.
fn parse_if(toks: &[Token], at: usize, b: usize) -> (Stmt, usize) {
    let line = toks[at].line;
    let (cond, bindings, open) = parse_cond(toks, at + 1, b);
    let close = match_close(toks, open, b);
    let then_block = parse_block(toks, open + 1, close);
    let mut next = close + 1;
    let mut else_block = None;
    if toks.get(next).is_some_and(|t| t.ident() == Some("else")) {
        if toks.get(next + 1).is_some_and(|t| t.ident() == Some("if")) {
            let (nested, after) = parse_if(toks, next + 1, b);
            else_block = Some(Block {
                stmts: vec![nested],
            });
            next = after;
        } else if toks.get(next + 1).is_some_and(|t| t.is_punct('{')) {
            let eclose = match_close(toks, next + 1, b);
            else_block = Some(parse_block(toks, next + 2, eclose));
            next = eclose + 1;
        }
    }
    (
        Stmt::If {
            cond,
            bindings,
            then_block,
            else_block,
            line,
        },
        next,
    )
}

/// Parses an `if`/`while` condition starting just past the keyword:
/// handles `let pat = scrutinee` forms, returns `(cond_expr, bindings,
/// index_of_body_brace)`. The summarized condition covers the whole
/// region (scrutinee included), which is what guard detection wants.
fn parse_cond(toks: &[Token], a: usize, b: usize) -> (Expr, Vec<String>, usize) {
    let open = scan_to_brace(toks, a, b);
    if toks.get(a).is_some_and(|t| t.ident() == Some("let")) {
        // `if let pat = scrutinee` — bindings from the pattern, condition
        // summarized over the scrutinee.
        let mut depth = 0usize;
        let mut eq = None;
        for j in a + 1..open {
            match toks[j].kind {
                TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
                TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                    depth = depth.saturating_sub(1)
                }
                TokenKind::Punct('=')
                    if depth == 0
                        && !toks.get(j + 1).is_some_and(|t| t.is_punct('='))
                        && !toks[j - 1].is_punct('=')
                        && !toks[j - 1].is_punct('!')
                        && !toks[j - 1].is_punct('<')
                        && !toks[j - 1].is_punct('>') =>
                {
                    eq = Some(j);
                    break;
                }
                _ => {}
            }
        }
        if let Some(eq) = eq {
            let (bindings, _) = pattern_bindings(toks, a + 1, eq);
            return (summarize_expr(toks, eq + 1, open), bindings, open);
        }
    }
    (summarize_expr(toks, a, open), Vec::new(), open)
}

/// Classifies an expression-statement range as an assignment or a plain
/// expression.
fn parse_expr_stmt(toks: &[Token], a: usize, b: usize, line: u32) -> Stmt {
    // Find a top-level `=` that is not part of `==`, `<=`, `>=`, `!=`,
    // `=>`; note compound ops (`+=` …) by their preceding punct.
    let mut depth = 0usize;
    let mut j = a;
    while j < b.min(toks.len()) {
        match toks[j].kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                depth = depth.saturating_sub(1)
            }
            TokenKind::Punct('=') if depth == 0 => {
                let next_eq = toks.get(j + 1).is_some_and(|t| t.is_punct('='));
                let next_gt = toks.get(j + 1).is_some_and(|t| t.is_punct('>'));
                let prev = (j > a).then(|| &toks[j - 1].kind);
                let prev_cmp = matches!(prev, Some(TokenKind::Punct('=' | '!' | '<' | '>')));
                if !next_eq && !next_gt && !prev_cmp {
                    let compound = matches!(
                        prev,
                        Some(TokenKind::Punct(
                            '+' | '-' | '*' | '/' | '%' | '&' | '|' | '^'
                        ))
                    );
                    let target_end = if compound { j - 1 } else { j };
                    let target = if target_end == a + 1 {
                        toks[a]
                            .ident()
                            .filter(|i| !is_keyword(i))
                            .map(str::to_string)
                    } else {
                        None
                    };
                    return Stmt::Assign {
                        target,
                        compound,
                        value: summarize_expr(toks, j + 1, b),
                        line,
                    };
                }
                if next_eq {
                    j += 1;
                }
            }
            _ => {}
        }
        j += 1;
    }
    Stmt::Expr {
        expr: summarize_expr(toks, a, b),
        line,
    }
}

/// Index of the next `;` at depth 0 (or `b`).
fn scan_to_semi(toks: &[Token], a: usize, b: usize) -> usize {
    let mut depth = 0usize;
    let mut i = a;
    while i < b.min(toks.len()) {
        match toks[i].kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') | TokenKind::Punct('{') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') | TokenKind::Punct('}') => {
                depth = depth.saturating_sub(1)
            }
            TokenKind::Punct(';') if depth == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    b.min(toks.len())
}

/// Index of the next `{` at depth 0 (or `b`) — used for `if`/`while`/
/// `for`/`match` heads, where Rust forbids bare struct literals.
fn scan_to_brace(toks: &[Token], a: usize, b: usize) -> usize {
    let mut depth = 0usize;
    let mut i = a;
    while i < b.min(toks.len()) {
        match toks[i].kind {
            TokenKind::Punct('(') | TokenKind::Punct('[') => depth += 1,
            TokenKind::Punct(')') | TokenKind::Punct(']') => depth = depth.saturating_sub(1),
            TokenKind::Punct('{') if depth == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    b.min(toks.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn fns(src: &str) -> Vec<FnDef> {
        parse_fns(&lex(src).tokens)
    }

    fn one(src: &str) -> FnDef {
        let mut all = fns(src);
        assert_eq!(all.len(), 1, "expected one fn in {src:?}");
        all.remove(0)
    }

    #[test]
    fn simple_fn_with_params() {
        let f = one("fn add(a: u32, b: u32) -> u32 { a + b }");
        assert_eq!(f.name, "add");
        assert_eq!(f.params, ["a", "b"]);
        assert_eq!(f.body.stmts.len(), 1);
    }

    #[test]
    fn nested_generics_in_signature_and_body() {
        let f = one(
            "fn g<T: Into<Vec<Vec<u8>>>, F: Fn(u32) -> u32>(x: T, f: F) -> Option<Vec<u8>> {\n\
                 let v: Vec<Vec<u8>> = x.into();\n\
                 let s = v.iter().map(|i| i.len()).sum::<usize>();\n\
                 f(s as u32);\n\
                 None\n\
             }",
        );
        assert_eq!(f.name, "g");
        assert_eq!(f.params, ["x", "f"]);
        assert_eq!(f.body.stmts.len(), 4);
        // The turbofish `::<usize>` must not read as a comparison.
        let Stmt::Let { init: Some(e), .. } = &f.body.stmts[1] else {
            panic!("expected let, got {:?}", f.body.stmts[1]);
        };
        assert!(!e.has_cmp, "{e:?}");
        assert!(e.calls_named("sum"));
    }

    #[test]
    fn let_else_is_a_branching_statement() {
        let f = one("fn h(data: &[u8]) -> Result<(), ()> {\n\
                 let Some(head) = data.get(0..4) else { return Err(()); };\n\
                 consume(head);\n\
                 Ok(())\n\
             }");
        let Stmt::Let {
            bindings,
            init: Some(init),
            else_block: Some(eb),
            ..
        } = &f.body.stmts[0]
        else {
            panic!("expected let-else, got {:?}", f.body.stmts[0]);
        };
        assert_eq!(bindings, &["head"]);
        assert!(init.calls_named("get"));
        assert!(matches!(eb.stmts[0], Stmt::Return { .. }));
    }

    #[test]
    fn match_arms_with_guards_and_bindings() {
        let f = one("fn m(x: Option<u32>) -> u32 {\n\
                 match x {\n\
                     Some(v) if v > 10 => v * 2,\n\
                     Some(v) => { log(v); v }\n\
                     None => 0,\n\
                 }\n\
             }");
        let Stmt::Match {
            arms, scrutinee, ..
        } = &f.body.stmts[0]
        else {
            panic!("expected match, got {:?}", f.body.stmts[0]);
        };
        assert_eq!(arms.len(), 3);
        assert!(scrutinee.reads("x"));
        assert_eq!(arms[0].bindings, ["v"]);
        let g = arms[0].guard.as_ref().expect("guard");
        assert!(g.has_cmp && g.reads("v"));
        assert!(arms[1].guard.is_none());
        assert_eq!(arms[1].body.stmts.len(), 2);
        assert!(arms[2].bindings.is_empty());
    }

    #[test]
    fn raw_strings_and_weird_literals_do_not_derail_statements() {
        let f = one(r###"fn r() {
                 let s = r#"unterminated-looking " quote ( brace { "#;
                 let b = br##"more "# hashes"##;
                 let c = 'x';
                 after(s, b, c);
             }"###);
        assert_eq!(f.body.stmts.len(), 4);
        let Stmt::Expr { expr, .. } = &f.body.stmts[3] else {
            panic!("expected call stmt");
        };
        assert!(expr.calls_named("after"));
    }

    #[test]
    fn if_let_while_let_bind_into_their_bodies() {
        let f = one("fn w(it: I) {\n\
                 if let Some(x) = it.peek() { use_it(x); }\n\
                 while let Some(y) = it.next() { use_it(y); }\n\
             }");
        let Stmt::If { bindings, cond, .. } = &f.body.stmts[0] else {
            panic!("if");
        };
        assert_eq!(bindings, &["x"]);
        assert!(cond.calls_named("peek"));
        let Stmt::While { bindings, .. } = &f.body.stmts[1] else {
            panic!("while");
        };
        assert_eq!(bindings, &["y"]);
    }

    #[test]
    fn call_sites_record_qualifier_method_receiver_and_args() {
        let f = one("fn c() { let n = u32::from_le_bytes(raw) as usize; scope.map(items, work); }");
        let Stmt::Let { init: Some(e), .. } = &f.body.stmts[0] else {
            panic!("let");
        };
        let call = &e.calls[0];
        assert_eq!(call.name, "from_le_bytes");
        assert_eq!(call.qualifier.as_deref(), Some("u32"));
        assert!(!call.is_method);
        assert_eq!(call.args.len(), 1);
        assert!(call.args[0].reads("raw"));
        let Stmt::Expr { expr, .. } = &f.body.stmts[1] else {
            panic!("expr");
        };
        let map = expr.calls.iter().find(|c| c.name == "map").unwrap();
        assert!(map.is_method);
        assert_eq!(map.receiver.as_deref(), Some("scope"));
        assert_eq!(map.args.len(), 2);
    }

    #[test]
    fn assignments_are_classified_with_targets() {
        let f = one("fn a(mut x: u32) { x = decode(); x += step; self.field = x; }");
        let Stmt::Assign {
            target, compound, ..
        } = &f.body.stmts[0]
        else {
            panic!("assign");
        };
        assert_eq!(target.as_deref(), Some("x"));
        assert!(!compound);
        let Stmt::Assign {
            target, compound, ..
        } = &f.body.stmts[1]
        else {
            panic!("compound assign");
        };
        assert_eq!(target.as_deref(), Some("x"));
        assert!(compound);
        let Stmt::Assign { target, .. } = &f.body.stmts[2] else {
            panic!("field assign");
        };
        assert!(target.is_none());
    }

    #[test]
    fn wildcard_let_is_distinguished_from_named_underscore() {
        let f = one("fn d() { let _ = fallible(); let _keep = fallible(); }");
        let Stmt::Let { wildcard, .. } = &f.body.stmts[0] else {
            panic!("let");
        };
        assert!(*wildcard);
        let Stmt::Let {
            wildcard, bindings, ..
        } = &f.body.stmts[1]
        else {
            panic!("let");
        };
        assert!(!*wildcard);
        assert_eq!(bindings, &["_keep"]);
    }

    #[test]
    fn nested_fns_are_parsed_independently() {
        let all = fns("fn outer() { fn inner(q: u8) { q; } outer_call(); }");
        let names: Vec<&str> = all.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, ["outer", "inner"]);
        // The outer body skips the nested item but keeps its own call.
        let outer = &all[0];
        assert!(outer.body.stmts.iter().any(|s| matches!(
            s,
            Stmt::Expr { expr, .. } if expr.calls_named("outer_call")
        )));
    }

    #[test]
    fn comparisons_detected_but_not_arrows_or_turbofish() {
        let f = one("fn e() { if n > data.len() { stop(); } let v = x.sum::<u64>(); }");
        let Stmt::If { cond, .. } = &f.body.stmts[0] else {
            panic!("if");
        };
        assert!(cond.has_cmp);
        let Stmt::Let { init: Some(e), .. } = &f.body.stmts[1] else {
            panic!("let");
        };
        assert!(!e.has_cmp);
    }

    #[test]
    fn try_operator_is_flagged() {
        let f = one("fn t() -> Result<(), E> { let x = fallible()?; infallible(x); Ok(()) }");
        let Stmt::Let { init: Some(e), .. } = &f.body.stmts[0] else {
            panic!("let");
        };
        assert!(e.has_try);
        let Stmt::Expr { expr, .. } = &f.body.stmts[1] else {
            panic!("expr");
        };
        assert!(!expr.has_try);
    }

    #[test]
    fn field_reads_are_recorded_by_name() {
        let f = one("fn f(h: &H) { take(self.entries); use_it(h.count); }");
        let Stmt::Expr { expr, .. } = &f.body.stmts[0] else {
            panic!();
        };
        assert!(expr.fields.iter().any(|x| x == "entries"));
        let Stmt::Expr { expr, .. } = &f.body.stmts[1] else {
            panic!();
        };
        assert!(expr.fields.iter().any(|x| x == "count"));
        assert!(expr.reads("h"));
    }
}
