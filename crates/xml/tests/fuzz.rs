//! Robustness properties of the XML parser: it must never panic, and the
//! writer/parser pair must round-trip arbitrary documents.

use approxql_xml::{parse_document, Document, Element, XmlNode};
use proptest::prelude::*;

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9._-]{0,8}".prop_filter("xml-ish names", |s| !s.is_empty())
}

fn text_strategy() -> impl Strategy<Value = String> {
    // Arbitrary printable text including markup characters and non-ASCII.
    "[ -~éüλ☂]{0,20}"
}

fn element_strategy() -> impl Strategy<Value = Element> {
    let leaf = (name_strategy(), text_strategy()).prop_map(|(name, text)| {
        let mut e = Element::new(name);
        if !text.is_empty() {
            e.children.push(XmlNode::Text(text));
        }
        e
    });
    leaf.prop_recursive(3, 24, 4, |inner| {
        (
            name_strategy(),
            proptest::collection::vec((name_strategy(), text_strategy()), 0..3),
            proptest::collection::vec(
                prop_oneof![
                    inner.prop_map(XmlNode::Element),
                    text_strategy()
                        .prop_filter("non-empty text", |t| !t.is_empty())
                        .prop_map(XmlNode::Text),
                ],
                0..4,
            ),
        )
            .prop_map(|(name, attrs, children)| {
                let mut e = Element::new(name);
                // Attribute names must be unique within an element.
                let mut seen = std::collections::HashSet::new();
                for (k, v) in attrs {
                    if seen.insert(k.clone()) {
                        e.attributes.push((k, v));
                    }
                }
                // Merge adjacent text runs (the parser always does).
                for c in children {
                    match (&c, e.children.last_mut()) {
                        (XmlNode::Text(t), Some(XmlNode::Text(prev))) => prev.push_str(t),
                        _ => e.children.push(c),
                    }
                }
                e
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup must produce `Ok` or `Err`, never a panic.
    #[test]
    fn parser_never_panics(input in "\\PC{0,200}") {
        let _ = parse_document(&input);
    }

    /// Markup-flavored soup (more `<`, `&`, quotes) must not panic either.
    #[test]
    fn parser_never_panics_on_markupish_input(
        input in "[<>&'\"=a-z/! \\-\\[\\]?]{0,120}"
    ) {
        let _ = parse_document(&input);
    }

    /// write ∘ parse is the identity on parsed documents.
    #[test]
    fn write_parse_roundtrip(root in element_strategy()) {
        let doc = Document { root };
        let text = doc.to_xml_string();
        let reparsed = parse_document(&text)
            .unwrap_or_else(|e| panic!("own output failed to parse: {e}\n{text}"));
        prop_assert_eq!(reparsed, doc);
    }

    /// Parsing is deterministic.
    #[test]
    fn parse_is_deterministic(root in element_strategy()) {
        let text = Document { root }.to_xml_string();
        let a = parse_document(&text).unwrap();
        let b = parse_document(&text).unwrap();
        prop_assert_eq!(a, b);
    }
}
