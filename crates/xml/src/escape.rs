//! Entity escaping and unescaping.

use crate::XmlError;

/// Escapes character data for use as element text: `&`, `<`, `>`.
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            other => out.push(other),
        }
    }
    out
}

/// Escapes character data for use inside a double-quoted attribute value.
pub fn escape_attribute(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            other => out.push(other),
        }
    }
    out
}

/// Resolves the five predefined entities and numeric character references.
///
/// `line`/`column` are used for error reporting only.
pub fn unescape(s: &str, line: usize, column: usize) -> Result<String, XmlError> {
    if !s.contains('&') {
        return Ok(s.to_owned());
    }
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        rest = &rest[pos..];
        let end = rest.find(';').ok_or_else(|| {
            XmlError::new(line, column, "unterminated entity reference (missing `;`)")
        })?;
        let name = &rest[1..end];
        match name {
            "amp" => out.push('&'),
            "lt" => out.push('<'),
            "gt" => out.push('>'),
            "quot" => out.push('"'),
            "apos" => out.push('\''),
            _ if name.starts_with("#x") || name.starts_with("#X") => {
                let code = u32::from_str_radix(&name[2..], 16).map_err(|_| {
                    XmlError::new(
                        line,
                        column,
                        format!("invalid character reference `&{name};`"),
                    )
                })?;
                out.push(char::from_u32(code).ok_or_else(|| {
                    XmlError::new(line, column, format!("invalid code point in `&{name};`"))
                })?);
            }
            _ if name.starts_with('#') => {
                let code = name[1..].parse::<u32>().map_err(|_| {
                    XmlError::new(
                        line,
                        column,
                        format!("invalid character reference `&{name};`"),
                    )
                })?;
                out.push(char::from_u32(code).ok_or_else(|| {
                    XmlError::new(line, column, format!("invalid code point in `&{name};`"))
                })?);
            }
            _ => {
                return Err(XmlError::new(
                    line,
                    column,
                    format!("unknown entity `&{name};` (custom entities are not supported)"),
                ))
            }
        }
        rest = &rest[end + 1..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_text_basic() {
        assert_eq!(
            escape_text("a < b && c > d"),
            "a &lt; b &amp;&amp; c &gt; d"
        );
        assert_eq!(escape_text("plain"), "plain");
    }

    #[test]
    fn escape_attribute_quotes() {
        assert_eq!(
            escape_attribute(r#"say "hi" & 'bye'"#),
            "say &quot;hi&quot; &amp; &apos;bye&apos;"
        );
    }

    #[test]
    fn unescape_predefined() {
        assert_eq!(
            unescape("&amp;&lt;&gt;&quot;&apos;", 1, 1).unwrap(),
            "&<>\"'"
        );
    }

    #[test]
    fn unescape_numeric() {
        assert_eq!(unescape("&#65;&#x42;&#x63;", 1, 1).unwrap(), "ABc");
    }

    #[test]
    fn unescape_no_entities_is_borrow_equivalent() {
        assert_eq!(unescape("nothing here", 1, 1).unwrap(), "nothing here");
    }

    #[test]
    fn unescape_rejects_unknown_entity() {
        assert!(unescape("&nbsp;", 1, 1).is_err());
    }

    #[test]
    fn unescape_rejects_unterminated() {
        assert!(unescape("a &amp b", 1, 1).is_err());
    }

    #[test]
    fn unescape_rejects_bad_codepoint() {
        assert!(unescape("&#xD800;", 1, 1).is_err()); // lone surrogate
        assert!(unescape("&#xZZ;", 1, 1).is_err());
    }

    #[test]
    fn roundtrip_text() {
        let raw = "tricky <text> & \"friends\"";
        assert_eq!(unescape(&escape_text(raw), 1, 1).unwrap(), raw);
        assert_eq!(unescape(&escape_attribute(raw), 1, 1).unwrap(), raw);
    }
}
