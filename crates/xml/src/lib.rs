#![forbid(unsafe_code)]
//! A small, dependency-free XML parser and writer.
//!
//! The approXQL data model (Section 4 of the paper) needs exactly three
//! things from XML: element structure, attributes, and character data. This
//! crate provides a pull-based event reader ([`XmlReader`]), a tiny DOM
//! ([`Document`] / [`Element`]), and a serializer, covering the subset of
//! XML 1.0 that data-centric documents use:
//!
//! * elements with attributes (double- or single-quoted),
//! * character data with the five predefined entities and numeric character
//!   references,
//! * CDATA sections, comments, processing instructions,
//! * an optional XML declaration and a (skipped) internal-subset-free
//!   `<!DOCTYPE …>`.
//!
//! Not supported (irrelevant for the reproduction and documented as such):
//! namespace-aware processing (prefixes are kept verbatim in names), DTD
//! internal subsets, and custom entity definitions.

mod dom;
mod error;
mod escape;
mod reader;

pub use dom::{parse_document, Document, Element, XmlNode};
pub use error::XmlError;
pub use escape::{escape_attribute, escape_text, unescape};
pub use reader::{Attribute, XmlEvent, XmlReader};
