//! Parse errors with positional information.

use std::fmt;

/// An XML parse error, carrying the 1-based line and column where the
/// problem was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// 1-based line of the error.
    pub line: usize,
    /// 1-based column of the error (in characters).
    pub column: usize,
    /// Description of what went wrong.
    pub message: String,
}

impl XmlError {
    pub(crate) fn new(line: usize, column: usize, message: impl Into<String>) -> XmlError {
        XmlError {
            line,
            column,
            message: message.into(),
        }
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "XML error at {}:{}: {}",
            self.line, self.column, self.message
        )
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = XmlError::new(3, 14, "unexpected `<`");
        assert_eq!(e.to_string(), "XML error at 3:14: unexpected `<`");
    }
}
