//! A minimal DOM built on top of the event reader, plus a serializer.

use crate::escape::{escape_attribute, escape_text};
use crate::reader::{XmlEvent, XmlReader};
use crate::XmlError;
use std::fmt;

/// A parsed XML document: exactly one root element.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    /// The root element.
    pub root: Element,
}

/// An element node: name, attributes, ordered children.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Element {
    /// Element name as written in the document.
    pub name: String,
    /// Attributes in document order as `(name, value)` pairs.
    pub attributes: Vec<(String, String)>,
    /// Child nodes in document order.
    pub children: Vec<XmlNode>,
}

/// A child of an [`Element`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlNode {
    /// A nested element.
    Element(Element),
    /// A run of character data (entities already resolved).
    Text(String),
}

impl Element {
    /// Creates an element with the given name and no content.
    pub fn new(name: impl Into<String>) -> Element {
        Element {
            name: name.into(),
            ..Element::default()
        }
    }

    /// Adds an attribute (builder style).
    pub fn with_attr(mut self, name: impl Into<String>, value: impl Into<String>) -> Element {
        self.attributes.push((name.into(), value.into()));
        self
    }

    /// Adds a child element (builder style).
    pub fn with_child(mut self, child: Element) -> Element {
        self.children.push(XmlNode::Element(child));
        self
    }

    /// Adds a text child (builder style).
    pub fn with_text(mut self, text: impl Into<String>) -> Element {
        self.children.push(XmlNode::Text(text.into()));
        self
    }

    /// The concatenation of all descendant text, in document order.
    pub fn text_content(&self) -> String {
        let mut out = String::new();
        fn walk(e: &Element, out: &mut String) {
            for c in &e.children {
                match c {
                    XmlNode::Text(t) => out.push_str(t),
                    XmlNode::Element(child) => walk(child, out),
                }
            }
        }
        walk(self, &mut out);
        out
    }

    /// Child elements (skipping text nodes).
    pub fn child_elements(&self) -> impl Iterator<Item = &Element> {
        self.children.iter().filter_map(|c| match c {
            XmlNode::Element(e) => Some(e),
            XmlNode::Text(_) => None,
        })
    }

    /// The first child element with the given name, if any.
    pub fn find_child(&self, name: &str) -> Option<&Element> {
        self.child_elements().find(|e| e.name == name)
    }

    /// Total number of elements in this subtree (including `self`).
    pub fn element_count(&self) -> usize {
        1 + self
            .child_elements()
            .map(Element::element_count)
            .sum::<usize>()
    }

    fn write_into(&self, out: &mut String) {
        out.push('<');
        out.push_str(&self.name);
        for (k, v) in &self.attributes {
            out.push(' ');
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(&escape_attribute(v));
            out.push('"');
        }
        if self.children.is_empty() {
            out.push_str("/>");
            return;
        }
        out.push('>');
        for c in &self.children {
            match c {
                XmlNode::Text(t) => out.push_str(&escape_text(t)),
                XmlNode::Element(e) => e.write_into(out),
            }
        }
        out.push_str("</");
        out.push_str(&self.name);
        out.push('>');
    }
}

impl Document {
    /// Serializes the document (no XML declaration, no pretty-printing).
    /// Parsing the output reproduces the document exactly.
    pub fn to_xml_string(&self) -> String {
        let mut out = String::new();
        self.root.write_into(&mut out);
        out
    }
}

impl fmt::Display for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_xml_string())
    }
}

/// Parses a complete document into a DOM.
///
/// Comments and processing instructions are discarded; adjacent text runs
/// (e.g. text + CDATA) are merged into a single [`XmlNode::Text`].
pub fn parse_document(input: &str) -> Result<Document, XmlError> {
    let mut reader = XmlReader::new(input);
    let mut stack: Vec<Element> = Vec::new();
    let mut root: Option<Element> = None;
    loop {
        match reader.next_event()? {
            XmlEvent::StartElement { name, attributes } => {
                stack.push(Element {
                    name,
                    attributes: attributes.into_iter().map(|a| (a.name, a.value)).collect(),
                    children: Vec::new(),
                });
            }
            XmlEvent::EndElement { .. } => {
                let done = stack.pop().expect("reader guarantees balance");
                match stack.last_mut() {
                    Some(parent) => parent.children.push(XmlNode::Element(done)),
                    None => root = Some(done),
                }
            }
            XmlEvent::Text(t) => {
                if let Some(parent) = stack.last_mut() {
                    if let Some(XmlNode::Text(prev)) = parent.children.last_mut() {
                        prev.push_str(&t);
                    } else {
                        parent.children.push(XmlNode::Text(t));
                    }
                }
            }
            XmlEvent::Comment(_) | XmlEvent::ProcessingInstruction(_) => {}
            XmlEvent::Eof => break,
        }
    }
    Ok(Document {
        root: root.expect("reader guarantees a root element"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_builds_tree() {
        let doc =
            parse_document(r#"<cd id="7"><title>piano concerto</title><track/></cd>"#).unwrap();
        assert_eq!(doc.root.name, "cd");
        assert_eq!(doc.root.attributes, vec![("id".into(), "7".into())]);
        assert_eq!(doc.root.children.len(), 2);
        assert_eq!(
            doc.root.find_child("title").unwrap().text_content(),
            "piano concerto"
        );
        assert!(doc.root.find_child("missing").is_none());
    }

    #[test]
    fn adjacent_text_runs_merge() {
        let doc = parse_document("<a>one <![CDATA[two]]> three</a>").unwrap();
        assert_eq!(doc.root.children.len(), 1);
        assert_eq!(doc.root.text_content(), "one two three");
    }

    #[test]
    fn comments_are_dropped() {
        let doc = parse_document("<a><!-- gone --><b/></a>").unwrap();
        assert_eq!(doc.root.children.len(), 1);
    }

    #[test]
    fn element_count_counts_subtree() {
        let doc = parse_document("<a><b><c/></b><d/></a>").unwrap();
        assert_eq!(doc.root.element_count(), 4);
    }

    #[test]
    fn builder_api() {
        let e = Element::new("cd")
            .with_attr("id", "1")
            .with_child(Element::new("title").with_text("piano"))
            .with_text("tail");
        assert_eq!(e.child_elements().count(), 1);
        assert_eq!(e.text_content(), "pianotail");
    }

    #[test]
    fn serializer_escapes() {
        let doc = Document {
            root: Element::new("a")
                .with_attr("q", "say \"hi\" & bye")
                .with_text("1 < 2 & 3 > 2"),
        };
        let s = doc.to_xml_string();
        assert_eq!(
            s,
            r#"<a q="say &quot;hi&quot; &amp; bye">1 &lt; 2 &amp; 3 &gt; 2</a>"#
        );
    }

    #[test]
    fn roundtrip_parse_write_parse() {
        let src = r#"<catalog><cd year="1901"><title>piano &amp; forte</title><tracks><track>vivace</track></tracks></cd></catalog>"#;
        let doc = parse_document(src).unwrap();
        let out = doc.to_xml_string();
        let doc2 = parse_document(&out).unwrap();
        assert_eq!(doc, doc2);
        assert_eq!(out, src);
    }

    #[test]
    fn empty_elements_serialize_self_closing() {
        let doc = parse_document("<a><b></b></a>").unwrap();
        assert_eq!(doc.to_xml_string(), "<a><b/></a>");
    }

    #[test]
    fn display_matches_to_xml_string() {
        let doc = parse_document("<a/>").unwrap();
        assert_eq!(format!("{doc}"), doc.to_xml_string());
    }
}
