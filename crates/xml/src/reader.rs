//! Pull-based XML event reader.

use crate::escape::unescape;
use crate::XmlError;

/// A single attribute of a start tag.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Attribute {
    /// Attribute name as written (prefixes are not interpreted).
    pub name: String,
    /// Attribute value with entities resolved.
    pub value: String,
}

/// Events produced by [`XmlReader`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlEvent {
    /// `<name attr="…">`. For empty-element tags (`<name/>`) the reader
    /// emits `StartElement` immediately followed by `EndElement`.
    StartElement {
        /// Element name.
        name: String,
        /// Attributes in document order.
        attributes: Vec<Attribute>,
    },
    /// `</name>` (or the synthetic end of an empty-element tag).
    EndElement {
        /// Element name.
        name: String,
    },
    /// Character data with entities resolved; CDATA content is delivered
    /// verbatim. Whitespace-only text between elements is preserved here;
    /// consumers decide whether it is significant.
    Text(String),
    /// `<!-- … -->` (content without the delimiters).
    Comment(String),
    /// `<?target data?>` excluding the XML declaration, which is consumed
    /// silently.
    ProcessingInstruction(String),
    /// End of input; returned exactly once, after the root element closed.
    Eof,
}

/// A streaming XML reader over an in-memory string.
///
/// ```
/// use approxql_xml::{XmlReader, XmlEvent};
/// let mut r = XmlReader::new("<a x='1'>hi</a>");
/// assert!(matches!(r.next_event().unwrap(), XmlEvent::StartElement { .. }));
/// assert_eq!(r.next_event().unwrap(), XmlEvent::Text("hi".into()));
/// assert!(matches!(r.next_event().unwrap(), XmlEvent::EndElement { .. }));
/// assert_eq!(r.next_event().unwrap(), XmlEvent::Eof);
/// ```
pub struct XmlReader<'a> {
    input: &'a str,
    bytes: &'a [u8],
    pos: usize,
    line: usize,
    column: usize,
    /// Stack of currently open element names (well-formedness check).
    open: Vec<String>,
    /// Pending synthetic end tag for `<name/>`.
    pending_end: Option<String>,
    /// Whether the root element has been seen.
    seen_root: bool,
    /// Whether the root element has been closed.
    root_closed: bool,
    finished: bool,
}

impl<'a> XmlReader<'a> {
    /// Creates a reader over `input`.
    pub fn new(input: &'a str) -> XmlReader<'a> {
        XmlReader {
            input,
            bytes: input.as_bytes(),
            pos: 0,
            line: 1,
            column: 1,
            open: Vec::new(),
            pending_end: None,
            seen_root: false,
            root_closed: false,
            finished: false,
        }
    }

    fn err(&self, message: impl Into<String>) -> XmlError {
        XmlError::new(self.line, self.column, message)
    }

    fn advance(&mut self, n: usize) {
        for &b in &self.bytes[self.pos..self.pos + n] {
            if b == b'\n' {
                self.line += 1;
                self.column = 1;
            } else if b & 0xC0 != 0x80 {
                // count characters, not continuation bytes
                self.column += 1;
            }
        }
        self.pos += n;
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn starts_with(&self, s: &str) -> bool {
        self.rest().starts_with(s)
    }

    /// Consumes input up to and including `delim`, returning the part
    /// before the delimiter.
    fn take_until(&mut self, delim: &str, what: &str) -> Result<&'a str, XmlError> {
        match self.rest().find(delim) {
            Some(idx) => {
                let content = &self.rest()[..idx];
                self.advance(idx + delim.len());
                Ok(content)
            }
            None => Err(self.err(format!("unterminated {what} (expected `{delim}`)"))),
        }
    }

    fn skip_whitespace(&mut self) {
        let n = self
            .rest()
            .find(|c: char| !c.is_ascii_whitespace())
            .unwrap_or(self.rest().len());
        self.advance(n);
    }

    fn read_name(&mut self) -> Result<String, XmlError> {
        let rest = self.rest();
        let end = rest
            .char_indices()
            .find(|&(i, c)| {
                if i == 0 {
                    !(c.is_alphabetic() || c == '_' || c == ':')
                } else {
                    !(c.is_alphanumeric() || matches!(c, '_' | ':' | '-' | '.'))
                }
            })
            .map(|(i, _)| i)
            .unwrap_or(rest.len());
        if end == 0 {
            return Err(self.err("expected a name"));
        }
        let name = rest[..end].to_owned();
        self.advance(end);
        Ok(name)
    }

    fn read_attributes(&mut self) -> Result<Vec<Attribute>, XmlError> {
        let mut attrs: Vec<Attribute> = Vec::new();
        loop {
            self.skip_whitespace();
            let rest = self.rest();
            if rest.starts_with('>') || rest.starts_with("/>") || rest.is_empty() {
                break;
            }
            let name = self.read_name()?;
            self.skip_whitespace();
            if !self.starts_with("=") {
                return Err(self.err(format!("attribute `{name}` is missing `=`")));
            }
            self.advance(1);
            self.skip_whitespace();
            let quote = match self.rest().chars().next() {
                Some(q @ ('"' | '\'')) => q,
                _ => return Err(self.err(format!("attribute `{name}` value must be quoted"))),
            };
            self.advance(1);
            let (line, column) = (self.line, self.column);
            let raw = self.take_until(&quote.to_string(), "attribute value")?;
            if raw.contains('<') {
                return Err(XmlError::new(
                    line,
                    column,
                    "`<` is not allowed in attribute values",
                ));
            }
            let value = unescape(raw, line, column)?;
            if attrs.iter().any(|a| a.name == name) {
                return Err(self.err(format!("duplicate attribute `{name}`")));
            }
            attrs.push(Attribute { name, value });
        }
        Ok(attrs)
    }

    /// Returns the next event, or an error on malformed input.
    pub fn next_event(&mut self) -> Result<XmlEvent, XmlError> {
        if let Some(name) = self.pending_end.take() {
            self.open.pop();
            if self.open.is_empty() {
                self.root_closed = true;
            }
            return Ok(XmlEvent::EndElement { name });
        }
        if self.finished {
            return Ok(XmlEvent::Eof);
        }
        loop {
            if self.pos >= self.bytes.len() {
                if !self.open.is_empty() {
                    return Err(self.err(format!(
                        "unexpected end of input: element `{}` is still open",
                        self.open.last().unwrap()
                    )));
                }
                if !self.seen_root {
                    return Err(self.err("document has no root element"));
                }
                self.finished = true;
                return Ok(XmlEvent::Eof);
            }
            if !self.starts_with("<") {
                let (line, column) = (self.line, self.column);
                let idx = self.rest().find('<').unwrap_or(self.rest().len());
                let raw = &self.rest()[..idx];
                self.advance(idx);
                if self.open.is_empty() {
                    if raw.trim().is_empty() {
                        continue; // whitespace outside the root element
                    }
                    return Err(XmlError::new(line, column, "text outside the root element"));
                }
                let text = unescape(raw, line, column)?;
                return Ok(XmlEvent::Text(text));
            }
            // A markup construct.
            if self.starts_with("<!--") {
                self.advance(4);
                let content = self.take_until("-->", "comment")?.to_owned();
                return Ok(XmlEvent::Comment(content));
            }
            if self.starts_with("<![CDATA[") {
                if self.open.is_empty() {
                    return Err(self.err("CDATA outside the root element"));
                }
                self.advance(9);
                let content = self.take_until("]]>", "CDATA section")?.to_owned();
                return Ok(XmlEvent::Text(content));
            }
            if self.starts_with("<?") {
                self.advance(2);
                let content = self.take_until("?>", "processing instruction")?.to_owned();
                if content.trim_start().starts_with("xml") && !self.seen_root {
                    continue; // XML declaration
                }
                return Ok(XmlEvent::ProcessingInstruction(content));
            }
            if self.starts_with("<!DOCTYPE") || self.starts_with("<!doctype") {
                self.advance(9);
                // Skip to the matching `>`; internal subsets in `[...]` are
                // skipped wholesale but not interpreted.
                let mut depth = 0usize;
                loop {
                    match self.rest().chars().next() {
                        None => return Err(self.err("unterminated DOCTYPE")),
                        Some('[') => {
                            depth += 1;
                            self.advance(1);
                        }
                        Some(']') => {
                            depth = depth.saturating_sub(1);
                            self.advance(1);
                        }
                        Some('>') if depth == 0 => {
                            self.advance(1);
                            break;
                        }
                        Some(c) => self.advance(c.len_utf8()),
                    }
                }
                continue;
            }
            if self.starts_with("</") {
                self.advance(2);
                let name = self.read_name()?;
                self.skip_whitespace();
                if !self.starts_with(">") {
                    return Err(self.err(format!("malformed end tag `</{name}`")));
                }
                self.advance(1);
                match self.open.last() {
                    Some(top) if *top == name => {
                        self.open.pop();
                        if self.open.is_empty() {
                            self.root_closed = true;
                        }
                        return Ok(XmlEvent::EndElement { name });
                    }
                    Some(top) => {
                        return Err(self.err(format!(
                            "end tag `</{name}>` does not match open element `{top}`"
                        )))
                    }
                    None => return Err(self.err(format!("unexpected end tag `</{name}>`"))),
                }
            }
            // Start tag.
            self.advance(1);
            if self.root_closed {
                return Err(self.err("only one root element is allowed"));
            }
            let name = self.read_name()?;
            let attributes = self.read_attributes()?;
            self.skip_whitespace();
            if self.starts_with("/>") {
                self.advance(2);
                self.seen_root = true;
                self.open.push(name.clone());
                self.pending_end = Some(name.clone());
                return Ok(XmlEvent::StartElement { name, attributes });
            }
            if self.starts_with(">") {
                self.advance(1);
                self.seen_root = true;
                self.open.push(name.clone());
                return Ok(XmlEvent::StartElement { name, attributes });
            }
            return Err(self.err(format!("malformed start tag `<{name}`")));
        }
    }

    /// Current 1-based (line, column) position, for diagnostics.
    pub fn position(&self) -> (usize, usize) {
        (self.line, self.column)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn events(input: &str) -> Result<Vec<XmlEvent>, XmlError> {
        let mut r = XmlReader::new(input);
        let mut out = Vec::new();
        loop {
            let e = r.next_event()?;
            let eof = e == XmlEvent::Eof;
            out.push(e);
            if eof {
                return Ok(out);
            }
        }
    }

    fn start(name: &str) -> XmlEvent {
        XmlEvent::StartElement {
            name: name.into(),
            attributes: vec![],
        }
    }

    fn end(name: &str) -> XmlEvent {
        XmlEvent::EndElement { name: name.into() }
    }

    #[test]
    fn simple_document() {
        let ev = events("<a><b>text</b></a>").unwrap();
        assert_eq!(
            ev,
            vec![
                start("a"),
                start("b"),
                XmlEvent::Text("text".into()),
                end("b"),
                end("a"),
                XmlEvent::Eof
            ]
        );
    }

    #[test]
    fn empty_element_yields_start_and_end() {
        let ev = events("<a><b/></a>").unwrap();
        assert_eq!(
            ev,
            vec![start("a"), start("b"), end("b"), end("a"), XmlEvent::Eof]
        );
    }

    #[test]
    fn attributes_are_parsed_in_order() {
        let ev = events(r#"<a x="1" y='two &amp; three'/>"#).unwrap();
        match &ev[0] {
            XmlEvent::StartElement { name, attributes } => {
                assert_eq!(name, "a");
                assert_eq!(attributes.len(), 2);
                assert_eq!(attributes[0].name, "x");
                assert_eq!(attributes[0].value, "1");
                assert_eq!(attributes[1].name, "y");
                assert_eq!(attributes[1].value, "two & three");
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn duplicate_attribute_rejected() {
        assert!(events(r#"<a x="1" x="2"/>"#).is_err());
    }

    #[test]
    fn entities_in_text() {
        let ev = events("<a>&lt;hi&gt; &#65;</a>").unwrap();
        assert_eq!(ev[1], XmlEvent::Text("<hi> A".into()));
    }

    #[test]
    fn cdata_is_verbatim() {
        let ev = events("<a><![CDATA[<raw> & stuff]]></a>").unwrap();
        assert_eq!(ev[1], XmlEvent::Text("<raw> & stuff".into()));
    }

    #[test]
    fn comments_and_pis() {
        let ev = events("<?xml version=\"1.0\"?><!-- hello --><a><?pi data?></a>").unwrap();
        assert_eq!(ev[0], XmlEvent::Comment(" hello ".into()));
        assert_eq!(ev[2], XmlEvent::ProcessingInstruction("pi data".into()));
    }

    #[test]
    fn doctype_is_skipped() {
        let ev = events("<!DOCTYPE catalog [<!ELEMENT a (b)>]><a/>").unwrap();
        assert_eq!(ev[0], start("a"));
    }

    #[test]
    fn mismatched_tags_rejected() {
        let err = events("<a><b></a></b>").unwrap_err();
        assert!(err.message.contains("does not match"));
    }

    #[test]
    fn unclosed_root_rejected() {
        assert!(events("<a><b></b>").is_err());
    }

    #[test]
    fn two_roots_rejected() {
        assert!(events("<a/><b/>").is_err());
    }

    #[test]
    fn text_outside_root_rejected() {
        assert!(events("<a/>junk").is_err());
        assert!(events("junk<a/>").is_err());
    }

    #[test]
    fn whitespace_outside_root_ok() {
        assert!(events("  <a/>\n  ").is_ok());
    }

    #[test]
    fn empty_input_rejected() {
        assert!(events("").is_err());
        assert!(events("   ").is_err());
    }

    #[test]
    fn error_position_is_tracked() {
        let err = events("<a>\n  <b></c>\n</a>").unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn unicode_names_and_text() {
        let ev = events("<répertoire>Dvořák — Rusalka</répertoire>").unwrap();
        assert_eq!(ev[0], start("répertoire"));
        assert_eq!(ev[1], XmlEvent::Text("Dvořák — Rusalka".into()));
    }

    #[test]
    fn lt_in_attribute_rejected() {
        assert!(events(r#"<a x="a<b"/>"#).is_err());
    }

    #[test]
    fn eof_is_idempotent() {
        let mut r = XmlReader::new("<a/>");
        while r.next_event().unwrap() != XmlEvent::Eof {}
        assert_eq!(r.next_event().unwrap(), XmlEvent::Eof);
        assert_eq!(r.next_event().unwrap(), XmlEvent::Eof);
    }
}
