//! Robustness properties of the approXQL parser: no panics on arbitrary
//! input, display/parse round-trips, and separation-count consistency.

use approxql_query::{parse_query, Query, QueryNode};
use proptest::prelude::*;

fn name_strategy() -> impl Strategy<Value = String> {
    "[a-z][a-z0-9._-]{0,6}".prop_filter("keywords are not names", |s| s != "and" && s != "or")
}

fn word_strategy() -> impl Strategy<Value = String> {
    "[a-z0-9]{1,8}"
}

fn expr_strategy() -> impl Strategy<Value = QueryNode> {
    let leaf = prop_oneof![
        word_strategy().prop_map(|word| QueryNode::Text { word }),
        name_strategy().prop_map(|label| QueryNode::Name { label, child: None }),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (name_strategy(), inner.clone()).prop_map(|(label, child)| QueryNode::Name {
                label,
                child: Some(Box::new(child)),
            }),
            (inner.clone(), inner.clone())
                .prop_map(|(l, r)| QueryNode::And(Box::new(l), Box::new(r))),
            (inner.clone(), inner).prop_map(|(l, r)| QueryNode::Or(Box::new(l), Box::new(r))),
        ]
    })
}

fn query_strategy() -> impl Strategy<Value = Query> {
    (name_strategy(), proptest::option::of(expr_strategy())).prop_map(|(label, child)| Query {
        root: QueryNode::Name {
            label,
            child: child.map(Box::new),
        },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary input: `Ok` or `Err`, never a panic.
    #[test]
    fn parser_never_panics(input in "\\PC{0,100}") {
        let _ = parse_query(&input);
    }

    /// Query-flavored soup must not panic either.
    #[test]
    fn parser_never_panics_on_queryish_input(
        input in "[a-z\\[\\]()'\" ]{0,80}"
    ) {
        let _ = parse_query(&input);
    }

    /// Rendering a random AST and reparsing preserves the semantics: the
    /// same separated representation and a stable canonical rendering.
    /// (AST equality would be too strict — `a and b and c` reparses
    /// left-associated regardless of the original tree shape, and `and`
    /// is associative.)
    #[test]
    fn display_parse_roundtrip(q in query_strategy()) {
        let rendered = q.to_string();
        let reparsed = parse_query(&rendered)
            .unwrap_or_else(|e| panic!("own rendering failed to parse: {e}\n{rendered}"));
        prop_assert_eq!(reparsed.separate(), q.separate(), "semantics changed: {}", rendered);
        prop_assert_eq!(reparsed.to_string(), rendered, "rendering is not stable");
    }

    /// The separated representation contains at most 2^#or conjuncts, at
    /// least one, and each conjunct is or-free.
    #[test]
    fn separation_counts_are_consistent(q in query_strategy()) {
        let sep = q.separate();
        prop_assert!(!sep.is_empty());
        prop_assert!(sep.len() <= 1usize << q.or_count().min(20));
        // Selector multiset sizes: each conjunct has at most the original
        // number of selectors.
        for c in &sep {
            prop_assert!(c.size() <= q.selector_count());
        }
    }
}
