//! The separated query representation (Section 3).
//!
//! A query containing `or` operators is broken up into a *set* of
//! conjunctive queries — one per combination of `or` alternatives. Each
//! conjunctive query is a labeled, typed tree: name selectors become
//! `struct` nodes, text selectors become `text` leaves, and each `and`
//! expression contributes the children of its enclosing node.
//!
//! The separated representation is exponential in the number of `or`s
//! (a query with *k* `or` operators separates into up to 2^k conjuncts);
//! it exists for the semantics, for the reference evaluator, and for tests.
//! The evaluation algorithms use the linear-size expanded representation
//! instead.

use crate::ast::{Query, QueryNode};
use std::fmt;

/// A node of a conjunctive query tree.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ConjunctiveNode {
    /// An element node with conjunctively required children.
    Struct {
        /// Element name.
        label: String,
        /// Conjunctive children (possibly empty: a bare name selector).
        children: Vec<ConjunctiveNode>,
    },
    /// A single-word text leaf.
    Text {
        /// The normalized word.
        word: String,
    },
}

impl ConjunctiveNode {
    /// The label (element name or word).
    pub fn label(&self) -> &str {
        match self {
            ConjunctiveNode::Struct { label, .. } => label,
            ConjunctiveNode::Text { word } => word,
        }
    }

    /// The children (empty for text leaves and bare struct leaves).
    pub fn children(&self) -> &[ConjunctiveNode] {
        match self {
            ConjunctiveNode::Struct { children, .. } => children,
            ConjunctiveNode::Text { .. } => &[],
        }
    }

    /// `true` for leaves of the query tree (text selectors and childless
    /// name selectors).
    pub fn is_leaf(&self) -> bool {
        self.children().is_empty()
    }

    /// Total number of nodes in this subtree.
    pub fn size(&self) -> usize {
        1 + self
            .children()
            .iter()
            .map(ConjunctiveNode::size)
            .sum::<usize>()
    }

    fn fmt_node(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConjunctiveNode::Text { word } => write!(f, "\"{word}\""),
            ConjunctiveNode::Struct { label, children } => {
                write!(f, "{label}")?;
                if !children.is_empty() {
                    write!(f, "[")?;
                    for (i, c) in children.iter().enumerate() {
                        if i > 0 {
                            write!(f, " and ")?;
                        }
                        c.fmt_node(f)?;
                    }
                    write!(f, "]")?;
                }
                Ok(())
            }
        }
    }
}

/// One conjunctive query of the separated representation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ConjunctiveQuery {
    /// The root; always a [`ConjunctiveNode::Struct`].
    pub root: ConjunctiveNode,
}

impl ConjunctiveQuery {
    /// Number of nodes in the query tree.
    pub fn size(&self) -> usize {
        self.root.size()
    }

    /// Number of leaves (text selectors + childless name selectors).
    pub fn leaf_count(&self) -> usize {
        fn walk(n: &ConjunctiveNode) -> usize {
            if n.is_leaf() {
                1
            } else {
                n.children().iter().map(walk).sum()
            }
        }
        walk(&self.root)
    }
}

impl fmt::Display for ConjunctiveQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.root.fmt_node(f)
    }
}

/// Alternatives for the child list contributed by an expression.
fn separate_expr(node: &QueryNode) -> Vec<Vec<ConjunctiveNode>> {
    match node {
        QueryNode::Text { word } => vec![vec![ConjunctiveNode::Text { word: word.clone() }]],
        QueryNode::Name { .. } => separate_step(node).into_iter().map(|n| vec![n]).collect(),
        QueryNode::And(l, r) => {
            let ls = separate_expr(l);
            let rs = separate_expr(r);
            let mut out = Vec::with_capacity(ls.len() * rs.len());
            for a in &ls {
                for b in &rs {
                    let mut v = a.clone();
                    v.extend(b.iter().cloned());
                    out.push(v);
                }
            }
            out
        }
        QueryNode::Or(l, r) => {
            let mut out = separate_expr(l);
            out.extend(separate_expr(r));
            out
        }
    }
}

/// Alternatives for a single name-selector step.
fn separate_step(node: &QueryNode) -> Vec<ConjunctiveNode> {
    match node {
        QueryNode::Name { label, child } => match child {
            None => vec![ConjunctiveNode::Struct {
                label: label.clone(),
                children: Vec::new(),
            }],
            Some(e) => separate_expr(e)
                .into_iter()
                .map(|children| ConjunctiveNode::Struct {
                    label: label.clone(),
                    children,
                })
                .collect(),
        },
        _ => unreachable!("separate_step is only called on name selectors"),
    }
}

impl Query {
    /// The separated representation: all conjunctive queries obtained by
    /// choosing one alternative per `or` operator, in left-to-right order.
    pub fn separate(&self) -> Vec<ConjunctiveQuery> {
        separate_step(&self.root)
            .into_iter()
            .map(|root| ConjunctiveQuery { root })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use crate::parser::parse_query;

    #[test]
    fn conjunctive_query_stays_single() {
        let q = parse_query(r#"cd[title["piano" and "concerto"]]"#).unwrap();
        let sep = q.separate();
        assert_eq!(sep.len(), 1);
        assert_eq!(sep[0].to_string(), r#"cd[title["piano" and "concerto"]]"#);
        assert_eq!(sep[0].size(), 4);
        assert_eq!(sep[0].leaf_count(), 2);
    }

    #[test]
    fn paper_or_query_separates_into_four() {
        // Section 3's example with two `or` operators -> 2^2 conjuncts.
        let q = parse_query(
            r#"cd[title["piano" and ("concerto" or "sonata")] and (composer["rachmaninov"] or performer["ashkenazy"])]"#,
        )
        .unwrap();
        let sep: Vec<String> = q.separate().iter().map(|c| c.to_string()).collect();
        assert_eq!(
            sep,
            vec![
                r#"cd[title["piano" and "concerto"] and composer["rachmaninov"]]"#,
                r#"cd[title["piano" and "concerto"] and performer["ashkenazy"]]"#,
                r#"cd[title["piano" and "sonata"] and composer["rachmaninov"]]"#,
                r#"cd[title["piano" and "sonata"] and performer["ashkenazy"]]"#,
            ]
        );
    }

    #[test]
    fn nested_or_multiplies() {
        let q = parse_query(r#"a[(b or c) and (d or e or f)]"#).unwrap();
        assert_eq!(q.separate().len(), 6);
    }

    #[test]
    fn or_inside_step_distributes_through_parent() {
        let q = parse_query(r#"a[b[c or d]]"#).unwrap();
        let sep: Vec<String> = q.separate().iter().map(|c| c.to_string()).collect();
        assert_eq!(sep, vec!["a[b[c]]", "a[b[d]]"]);
    }

    #[test]
    fn bare_struct_leaf() {
        let q = parse_query("cd[title and composer]").unwrap();
        let sep = q.separate();
        assert_eq!(sep.len(), 1);
        assert_eq!(sep[0].leaf_count(), 2);
        assert!(sep[0].root.children()[0].is_leaf());
    }

    #[test]
    fn and_order_is_preserved() {
        let q = parse_query(r#"a["x" and b and "y"]"#).unwrap();
        let sep = q.separate();
        let labels: Vec<&str> = sep[0].root.children().iter().map(|c| c.label()).collect();
        assert_eq!(labels, vec!["x", "b", "y"]);
    }
}
