//! The parsed form of an approXQL query.

use std::fmt;

/// A node of the query AST.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryNode {
    /// A name selector, optionally with a containment expression:
    /// `cd` or `cd[…]`.
    Name {
        /// The element name searched for.
        label: String,
        /// The bracketed sub-expression, if any.
        child: Option<Box<QueryNode>>,
    },
    /// A text selector for one normalized word. Multi-word string literals
    /// are split by the parser into `and`-connected single-word selectors
    /// (mirroring the word splitting of the data model, Section 4).
    Text {
        /// The normalized (lowercased) word.
        word: String,
    },
    /// Conjunction of two sub-expressions.
    And(Box<QueryNode>, Box<QueryNode>),
    /// Disjunction of two sub-expressions.
    Or(Box<QueryNode>, Box<QueryNode>),
}

impl QueryNode {
    /// Number of selectors (name + text) in this subexpression.
    pub fn selector_count(&self) -> usize {
        match self {
            QueryNode::Name { child, .. } => 1 + child.as_ref().map_or(0, |c| c.selector_count()),
            QueryNode::Text { .. } => 1,
            QueryNode::And(l, r) | QueryNode::Or(l, r) => l.selector_count() + r.selector_count(),
        }
    }

    /// Number of `or` operators in this subexpression.
    pub fn or_count(&self) -> usize {
        match self {
            QueryNode::Name { child, .. } => child.as_ref().map_or(0, |c| c.or_count()),
            QueryNode::Text { .. } => 0,
            QueryNode::And(l, r) => l.or_count() + r.or_count(),
            QueryNode::Or(l, r) => 1 + l.or_count() + r.or_count(),
        }
    }

    /// Canonicalizes operator shape: nested `and`/`or` chains are flattened
    /// and re-folded **left-associatively**, recursively at every level.
    ///
    /// `Display` already renders `a and (b and c)` and `(a and b) and c`
    /// identically, so two surfaces producing either shape must also compile
    /// to the same plan — normalization is what makes the plan-cache key
    /// (the canonical rendering) honest. The classic parser always builds
    /// left-associated chains, so this is the identity on its output; the
    /// JSON query-IR's n-ary `and`/`or` arrays and XPath-lite's predicate
    /// conjunctions lower through the same fold.
    pub fn normalize(self) -> QueryNode {
        match self {
            QueryNode::Name { label, child } => QueryNode::Name {
                label,
                child: child.map(|c| Box::new(c.normalize())),
            },
            QueryNode::Text { .. } => self,
            QueryNode::And(..) => {
                let mut parts = Vec::new();
                self.flatten_into(true, &mut parts);
                fold_left(parts, QueryNode::And)
            }
            QueryNode::Or(..) => {
                let mut parts = Vec::new();
                self.flatten_into(false, &mut parts);
                fold_left(parts, QueryNode::Or)
            }
        }
    }

    /// Appends the operands of a maximal same-operator chain, normalized,
    /// in left-to-right source order.
    fn flatten_into(self, chain_is_and: bool, out: &mut Vec<QueryNode>) {
        match self {
            QueryNode::And(l, r) if chain_is_and => {
                l.flatten_into(true, out);
                r.flatten_into(true, out);
            }
            QueryNode::Or(l, r) if !chain_is_and => {
                l.flatten_into(false, out);
                r.flatten_into(false, out);
            }
            other => out.push(other.normalize()),
        }
    }

    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, parent_is_and: bool) -> fmt::Result {
        match self {
            QueryNode::Name { label, child } => {
                write!(f, "{label}")?;
                if let Some(c) = child {
                    write!(f, "[")?;
                    c.fmt_prec(f, false)?;
                    write!(f, "]")?;
                }
                Ok(())
            }
            QueryNode::Text { word } => write!(f, "\"{word}\""),
            QueryNode::And(l, r) => {
                l.fmt_prec(f, true)?;
                write!(f, " and ")?;
                r.fmt_prec(f, true)
            }
            QueryNode::Or(l, r) => {
                if parent_is_and {
                    write!(f, "(")?;
                }
                l.fmt_prec(f, false)?;
                write!(f, " or ")?;
                r.fmt_prec(f, false)?;
                if parent_is_and {
                    write!(f, ")")?;
                }
                Ok(())
            }
        }
    }
}

/// Left-folds `parts` (at least one element) with `op`.
fn fold_left(
    parts: Vec<QueryNode>,
    op: fn(Box<QueryNode>, Box<QueryNode>) -> QueryNode,
) -> QueryNode {
    let mut iter = parts.into_iter();
    let first = iter.next().expect("operator chains have operands");
    iter.fold(first, |acc, next| op(Box::new(acc), Box::new(next)))
}

/// A complete approXQL query. The root is always a name selector: the paper
/// gives the query root the role of defining the *scope* of the search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// The root name selector.
    pub root: QueryNode,
}

impl Query {
    /// Root label of the query.
    pub fn root_label(&self) -> &str {
        match &self.root {
            QueryNode::Name { label, .. } => label,
            _ => unreachable!("parser guarantees a name-selector root"),
        }
    }

    /// Number of selectors in the query.
    pub fn selector_count(&self) -> usize {
        self.root.selector_count()
    }

    /// Number of `or` operators in the query.
    pub fn or_count(&self) -> usize {
        self.root.or_count()
    }

    /// Canonical operator shape; see [`QueryNode::normalize`]. Every
    /// surface's output is normalized before compilation, so equivalent
    /// queries share one plan-cache entry regardless of how they were
    /// spelled.
    pub fn normalize(self) -> Query {
        Query {
            root: self.root.normalize(),
        }
    }
}

impl fmt::Display for Query {
    /// Renders a canonical form that reparses to the same AST.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.root.fmt_prec(f, false)
    }
}

impl fmt::Display for QueryNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(label: &str, child: Option<QueryNode>) -> QueryNode {
        QueryNode::Name {
            label: label.into(),
            child: child.map(Box::new),
        }
    }

    fn text(w: &str) -> QueryNode {
        QueryNode::Text { word: w.into() }
    }

    #[test]
    fn selector_count_counts_names_and_texts() {
        let q = name(
            "cd",
            Some(QueryNode::And(
                Box::new(name("title", Some(text("piano")))),
                Box::new(text("rachmaninov")),
            )),
        );
        assert_eq!(q.selector_count(), 4);
        assert_eq!(q.or_count(), 0);
    }

    #[test]
    fn normalize_left_folds_operator_chains() {
        // a and (b and (c and d))  →  ((a and b) and c) and d
        let right = QueryNode::And(
            Box::new(text("a")),
            Box::new(QueryNode::And(
                Box::new(text("b")),
                Box::new(QueryNode::And(Box::new(text("c")), Box::new(text("d")))),
            )),
        );
        let left = QueryNode::And(
            Box::new(QueryNode::And(
                Box::new(QueryNode::And(Box::new(text("a")), Box::new(text("b")))),
                Box::new(text("c")),
            )),
            Box::new(text("d")),
        );
        assert_eq!(right.clone().normalize(), left.clone().normalize());
        assert_eq!(left.clone().normalize(), left);
    }

    #[test]
    fn normalize_recurses_and_keeps_distinct_operators_apart() {
        // x[a or (b or c)] normalizes inside the brackets but an Or chain
        // never merges into an enclosing And chain.
        let q = name(
            "x",
            Some(QueryNode::And(
                Box::new(text("k")),
                Box::new(QueryNode::Or(
                    Box::new(text("a")),
                    Box::new(QueryNode::Or(Box::new(text("b")), Box::new(text("c")))),
                )),
            )),
        );
        let n = q.normalize();
        match &n {
            QueryNode::Name { child: Some(c), .. } => match c.as_ref() {
                QueryNode::And(_, r) => match r.as_ref() {
                    QueryNode::Or(l, _) => assert!(matches!(l.as_ref(), QueryNode::Or(_, _))),
                    other => panic!("expected left-folded Or, got {other:?}"),
                },
                other => panic!("expected And, got {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn or_count_counts_ors() {
        let q = QueryNode::Or(
            Box::new(text("a")),
            Box::new(QueryNode::Or(Box::new(text("b")), Box::new(text("c")))),
        );
        assert_eq!(q.or_count(), 2);
    }
}
