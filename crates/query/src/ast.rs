//! The parsed form of an approXQL query.

use std::fmt;

/// A node of the query AST.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QueryNode {
    /// A name selector, optionally with a containment expression:
    /// `cd` or `cd[…]`.
    Name {
        /// The element name searched for.
        label: String,
        /// The bracketed sub-expression, if any.
        child: Option<Box<QueryNode>>,
    },
    /// A text selector for one normalized word. Multi-word string literals
    /// are split by the parser into `and`-connected single-word selectors
    /// (mirroring the word splitting of the data model, Section 4).
    Text {
        /// The normalized (lowercased) word.
        word: String,
    },
    /// Conjunction of two sub-expressions.
    And(Box<QueryNode>, Box<QueryNode>),
    /// Disjunction of two sub-expressions.
    Or(Box<QueryNode>, Box<QueryNode>),
}

impl QueryNode {
    /// Number of selectors (name + text) in this subexpression.
    pub fn selector_count(&self) -> usize {
        match self {
            QueryNode::Name { child, .. } => 1 + child.as_ref().map_or(0, |c| c.selector_count()),
            QueryNode::Text { .. } => 1,
            QueryNode::And(l, r) | QueryNode::Or(l, r) => l.selector_count() + r.selector_count(),
        }
    }

    /// Number of `or` operators in this subexpression.
    pub fn or_count(&self) -> usize {
        match self {
            QueryNode::Name { child, .. } => child.as_ref().map_or(0, |c| c.or_count()),
            QueryNode::Text { .. } => 0,
            QueryNode::And(l, r) => l.or_count() + r.or_count(),
            QueryNode::Or(l, r) => 1 + l.or_count() + r.or_count(),
        }
    }

    fn fmt_prec(&self, f: &mut fmt::Formatter<'_>, parent_is_and: bool) -> fmt::Result {
        match self {
            QueryNode::Name { label, child } => {
                write!(f, "{label}")?;
                if let Some(c) = child {
                    write!(f, "[")?;
                    c.fmt_prec(f, false)?;
                    write!(f, "]")?;
                }
                Ok(())
            }
            QueryNode::Text { word } => write!(f, "\"{word}\""),
            QueryNode::And(l, r) => {
                l.fmt_prec(f, true)?;
                write!(f, " and ")?;
                r.fmt_prec(f, true)
            }
            QueryNode::Or(l, r) => {
                if parent_is_and {
                    write!(f, "(")?;
                }
                l.fmt_prec(f, false)?;
                write!(f, " or ")?;
                r.fmt_prec(f, false)?;
                if parent_is_and {
                    write!(f, ")")?;
                }
                Ok(())
            }
        }
    }
}

/// A complete approXQL query. The root is always a name selector: the paper
/// gives the query root the role of defining the *scope* of the search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Query {
    /// The root name selector.
    pub root: QueryNode,
}

impl Query {
    /// Root label of the query.
    pub fn root_label(&self) -> &str {
        match &self.root {
            QueryNode::Name { label, .. } => label,
            _ => unreachable!("parser guarantees a name-selector root"),
        }
    }

    /// Number of selectors in the query.
    pub fn selector_count(&self) -> usize {
        self.root.selector_count()
    }

    /// Number of `or` operators in the query.
    pub fn or_count(&self) -> usize {
        self.root.or_count()
    }
}

impl fmt::Display for Query {
    /// Renders a canonical form that reparses to the same AST.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.root.fmt_prec(f, false)
    }
}

impl fmt::Display for QueryNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_prec(f, false)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn name(label: &str, child: Option<QueryNode>) -> QueryNode {
        QueryNode::Name {
            label: label.into(),
            child: child.map(Box::new),
        }
    }

    fn text(w: &str) -> QueryNode {
        QueryNode::Text { word: w.into() }
    }

    #[test]
    fn selector_count_counts_names_and_texts() {
        let q = name(
            "cd",
            Some(QueryNode::And(
                Box::new(name("title", Some(text("piano")))),
                Box::new(text("rachmaninov")),
            )),
        );
        assert_eq!(q.selector_count(), 4);
        assert_eq!(q.or_count(), 0);
    }

    #[test]
    fn or_count_counts_ors() {
        let q = QueryNode::Or(
            Box::new(text("a")),
            Box::new(QueryNode::Or(Box::new(text("b")), Box::new(text("c")))),
        );
        assert_eq!(q.or_count(), 2);
    }
}
