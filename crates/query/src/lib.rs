#![forbid(unsafe_code)]
//! The approXQL query language (Section 3 of the paper) and its
//! representations.
//!
//! The syntactical subset used throughout the paper consists of
//!
//! 1. **name selectors** (`cd`, `title`, …),
//! 2. **text selectors** (`"piano"`, `'concerto'`),
//! 3. the **containment operator** `[…]`,
//! 4. the **Boolean operators** `and` and `or` (with `and` binding tighter,
//!    parentheses for grouping).
//!
//! Example: `cd[title["piano" and "concerto"] and composer["rachmaninov"]]`.
//!
//! Three representations are provided:
//!
//! * the parsed **AST** ([`Query`] / [`QueryNode`]),
//! * the **separated representation** ([`ConjunctiveQuery`]): every `or`
//!   expanded away, one labeled typed tree per conjunct (Section 3),
//! * the **expanded representation** ([`expand::ExpandedQuery`]): a DAG of
//!   `node` / `leaf` / `and` / `or` representation-type nodes that encodes
//!   *all* semi-transformed queries — every combination of deletions and
//!   renamings — in linear space (Section 6.1).

mod ast;
mod conjunctive;
pub mod expand;
mod lexer;
mod parser;

pub use ast::{Query, QueryNode};
pub use conjunctive::{ConjunctiveNode, ConjunctiveQuery};
pub use parser::{parse_query, ParseError};
