#![forbid(unsafe_code)]
//! The approXQL query language (Section 3 of the paper) and its
//! representations.
//!
//! The syntactical subset used throughout the paper consists of
//!
//! 1. **name selectors** (`cd`, `title`, …),
//! 2. **text selectors** (`"piano"`, `'concerto'`),
//! 3. the **containment operator** `[…]`,
//! 4. the **Boolean operators** `and` and `or` (with `and` binding tighter,
//!    parentheses for grouping).
//!
//! Example: `cd[title["piano" and "concerto"] and composer["rachmaninov"]]`.
//!
//! That grammar is the **classic surface** — one of three concrete
//! syntaxes accepted by the multi-surface front-end ([`surface`]):
//!
//! * **classic** — the hand-written syntax above ([`parse_query`]),
//! * **json** — a versioned machine-friendly JSON query-IR,
//!   `{"v":1,"query":…}` ([`json_ir`], [`parse_json_query`]),
//! * **xpath** — an XPath-lite navigational syntax, `/cd//title["piano"]`
//!   ([`xpath`], [`parse_xpath_query`]).
//!
//! All three parse to the same [`Query`] AST, are normalized
//! ([`Query::normalize`]) and lower through one shared path to the
//! physical plan, so equivalent queries produce byte-identical plans and
//! share a plan-cache entry regardless of surface. Any accepted query
//! renders canonically into every surface ([`Surface::render`],
//! [`Query::to_json_ir`], [`Query::to_xpath`]).
//!
//! Three representations are provided:
//!
//! * the parsed **AST** ([`Query`] / [`QueryNode`]),
//! * the **separated representation** ([`ConjunctiveQuery`]): every `or`
//!   expanded away, one labeled typed tree per conjunct (Section 3),
//! * the **expanded representation** ([`expand::ExpandedQuery`]): a DAG of
//!   `node` / `leaf` / `and` / `or` representation-type nodes that encodes
//!   *all* semi-transformed queries — every combination of deletions and
//!   renamings — in linear space (Section 6.1).

mod ast;
mod conjunctive;
pub mod expand;
pub mod json;
pub mod json_ir;
mod lexer;
mod parser;
pub mod surface;
pub mod xpath;

pub use ast::{Query, QueryNode};
pub use conjunctive::{ConjunctiveNode, ConjunctiveQuery};
pub use json_ir::{parse_json_query, JSON_IR_VERSION};
pub use parser::{parse_query, ParseError};
pub use surface::{QueryInput, Surface};
pub use xpath::parse_xpath_query;
