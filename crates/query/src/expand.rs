//! The expanded query representation (Section 6.1).
//!
//! The expanded representation encodes *all* semi-transformed queries — the
//! queries derivable from the separated representation by deletions and
//! renamings, but no insertions — in a DAG of linear size:
//!
//! * a **`node`** represents an inner name selector together with all its
//!   allowed renamings,
//! * a **`leaf`** represents a leaf selector (text, or a childless name
//!   selector) with its renamings and its delete cost,
//! * an **`and`** represents an `and` operator,
//! * an **`or`** either represents a user-written `or` operator
//!   (`edgecost = 0`), or encodes the *deletion* of an inner node: its left
//!   edge leads to the deletable node, its right edge bridges the node and
//!   is annotated with the node's delete cost.
//!
//! The bridged subtree is shared between the two branches of a deletion
//! `or` — the structure is a DAG, which is what lets the evaluation
//! algorithm (`approxql-core`) memoize shared subtree evaluations (the
//! paper's dynamic-programming remark in Section 6.5).

use crate::ast::{Query, QueryNode};
use approxql_cost::{Cost, CostModel, NodeType};

/// Representation types of Section 6.1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RepType {
    /// Inner name selector.
    Node,
    /// Leaf selector.
    Leaf,
    /// `and` operator.
    And,
    /// `or` operator or encoded deletion.
    Or,
}

/// A node of the expanded representation DAG.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExpandedNode {
    /// An inner name selector with its renaming alternatives.
    Node {
        /// Original label.
        label: String,
        /// Node type (always [`NodeType::Struct`] for inner nodes).
        ty: NodeType,
        /// Allowed renamings `(label, cost)`, sorted by label.
        renamings: Vec<(String, Cost)>,
        /// The child expression.
        child: usize,
    },
    /// A leaf selector.
    Leaf {
        /// Original label (a word for text selectors, a name otherwise).
        label: String,
        /// Node type.
        ty: NodeType,
        /// Allowed renamings `(label, cost)`, sorted by label.
        renamings: Vec<(String, Cost)>,
        /// Cost of deleting this leaf ([`Cost::INFINITY`] if forbidden).
        delcost: Cost,
    },
    /// Conjunction of two subexpressions.
    And {
        /// Left operand.
        left: usize,
        /// Right operand.
        right: usize,
    },
    /// Disjunction; `edgecost` annotates the right edge (0 for user `or`s,
    /// the delete cost for encoded deletions).
    Or {
        /// Left operand (for deletions: the deletable node).
        left: usize,
        /// Right operand (for deletions: the bridged child expression).
        right: usize,
        /// Cost added when the right branch is taken.
        edgecost: Cost,
    },
}

impl ExpandedNode {
    /// The representation type of this node.
    pub fn rep_type(&self) -> RepType {
        match self {
            ExpandedNode::Node { .. } => RepType::Node,
            ExpandedNode::Leaf { .. } => RepType::Leaf,
            ExpandedNode::And { .. } => RepType::And,
            ExpandedNode::Or { .. } => RepType::Or,
        }
    }
}

/// The expanded representation of a query under a fixed cost model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExpandedQuery {
    /// Arena of DAG nodes; children refer to earlier indices.
    pub nodes: Vec<ExpandedNode>,
    /// Index of the root (always the last node, a `Node` or `Leaf`).
    pub root: usize,
    /// Arena indices of all `Leaf` nodes (the original query leaves).
    pub leaves: Vec<usize>,
}

impl ExpandedQuery {
    /// Builds the expanded representation of `query` with deletions and
    /// renamings allowed by `costs`.
    ///
    /// Deletion `or` wrappers are only created for inner nodes whose delete
    /// cost is finite (an infinite-cost branch can never contribute a
    /// result, so eliding it is a pure optimization).
    pub fn build(query: &Query, costs: &CostModel) -> ExpandedQuery {
        let mut b = Builder {
            costs,
            nodes: Vec::new(),
            leaves: Vec::new(),
        };
        let root = b.step(&query.root, true);
        ExpandedQuery {
            nodes: b.nodes,
            root,
            leaves: b.leaves,
        }
    }

    /// Number of arena nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the arena is empty (never the case for built queries).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of original query leaves.
    pub fn leaf_count(&self) -> usize {
        self.leaves.len()
    }

    /// The number of *derivations* of semi-transformed queries encoded in
    /// this representation: the number of distinct root-to-leaves path
    /// combinations times label choices. This is an upper bound on the
    /// number of distinct semi-transformed queries (different derivations
    /// can yield syntactically equal queries).
    pub fn derivation_count(&self) -> u128 {
        let mut memo: Vec<Option<u128>> = vec![None; self.nodes.len()];
        fn count(nodes: &[ExpandedNode], memo: &mut [Option<u128>], i: usize) -> u128 {
            if let Some(c) = memo[i] {
                return c;
            }
            let c = match &nodes[i] {
                ExpandedNode::Leaf {
                    renamings, delcost, ..
                } => (1 + renamings.len() as u128) + if delcost.is_finite() { 1 } else { 0 },
                ExpandedNode::Node {
                    renamings, child, ..
                } => (1 + renamings.len() as u128) * count(nodes, memo, *child),
                ExpandedNode::And { left, right } => {
                    count(nodes, memo, *left) * count(nodes, memo, *right)
                }
                ExpandedNode::Or { left, right, .. } => {
                    count(nodes, memo, *left) + count(nodes, memo, *right)
                }
            };
            memo[i] = Some(c);
            c
        }
        count(&self.nodes, &mut memo, self.root)
    }
}

struct Builder<'a> {
    costs: &'a CostModel,
    nodes: Vec<ExpandedNode>,
    leaves: Vec<usize>,
}

impl Builder<'_> {
    fn push(&mut self, n: ExpandedNode) -> usize {
        self.nodes.push(n);
        self.nodes.len() - 1
    }

    fn leaf(&mut self, label: &str, ty: NodeType, deletable: bool) -> usize {
        let renamings = self.costs.renamings(ty, label).to_vec();
        let delcost = if deletable {
            self.costs.delete_cost(ty, label)
        } else {
            Cost::INFINITY
        };
        let idx = self.push(ExpandedNode::Leaf {
            label: label.to_owned(),
            ty,
            renamings,
            delcost,
        });
        self.leaves.push(idx);
        idx
    }

    /// A name selector. `is_root` suppresses both the deletion wrapper
    /// (Definition 3 excludes the root) and leaf deletability (Definition 4
    /// requires sibling leaves, which a root leaf cannot have).
    fn step(&mut self, q: &QueryNode, is_root: bool) -> usize {
        match q {
            QueryNode::Name { label, child: None } => self.leaf(label, NodeType::Struct, !is_root),
            QueryNode::Name {
                label,
                child: Some(e),
            } => {
                let child = self.expr(e);
                let renamings = self.costs.renamings(NodeType::Struct, label).to_vec();
                let node = self.push(ExpandedNode::Node {
                    label: label.clone(),
                    ty: NodeType::Struct,
                    renamings,
                    child,
                });
                let delcost = self.costs.delete_cost(NodeType::Struct, label);
                if !is_root && delcost.is_finite() {
                    self.push(ExpandedNode::Or {
                        left: node,
                        right: child,
                        edgecost: delcost,
                    })
                } else {
                    node
                }
            }
            QueryNode::Text { word } => self.leaf(word, NodeType::Text, !is_root),
            QueryNode::And(..) | QueryNode::Or(..) => {
                unreachable!("step is only called on selectors")
            }
        }
    }

    fn expr(&mut self, q: &QueryNode) -> usize {
        match q {
            QueryNode::Name { .. } | QueryNode::Text { .. } => self.step(q, false),
            QueryNode::And(l, r) => {
                let left = self.expr(l);
                let right = self.expr(r);
                self.push(ExpandedNode::And { left, right })
            }
            QueryNode::Or(l, r) => {
                let left = self.expr(l);
                let right = self.expr(r);
                self.push(ExpandedNode::Or {
                    left,
                    right,
                    edgecost: Cost::ZERO,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;
    use approxql_cost::tables::paper_section6_costs;

    /// The query of Figure 2.
    fn figure2_query() -> Query {
        parse_query(r#"cd[track[title["piano" and "concerto"]] and composer["rachmaninov"]]"#)
            .unwrap()
    }

    #[test]
    fn figure2_structure() {
        let costs = paper_section6_costs();
        let ex = ExpandedQuery::build(&figure2_query(), &costs);
        // Root is the cd node with renamings dvd and mc.
        match &ex.nodes[ex.root] {
            ExpandedNode::Node {
                label, renamings, ..
            } => {
                assert_eq!(label, "cd");
                assert_eq!(
                    renamings,
                    &[
                        ("dvd".to_owned(), Cost::finite(6)),
                        ("mc".to_owned(), Cost::finite(4))
                    ]
                );
            }
            other => panic!("root should be a Node, got {other:?}"),
        }
        // 4 leaves: piano, concerto, rachmaninov... plus none others.
        assert_eq!(ex.leaf_count(), 3);
        // Every deletable inner node (track: 3, title: 5, composer: 7) got
        // an `or` wrapper.
        let or_deletions: Vec<Cost> = ex
            .nodes
            .iter()
            .filter_map(|n| match n {
                ExpandedNode::Or { edgecost, .. } if *edgecost != Cost::ZERO => Some(*edgecost),
                _ => None,
            })
            .collect();
        assert_eq!(
            or_deletions,
            vec![Cost::finite(5), Cost::finite(3), Cost::finite(7)]
        );
    }

    #[test]
    fn deletion_or_shares_the_bridged_subtree() {
        let costs = paper_section6_costs();
        let ex = ExpandedQuery::build(&figure2_query(), &costs);
        for n in &ex.nodes {
            if let ExpandedNode::Or {
                left,
                right,
                edgecost,
            } = n
            {
                if *edgecost != Cost::ZERO {
                    // left is the deletable Node whose child is exactly the
                    // bridged right branch.
                    match &ex.nodes[*left] {
                        ExpandedNode::Node { child, .. } => assert_eq!(child, right),
                        other => panic!("deletion-or left must be a Node, got {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn leaf_delete_costs_come_from_the_model() {
        let costs = paper_section6_costs();
        let ex = ExpandedQuery::build(&figure2_query(), &costs);
        let mut leaf_info: Vec<(String, Cost)> = ex
            .leaves
            .iter()
            .map(|&i| match &ex.nodes[i] {
                ExpandedNode::Leaf { label, delcost, .. } => (label.clone(), *delcost),
                other => panic!("not a leaf: {other:?}"),
            })
            .collect();
        leaf_info.sort();
        assert_eq!(
            leaf_info,
            vec![
                ("concerto".to_owned(), Cost::finite(6)),
                ("piano".to_owned(), Cost::finite(8)),
                ("rachmaninov".to_owned(), Cost::INFINITY),
            ]
        );
    }

    #[test]
    fn non_deletable_inner_nodes_get_no_or_wrapper() {
        // With an empty cost model nothing is deletable or renamable: the
        // expansion contains no `or` nodes at all.
        let costs = CostModel::new();
        let ex = ExpandedQuery::build(&figure2_query(), &costs);
        assert!(ex.nodes.iter().all(|n| n.rep_type() != RepType::Or));
    }

    #[test]
    fn user_or_has_zero_edgecost() {
        let q = parse_query(r#"a[b or c]"#).unwrap();
        let ex = ExpandedQuery::build(&q, &CostModel::new());
        let ors: Vec<_> = ex
            .nodes
            .iter()
            .filter(|n| n.rep_type() == RepType::Or)
            .collect();
        assert_eq!(ors.len(), 1);
        match ors[0] {
            ExpandedNode::Or { edgecost, .. } => assert_eq!(*edgecost, Cost::ZERO),
            _ => unreachable!(),
        }
    }

    #[test]
    fn root_is_never_wrapped_for_deletion() {
        let costs = CostModel::builder()
            .delete(NodeType::Struct, "cd", Cost::finite(1))
            .build();
        let q = parse_query(r#"cd[title]"#).unwrap();
        let ex = ExpandedQuery::build(&q, &costs);
        assert_eq!(ex.nodes[ex.root].rep_type(), RepType::Node);
    }

    #[test]
    fn bare_root_becomes_a_leaf() {
        let q = parse_query("cd").unwrap();
        let ex = ExpandedQuery::build(&q, &CostModel::new());
        match &ex.nodes[ex.root] {
            ExpandedNode::Leaf {
                label, ty, delcost, ..
            } => {
                assert_eq!(label, "cd");
                assert_eq!(*ty, NodeType::Struct);
                // A root leaf is never deletable.
                assert_eq!(*delcost, Cost::INFINITY);
            }
            other => panic!("expected leaf root, got {other:?}"),
        }
    }

    #[test]
    fn derivation_count_matches_hand_computation() {
        // See the module docs of approxql-core's reference evaluator: for
        // the Figure 2 query under the Section 6 costs the choice structure
        // yields 3 * ((1*18) + 18) * (2*1 + 1) = 324 derivations. (The
        // paper states 84 *distinct* semi-transformed queries for the
        // renamings shown in its Figure 2, which differ from the Section 6
        // table; distinctness additionally collapses derivations.)
        let costs = paper_section6_costs();
        let ex = ExpandedQuery::build(&figure2_query(), &costs);
        assert_eq!(ex.derivation_count(), 324);
    }

    #[test]
    fn expansion_is_linear_in_query_size() {
        let costs = paper_section6_costs();
        let q = figure2_query();
        let ex = ExpandedQuery::build(&q, &costs);
        // 7 selectors -> 7 node/leaf entries + 2 and + 3 deletion-or = 12.
        assert_eq!(ex.len(), 12);
    }
}
