//! Tokenizer for approXQL.

use std::fmt;

/// A token of the approXQL grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Token {
    /// A name selector (`cd`, `track-list`, …).
    Name(String),
    /// A quoted text selector, raw (not yet word-normalized).
    Str(String),
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// keyword `and`
    And,
    /// keyword `or`
    Or,
    /// `/` — a child/self step separator (XPath-lite surface only).
    Slash,
    /// `//` — a descendant step separator (XPath-lite surface only).
    DSlash,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Name(n) => write!(f, "`{n}`"),
            Token::Str(s) => write!(f, "\"{s}\""),
            Token::LBracket => write!(f, "`[`"),
            Token::RBracket => write!(f, "`]`"),
            Token::LParen => write!(f, "`(`"),
            Token::RParen => write!(f, "`)`"),
            Token::And => write!(f, "`and`"),
            Token::Or => write!(f, "`or`"),
            Token::Slash => write!(f, "`/`"),
            Token::DSlash => write!(f, "`//`"),
        }
    }
}

/// A token plus the byte offset where it starts (for error messages).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Spanned {
    pub token: Token,
    pub offset: usize,
}

/// A lexical error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    pub offset: usize,
    pub message: String,
}

fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_name_continue(c: char) -> bool {
    c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':')
}

/// Tokenizes a query string.
pub fn tokenize(input: &str) -> Result<Vec<Spanned>, LexError> {
    let mut tokens = Vec::new();
    let mut iter = input.char_indices().peekable();
    while let Some(&(offset, c)) = iter.peek() {
        match c {
            c if c.is_whitespace() => {
                iter.next();
            }
            '[' => {
                iter.next();
                tokens.push(Spanned {
                    token: Token::LBracket,
                    offset,
                });
            }
            ']' => {
                iter.next();
                tokens.push(Spanned {
                    token: Token::RBracket,
                    offset,
                });
            }
            '(' => {
                iter.next();
                tokens.push(Spanned {
                    token: Token::LParen,
                    offset,
                });
            }
            ')' => {
                iter.next();
                tokens.push(Spanned {
                    token: Token::RParen,
                    offset,
                });
            }
            '/' => {
                iter.next();
                let token = if matches!(iter.peek(), Some(&(_, '/'))) {
                    iter.next();
                    Token::DSlash
                } else {
                    Token::Slash
                };
                tokens.push(Spanned { token, offset });
            }
            quote @ ('"' | '\'') => {
                iter.next();
                let mut s = String::new();
                let mut closed = false;
                for (_, c) in iter.by_ref() {
                    if c == quote {
                        closed = true;
                        break;
                    }
                    s.push(c);
                }
                if !closed {
                    return Err(LexError {
                        offset,
                        message: "unterminated string literal".to_owned(),
                    });
                }
                tokens.push(Spanned {
                    token: Token::Str(s),
                    offset,
                });
            }
            c if is_name_start(c) => {
                let mut name = String::new();
                while let Some(&(_, c)) = iter.peek() {
                    if is_name_continue(c) {
                        name.push(c);
                        iter.next();
                    } else {
                        break;
                    }
                }
                let token = match name.as_str() {
                    "and" => Token::And,
                    "or" => Token::Or,
                    _ => Token::Name(name),
                };
                tokens.push(Spanned { token, offset });
            }
            other => {
                return Err(LexError {
                    offset,
                    message: format!("unexpected character `{other}`"),
                });
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(s: &str) -> Vec<Token> {
        tokenize(s).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn paper_query_tokenizes() {
        let t = toks(r#"cd[title["piano" and "concerto"] and composer["rachmaninov"]]"#);
        assert_eq!(
            t,
            vec![
                Token::Name("cd".into()),
                Token::LBracket,
                Token::Name("title".into()),
                Token::LBracket,
                Token::Str("piano".into()),
                Token::And,
                Token::Str("concerto".into()),
                Token::RBracket,
                Token::And,
                Token::Name("composer".into()),
                Token::LBracket,
                Token::Str("rachmaninov".into()),
                Token::RBracket,
                Token::RBracket,
            ]
        );
    }

    #[test]
    fn single_quotes_work() {
        assert_eq!(toks("'sonata'"), vec![Token::Str("sonata".into())]);
    }

    #[test]
    fn keywords_are_not_names() {
        assert_eq!(
            toks("and or android"),
            vec![Token::And, Token::Or, Token::Name("android".into())]
        );
    }

    #[test]
    fn names_allow_xml_punctuation() {
        assert_eq!(
            toks("track-list a.b ns:tag _x"),
            vec![
                Token::Name("track-list".into()),
                Token::Name("a.b".into()),
                Token::Name("ns:tag".into()),
                Token::Name("_x".into())
            ]
        );
    }

    #[test]
    fn parens_and_whitespace() {
        assert_eq!(
            toks("( a  or\n b )"),
            vec![
                Token::LParen,
                Token::Name("a".into()),
                Token::Or,
                Token::Name("b".into()),
                Token::RParen
            ]
        );
    }

    #[test]
    fn slashes_lex_greedily() {
        assert_eq!(
            toks("/a//b[c]"),
            vec![
                Token::Slash,
                Token::Name("a".into()),
                Token::DSlash,
                Token::Name("b".into()),
                Token::LBracket,
                Token::Name("c".into()),
                Token::RBracket,
            ]
        );
        assert_eq!(toks("///x")[..2], [Token::DSlash, Token::Slash]);
    }

    #[test]
    fn unterminated_string_is_an_error() {
        let err = tokenize(r#"cd["piano]"#).unwrap_err();
        assert_eq!(err.offset, 3);
        assert!(err.message.contains("unterminated"));
    }

    #[test]
    fn stray_character_is_an_error() {
        let err = tokenize("cd & dvd").unwrap_err();
        assert!(err.message.contains('&'));
    }

    #[test]
    fn offsets_are_byte_positions() {
        let spanned = tokenize("ab [x]").unwrap();
        assert_eq!(spanned[0].offset, 0);
        assert_eq!(spanned[1].offset, 3);
        assert_eq!(spanned[2].offset, 4);
    }
}
