//! The versioned JSON query-IR surface.
//!
//! A machine-friendly spelling of the approXQL query language, intended
//! as the wire format for tooling and the future `approxql serve`
//! daemon. Version 1 documents look like
//!
//! ```json
//! {"v": 1, "query": {"name": "cd", "child": {"and": [
//!     {"name": "title", "child": {"text": "piano concerto"}},
//!     {"name": "composer", "child": {"text": "rachmaninov"}}
//! ]}}}
//! ```
//!
//! Node forms (each node is an object with exactly one of these shapes):
//!
//! * `{"name": LABEL}` / `{"name": LABEL, "child": NODE}` — a name
//!   selector, optionally with a containment expression;
//! * `{"text": WORDS}` — a text selector; multi-word strings are split
//!   with the data model's word splitting, exactly like a classic quoted
//!   literal;
//! * `{"and": [NODE, …]}` / `{"or": [NODE, …]}` — n-ary conjunction /
//!   disjunction with at least two operands, folded left-associatively.
//!
//! **Versioning policy:** the top level is `{"v": 1, "query": NODE}` and
//! nothing else. Unknown fields are rejected — anywhere, not just at the
//! top level — so that a v1 reader never silently ignores a v2 construct;
//! a future v2 can relax v1 rules only behind a bumped `"v"`. A document
//! with an unsupported version is rejected with a distinct message.
//!
//! [`Query::to_json_ir`] emits the canonical form: compact (no
//! whitespace), fixed member order, `and`/`or` chains flattened to
//! maximal n-ary arrays. Parsing the canonical form of a normalized
//! query reproduces it exactly (see the round-trip tests).

use crate::ast::{Query, QueryNode};
use crate::json::{self, Json};
use crate::parser::ParseError;
use approxql_tree::text::split_words;

/// The query-IR version this build reads and writes.
pub const JSON_IR_VERSION: u64 = 1;

/// Parses a version-1 JSON query-IR document.
///
/// ```
/// use approxql_query::parse_json_query;
/// let q = parse_json_query(r#"{"v":1,"query":{"name":"cd"}}"#).unwrap();
/// assert_eq!(q.root_label(), "cd");
/// ```
pub fn parse_json_query(input: &str) -> Result<Query, ParseError> {
    let doc =
        json::parse(input).map_err(|e| ParseError::at_line_col(input, e.line, e.col, e.message))?;
    top_level(&doc).map_err(|message| ParseError::at_offset(input, 0, message))
}

/// Validates the `{"v": 1, "query": NODE}` envelope. Errors are plain
/// messages; the caller attaches the position.
fn top_level(doc: &Json) -> Result<Query, String> {
    let members = doc
        .as_obj()
        .ok_or_else(|| format!("query-IR document must be an object, found {}", doc.kind()))?;
    for (key, _) in members {
        if key != "v" && key != "query" {
            return Err(format!(
                "unknown query-IR field \"{key}\" (v{JSON_IR_VERSION} accepts \"v\" and \"query\")"
            ));
        }
    }
    let version = doc
        .get("v")
        .ok_or("query-IR document is missing the \"v\" version field")?;
    let version = version.as_uint().ok_or_else(|| {
        format!(
            "\"v\" must be a non-negative integer, found {}",
            version.kind()
        )
    })?;
    if version != JSON_IR_VERSION {
        return Err(format!(
            "unsupported query-IR version {version} (this build reads v{JSON_IR_VERSION})"
        ));
    }
    let root = node(
        doc.get("query")
            .ok_or("query-IR document is missing the \"query\" field")?,
    )?;
    if !matches!(root, QueryNode::Name { .. }) {
        return Err("the query root must be a name selector (a {\"name\": …} node)".to_owned());
    }
    Ok(Query { root })
}

/// Parses one query node object.
fn node(j: &Json) -> Result<QueryNode, String> {
    let members = j
        .as_obj()
        .ok_or_else(|| format!("query node must be an object, found {}", j.kind()))?;
    let mut kind: Option<&str> = None;
    for (key, _) in members {
        match key.as_str() {
            "name" | "text" | "and" | "or" => {
                if let Some(prev) = kind {
                    return Err(format!(
                        "query node mixes \"{prev}\" and \"{key}\" — exactly one node kind per object"
                    ));
                }
                kind = Some(key);
            }
            "child" => {}
            other => {
                return Err(format!(
                    "unknown query node field \"{other}\" (v{JSON_IR_VERSION} nodes use \"name\", \"text\", \"and\", \"or\", \"child\")"
                ))
            }
        }
    }
    let kind = kind.ok_or("query node needs exactly one of \"name\", \"text\", \"and\", \"or\"")?;
    if kind != "name" && j.get("child").is_some() {
        return Err(format!(
            "\"child\" is only valid on a \"name\" node, not \"{kind}\""
        ));
    }
    match kind {
        "name" => {
            let label = string_field(j, "name")?;
            check_label(&label)?;
            let child = match j.get("child") {
                Some(c) => Some(Box::new(node(c)?)),
                None => None,
            };
            Ok(QueryNode::Name { label, child })
        }
        "text" => {
            let raw = string_field(j, "text")?;
            let mut words = split_words(&raw).into_iter();
            let first = words
                .next()
                .ok_or_else(|| format!("text selector \"{raw}\" contains no word"))?;
            let mut out = QueryNode::Text { word: first };
            for w in words {
                out = QueryNode::And(Box::new(out), Box::new(QueryNode::Text { word: w }));
            }
            Ok(out)
        }
        op @ ("and" | "or") => {
            let items = j
                .get(op)
                .expect("kind key present")
                .as_arr()
                .ok_or_else(|| format!("\"{op}\" must hold an array of query nodes"))?;
            if items.len() < 2 {
                return Err(format!(
                    "\"{op}\" needs at least two operands, found {}",
                    items.len()
                ));
            }
            let mut parsed = items.iter().map(node);
            let mut out = parsed.next().expect("len checked")?;
            for next in parsed {
                let next = next?;
                out = if op == "and" {
                    QueryNode::And(Box::new(out), Box::new(next))
                } else {
                    QueryNode::Or(Box::new(out), Box::new(next))
                };
            }
            Ok(out)
        }
        _ => unreachable!("kind is one of the four node keys"),
    }
}

fn string_field(j: &Json, key: &str) -> Result<String, String> {
    let v = j.get(key).expect("kind key present");
    v.as_str()
        .map(str::to_owned)
        .ok_or_else(|| format!("\"{key}\" must be a string, found {}", v.kind()))
}

/// Element names must satisfy the classic lexer's name rules so that any
/// accepted query renders back into every surface.
fn check_label(label: &str) -> Result<(), String> {
    let mut chars = label.chars();
    let valid = match chars.next() {
        Some(c) => {
            (c.is_alphabetic() || c == '_')
                && chars.all(|c| c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':'))
        }
        None => false,
    };
    if !valid || label == "and" || label == "or" {
        return Err(format!("invalid element name \"{label}\""));
    }
    Ok(())
}

impl Query {
    /// Emits the canonical JSON query-IR form (version
    /// [`JSON_IR_VERSION`]): compact, fixed member order, operator chains
    /// flattened to n-ary arrays. Any accepted query — from any surface —
    /// round-trips: parsing the emitted document yields the normalized
    /// query back.
    pub fn to_json_ir(&self) -> String {
        let mut out = String::from("{\"v\":1,\"query\":");
        emit(&self.root, &mut out);
        out.push('}');
        out
    }
}

fn emit(node: &QueryNode, out: &mut String) {
    match node {
        QueryNode::Name { label, child } => {
            out.push_str("{\"name\":");
            json::write_str(out, label);
            if let Some(c) = child {
                out.push_str(",\"child\":");
                emit(c, out);
            }
            out.push('}');
        }
        QueryNode::Text { word } => {
            out.push_str("{\"text\":");
            json::write_str(out, word);
            out.push('}');
        }
        QueryNode::And(..) | QueryNode::Or(..) => {
            let is_and = matches!(node, QueryNode::And(..));
            out.push_str(if is_and { "{\"and\":[" } else { "{\"or\":[" });
            let mut parts = Vec::new();
            collect_chain(node, is_and, &mut parts);
            for (i, part) in parts.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                emit(part, out);
            }
            out.push_str("]}");
        }
    }
}

/// Collects the operands of a maximal same-operator chain in source order.
fn collect_chain<'a>(node: &'a QueryNode, is_and: bool, out: &mut Vec<&'a QueryNode>) {
    match node {
        QueryNode::And(l, r) if is_and => {
            collect_chain(l, true, out);
            collect_chain(r, true, out);
        }
        QueryNode::Or(l, r) if !is_and => {
            collect_chain(l, false, out);
            collect_chain(r, false, out);
        }
        other => out.push(other),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    #[test]
    fn parses_the_paper_query() {
        let classic =
            parse_query(r#"cd[title["piano" and "concerto"] and composer["rachmaninov"]]"#)
                .unwrap();
        let ir = parse_json_query(
            r#"{"v": 1, "query": {"name": "cd", "child": {"and": [
                {"name": "title", "child": {"text": "piano concerto"}},
                {"name": "composer", "child": {"text": "rachmaninov"}}
            ]}}}"#,
        )
        .unwrap();
        assert_eq!(ir.clone().normalize(), classic.normalize());
        assert_eq!(ir.to_string(), ir.clone().normalize().to_string());
    }

    #[test]
    fn nary_operators_fold_left() {
        let ir = parse_json_query(
            r#"{"v":1,"query":{"name":"x","child":{"or":[{"text":"a"},{"text":"b"},{"text":"c"}]}}}"#,
        )
        .unwrap();
        let classic = parse_query(r#"x["a" or "b" or "c"]"#).unwrap();
        assert_eq!(ir, classic);
    }

    #[test]
    fn canonical_emit_round_trips() {
        for src in [
            r#"cd[title["piano" and "concerto"] and composer["rachmaninov"]]"#,
            r#"cd[title["piano" and ("concerto" or "sonata")]]"#,
            r#"a[b or c and d]"#,
            "cd",
        ] {
            let q = parse_query(src).unwrap().normalize();
            let ir = q.to_json_ir();
            assert_eq!(parse_json_query(&ir).unwrap(), q, "round-trip failed: {ir}");
        }
    }

    #[test]
    fn unknown_version_is_a_distinct_error() {
        let err = parse_json_query(r#"{"v":2,"query":{"name":"cd"}}"#).unwrap_err();
        assert!(
            err.message.contains("unsupported query-IR version 2"),
            "{err}"
        );
        assert!(err.message.contains("reads v1"), "{err}");
    }

    #[test]
    fn unknown_fields_are_rejected_everywhere() {
        let top = parse_json_query(r#"{"v":1,"query":{"name":"cd"},"limit":5}"#).unwrap_err();
        assert!(
            top.message.contains("unknown query-IR field \"limit\""),
            "{top}"
        );
        let node = parse_json_query(r#"{"v":1,"query":{"name":"cd","fuzz":true}}"#).unwrap_err();
        assert!(
            node.message.contains("unknown query node field \"fuzz\""),
            "{node}"
        );
    }

    #[test]
    fn rejects_malformed_documents() {
        // Not JSON at all: the JSON reader's position is surfaced.
        let err = parse_json_query("{\n  \"v\": nope\n}").unwrap_err();
        assert_eq!(err.line, 2);
        // Envelope and node-shape violations.
        for (src, needle) in [
            (r#"[1]"#, "must be an object"),
            (r#"{"query":{"name":"cd"}}"#, "missing the \"v\""),
            (r#"{"v":1}"#, "missing the \"query\""),
            (r#"{"v":1,"query":{"text":"piano"}}"#, "root must be a name"),
            (r#"{"v":1,"query":{"name":"cd","text":"x"}}"#, "mixes"),
            (
                r#"{"v":1,"query":{"text":"x","child":{"name":"a"}}}"#,
                "only valid on a \"name\"",
            ),
            (r#"{"v":1,"query":{"and":[{"name":"a"}]}}"#, "at least two"),
            (r#"{"v":1,"query":{"name":"9bad"}}"#, "invalid element name"),
            (r#"{"v":1,"query":{"name":"or"}}"#, "invalid element name"),
            (
                r#"{"v":1,"query":{"name":"t","child":{"text":"--"}}}"#,
                "no word",
            ),
            (r#"{"v":1,"query":{}}"#, "exactly one of"),
        ] {
            let err = parse_json_query(src).unwrap_err();
            assert!(err.message.contains(needle), "{src}: {err}");
        }
    }
}
