//! A minimal JSON reader/writer shared by the JSON query-IR surface and
//! the `approxql-eval` dataset format (which re-exports this module).
//!
//! The workspace builds offline with no registry access, so — like the
//! rest of the stack — the crate carries its own small parser instead
//! of depending on serde. It supports exactly the JSON those formats
//! need: objects, arrays, strings (with the standard escapes),
//! integers/floats, booleans, and null. Numbers are kept as `f64`; the
//! consuming layers re-validate integer fields.

use std::fmt;

/// A parsed JSON value. Object members keep their source order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (`None` for other kinds or a missing key).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is a whole number ≥ 0.
    pub fn as_uint(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The members of an object, if it is one.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(members) => Some(members),
            _ => None,
        }
    }

    /// A short name for the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "boolean",
            Json::Num(_) => "number",
            Json::Str(_) => "string",
            Json::Arr(_) => "array",
            Json::Obj(_) => "object",
        }
    }
}

/// A JSON syntax error with its 1-based line and column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    pub line: usize,
    pub col: usize,
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "line {}, column {}: {}",
            self.line, self.col, self.message
        )
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        let mut line = 1;
        let mut col = 1;
        for &b in &self.bytes[..self.pos.min(self.bytes.len())] {
            if b == b'\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
        }
        JsonError {
            line,
            col,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!(
                "expected `{}`, found {}",
                b as char,
                match self.peek() {
                    Some(c) => format!("`{}`", c as char),
                    None => "end of input".to_owned(),
                }
            )))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(format!("unexpected character `{}`", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.value()?;
            if members.iter().any(|(k, _)| *k == key) {
                return Err(self.err(format!("duplicate key \"{key}\"")));
            }
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by the dataset
                            // format; reject them rather than mis-decode.
                            let c = char::from_u32(hex)
                                .ok_or_else(|| self.err("\\u escape is not a scalar value"))?;
                            out.push(c);
                        }
                        other => {
                            return Err(self.err(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                Some(c) if c < 0x20 => return Err(self.err("raw control character in string")),
                Some(_) => {
                    // Copy one UTF-8 scalar (multi-byte sequences verbatim).
                    let start = self.pos;
                    let text = std::str::from_utf8(&self.bytes[start..])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let ch = text
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("empty string tail"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(format!("invalid number `{text}`")))
    }
}

/// Parses one JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

/// Appends `s` as a JSON string literal (quotes and escapes included).
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse("true").unwrap(), Json::Bool(true));
        assert_eq!(parse(" 42 ").unwrap(), Json::Num(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), Json::Num(-150.0));
        assert_eq!(parse(r#""hi""#).unwrap(), Json::Str("hi".into()));
        assert_eq!(
            parse(r#"[1, "a", []]"#).unwrap(),
            Json::Arr(vec![
                Json::Num(1.0),
                Json::Str("a".into()),
                Json::Arr(vec![])
            ])
        );
        let obj = parse(r#"{"a": 1, "b": {"c": null}}"#).unwrap();
        assert_eq!(obj.get("a"), Some(&Json::Num(1.0)));
        assert_eq!(obj.get("b").unwrap().get("c"), Some(&Json::Null));
        assert_eq!(obj.get("missing"), None);
    }

    #[test]
    fn string_escapes_round_trip() {
        let original = "a\"b\\c\nd\te\u{00e9}\u{0001}";
        let mut enc = String::new();
        write_str(&mut enc, original);
        assert_eq!(parse(&enc).unwrap(), Json::Str(original.into()));
    }

    #[test]
    fn unicode_escape() {
        assert_eq!(parse(r#""é""#).unwrap(), Json::Str("é".into()));
    }

    #[test]
    fn errors_carry_position() {
        let err = parse("{\n  \"a\": nope\n}").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.message.contains("null"), "{err}");
        assert!(parse("[1,]").is_err());
        assert!(parse("[1] junk").is_err());
        assert!(
            parse(r#"{"a":1,"a":2}"#).is_err(),
            "duplicate keys rejected"
        );
        assert!(parse(r#""unterminated"#).is_err());
    }

    #[test]
    fn as_uint_rejects_fractions_and_negatives() {
        assert_eq!(parse("7").unwrap().as_uint(), Some(7));
        assert_eq!(parse("7.5").unwrap().as_uint(), None);
        assert_eq!(parse("-7").unwrap().as_uint(), None);
    }
}
