//! The XPath-lite navigational surface.
//!
//! A navigational spelling of approXQL tree patterns, for users coming
//! from XPath:
//!
//! ```text
//! query   := sep step ( sep step )*          (absolute paths only)
//! sep     := '/' | '//'
//! step    := NAME pred*
//! pred    := '[' expr ']'
//! expr    := andexpr ( 'or' andexpr )*
//! andexpr := primary ( 'and' primary )*
//! primary := '(' expr ')' | relpath | STRING
//! relpath := step ( sep step )*
//! ```
//!
//! Desugaring targets the classic AST directly: each step becomes a name
//! selector whose containment expression conjoins the step's predicates
//! (in source order) with the rest of the path. `/a//b[c]` is
//! `a[b[c]]`, and `/a[x]["y"]` is `a[x and "y"]`.
//!
//! **`/` and `//` are synonyms here.** approXQL containment is
//! ancestor–descendant embedding (Section 3 of the paper) — the query
//! `a[b]` already matches `b` at any depth below `a`, with insertions
//! charged by the cost model rather than forbidden. A strict child axis
//! would need a new edge type in the expanded representation; until
//! then, both separators lower to the same containment edge, and `//` is
//! the faithful spelling. Results keep approXQL semantics: hits are
//! images of the *root* step, ranked by embedding cost (not the last
//! step, as in XPath).

use crate::ast::{Query, QueryNode};
use crate::lexer::{tokenize, Spanned, Token};
use crate::parser::ParseError;
use approxql_tree::text::split_words;
use std::fmt::Write as _;

/// Parses an XPath-lite query.
///
/// ```
/// use approxql_query::{parse_query, parse_xpath_query};
/// let x = parse_xpath_query(r#"/cd//title["piano"]"#).unwrap();
/// assert_eq!(x, parse_query(r#"cd[title["piano"]]"#).unwrap());
/// ```
pub fn parse_xpath_query(input: &str) -> Result<Query, ParseError> {
    let tokens = tokenize(input).map_err(|e| ParseError::at_offset(input, e.offset, e.message))?;
    let mut p = XParser {
        input,
        tokens,
        pos: 0,
    };
    if !matches!(p.peek(), Some(Token::Slash | Token::DSlash)) {
        return Err(p.err("an XPath-lite query is an absolute path: expected `/` or `//`"));
    }
    let root = p.path()?;
    if p.peek().is_some() {
        return Err(p.err("unexpected trailing input after the path"));
    }
    Ok(Query { root })
}

/// One parsed step: a name plus its predicate expressions in source order.
struct Step {
    label: String,
    preds: Vec<QueryNode>,
}

struct XParser<'a> {
    input: &'a str,
    tokens: Vec<Spanned>,
    pos: usize,
}

impl XParser<'_> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|s| s.offset)
            .unwrap_or(self.input.len())
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError::at_offset(self.input, self.offset(), message)
    }

    fn expect(&mut self, want: &Token) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == want => {
                self.pos += 1;
                Ok(())
            }
            Some(t) => Err(self.err(format!("expected {want}, found {t}"))),
            None => Err(self.err(format!("expected {want}, found end of query"))),
        }
    }

    /// `sep step (sep step)*` — the leading separator has already been
    /// seen by the caller (absolute at the root, or a relpath continuing).
    /// Consumes separators itself and desugars the step list into one
    /// nested name selector.
    fn path(&mut self) -> Result<QueryNode, ParseError> {
        let mut steps = Vec::new();
        loop {
            if matches!(self.peek(), Some(Token::Slash | Token::DSlash)) {
                self.pos += 1;
                steps.push(self.step()?);
            } else {
                break;
            }
        }
        debug_assert!(!steps.is_empty(), "caller saw a leading separator");
        Ok(fold_steps(steps))
    }

    /// `step := NAME pred*`
    fn step(&mut self) -> Result<Step, ParseError> {
        let label = match self.peek() {
            Some(Token::Name(n)) => {
                let n = n.clone();
                self.pos += 1;
                n
            }
            Some(t) => return Err(self.err(format!("expected a step name, found {t}"))),
            None => return Err(self.err("expected a step name, found end of query")),
        };
        let mut preds = Vec::new();
        while self.peek() == Some(&Token::LBracket) {
            self.pos += 1;
            preds.push(self.expr()?);
            self.expect(&Token::RBracket)?;
        }
        Ok(Step { label, preds })
    }

    /// `expr := andexpr ('or' andexpr)*`
    fn expr(&mut self) -> Result<QueryNode, ParseError> {
        let mut node = self.andexpr()?;
        while self.peek() == Some(&Token::Or) {
            self.pos += 1;
            let rhs = self.andexpr()?;
            node = QueryNode::Or(Box::new(node), Box::new(rhs));
        }
        Ok(node)
    }

    /// `andexpr := primary ('and' primary)*`
    fn andexpr(&mut self) -> Result<QueryNode, ParseError> {
        let mut node = self.primary()?;
        while self.peek() == Some(&Token::And) {
            self.pos += 1;
            let rhs = self.primary()?;
            node = QueryNode::And(Box::new(node), Box::new(rhs));
        }
        Ok(node)
    }

    /// `primary := '(' expr ')' | relpath | STRING`
    fn primary(&mut self) -> Result<QueryNode, ParseError> {
        match self.peek() {
            Some(Token::LParen) => {
                self.pos += 1;
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            Some(Token::Str(_)) => {
                let raw = match self.peek() {
                    Some(Token::Str(s)) => s.clone(),
                    _ => unreachable!(),
                };
                let node = self.text_selector(&raw)?;
                self.pos += 1;
                Ok(node)
            }
            Some(Token::Name(_)) => {
                // `relpath := step (sep step)*` — a nested path inside a
                // predicate, e.g. `/cd[tracks/track["vivace"]]`.
                let first = self.step()?;
                let mut steps = vec![first];
                while matches!(self.peek(), Some(Token::Slash | Token::DSlash)) {
                    self.pos += 1;
                    steps.push(self.step()?);
                }
                Ok(fold_steps(steps))
            }
            Some(t) => {
                let t = t.clone();
                Err(self.err(format!("expected a selector, found {t}")))
            }
            None => Err(self.err("expected a selector, found end of query")),
        }
    }

    /// Same multi-word splitting as the classic surface.
    fn text_selector(&self, raw: &str) -> Result<QueryNode, ParseError> {
        let mut words = split_words(raw).into_iter();
        let first = words
            .next()
            .ok_or_else(|| self.err(format!("text selector \"{raw}\" contains no word")))?;
        let mut node = QueryNode::Text { word: first };
        for w in words {
            node = QueryNode::And(Box::new(node), Box::new(QueryNode::Text { word: w }));
        }
        Ok(node)
    }
}

/// Desugars a non-empty step list into a nested name selector: working
/// from the innermost step outward, each step's child conjoins its
/// predicates (source order) with the already-folded tail.
fn fold_steps(steps: Vec<Step>) -> QueryNode {
    let mut tail: Option<QueryNode> = None;
    for step in steps.into_iter().rev() {
        let mut parts = step.preds;
        if let Some(t) = tail.take() {
            parts.push(t);
        }
        let child = parts
            .into_iter()
            .reduce(|acc, next| QueryNode::And(Box::new(acc), Box::new(next)));
        tail = Some(QueryNode::Name {
            label: step.label,
            child: child.map(Box::new),
        });
    }
    tail.expect("steps is non-empty")
}

impl Query {
    /// Emits the canonical XPath-lite form: a single root step whose
    /// predicate is the classic rendering of the containment expression
    /// (the classic expression grammar is a subset of the predicate
    /// grammar, so the result reparses — see the round-trip tests).
    pub fn to_xpath(&self) -> String {
        let mut out = String::from("/");
        let _ = write!(out, "{}", self.root);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_query;

    fn same(xpath: &str, classic: &str) {
        let x = parse_xpath_query(xpath).unwrap().normalize();
        let c = parse_query(classic).unwrap().normalize();
        assert_eq!(x, c, "{xpath} != {classic}");
    }

    #[test]
    fn steps_desugar_to_containment() {
        same("/cd", "cd");
        same("/cd//title", "cd[title]");
        same("/cd/title", "cd[title]"); // `/` and `//` are synonyms
        same(r#"/a//b[c]"#, "a[b[c]]");
        same(r#"/cd//title["piano"]"#, r#"cd[title["piano"]]"#);
    }

    #[test]
    fn predicates_conjoin_in_source_order() {
        same(r#"/a[x]["y"]"#, r#"a[x and "y"]"#);
        same(r#"/a[x]//b"#, "a[x and b]");
        same(r#"/a[x][y]//b["z"]"#, r#"a[x and y and b["z"]]"#);
    }

    #[test]
    fn predicate_expressions_match_classic_semantics() {
        same(
            r#"/cd[title["piano" and "concerto"] and composer["rachmaninov"]]"#,
            r#"cd[title["piano" and "concerto"] and composer["rachmaninov"]]"#,
        );
        same(r#"/a["x" and "y" or "z"]"#, r#"a["x" and "y" or "z"]"#);
        same(r#"/a["x" and ("y" or "z")]"#, r#"a["x" and ("y" or "z")]"#);
        same(
            r#"/cd[tracks/track["vivace"]]"#,
            r#"cd[tracks[track["vivace"]]]"#,
        );
        same(
            r#"/cd[title["Piano Concerto No. 2"]]"#,
            r#"cd[title["Piano Concerto No. 2"]]"#,
        );
    }

    #[test]
    fn to_xpath_round_trips() {
        for src in [
            r#"cd[title["piano" and "concerto"] and composer["rachmaninov"]]"#,
            r#"cd[title["piano" and ("concerto" or "sonata")]]"#,
            r#"a[b or c and d]"#,
            "cd",
        ] {
            let q = parse_query(src).unwrap().normalize();
            let xp = q.to_xpath();
            assert_eq!(
                parse_xpath_query(&xp).unwrap().normalize(),
                q,
                "round-trip failed: {xp}"
            );
        }
    }

    #[test]
    fn rejects_relative_and_malformed_paths() {
        for (src, needle) in [
            ("cd", "absolute path"),
            ("", "absolute path"),
            ("/", "step name"),
            ("//", "step name"),
            ("/cd/", "step name"),
            (r#"/"piano""#, "step name"),
            ("/cd[", "selector"),
            ("/cd[a and ]", "selector"),
            ("/cd[a]b", "trailing"),
        ] {
            let err = parse_xpath_query(src).unwrap_err();
            assert!(err.message.contains(needle), "{src}: {err}");
        }
    }

    #[test]
    fn errors_carry_caret_positions() {
        let err = parse_xpath_query("/cd[a and ]").unwrap_err();
        assert_eq!((err.line, err.col), (1, 11));
        assert!(
            err.to_string().ends_with("\n  /cd[a and ]\n            ^"),
            "{err}"
        );
    }
}
